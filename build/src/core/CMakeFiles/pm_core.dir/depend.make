# Empty dependencies file for pm_core.
# This may be replaced when dependencies are built.
