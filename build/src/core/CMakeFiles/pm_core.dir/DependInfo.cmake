
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fmssm.cpp" "src/core/CMakeFiles/pm_core.dir/fmssm.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/fmssm.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/pm_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/naive.cpp" "src/core/CMakeFiles/pm_core.dir/naive.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/naive.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/core/CMakeFiles/pm_core.dir/optimal.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/optimal.cpp.o.d"
  "/root/repo/src/core/pg.cpp" "src/core/CMakeFiles/pm_core.dir/pg.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/pg.cpp.o.d"
  "/root/repo/src/core/pm_algorithm.cpp" "src/core/CMakeFiles/pm_core.dir/pm_algorithm.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/pm_algorithm.cpp.o.d"
  "/root/repo/src/core/recovery_plan.cpp" "src/core/CMakeFiles/pm_core.dir/recovery_plan.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/recovery_plan.cpp.o.d"
  "/root/repo/src/core/reroute.cpp" "src/core/CMakeFiles/pm_core.dir/reroute.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/reroute.cpp.o.d"
  "/root/repo/src/core/retroflow.cpp" "src/core/CMakeFiles/pm_core.dir/retroflow.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/retroflow.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/pm_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/pm_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/pm_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/pm_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdwan/CMakeFiles/pm_sdwan.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/pm_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
