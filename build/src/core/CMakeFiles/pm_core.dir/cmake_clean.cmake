file(REMOVE_RECURSE
  "CMakeFiles/pm_core.dir/fmssm.cpp.o"
  "CMakeFiles/pm_core.dir/fmssm.cpp.o.d"
  "CMakeFiles/pm_core.dir/metrics.cpp.o"
  "CMakeFiles/pm_core.dir/metrics.cpp.o.d"
  "CMakeFiles/pm_core.dir/naive.cpp.o"
  "CMakeFiles/pm_core.dir/naive.cpp.o.d"
  "CMakeFiles/pm_core.dir/optimal.cpp.o"
  "CMakeFiles/pm_core.dir/optimal.cpp.o.d"
  "CMakeFiles/pm_core.dir/pg.cpp.o"
  "CMakeFiles/pm_core.dir/pg.cpp.o.d"
  "CMakeFiles/pm_core.dir/pm_algorithm.cpp.o"
  "CMakeFiles/pm_core.dir/pm_algorithm.cpp.o.d"
  "CMakeFiles/pm_core.dir/recovery_plan.cpp.o"
  "CMakeFiles/pm_core.dir/recovery_plan.cpp.o.d"
  "CMakeFiles/pm_core.dir/reroute.cpp.o"
  "CMakeFiles/pm_core.dir/reroute.cpp.o.d"
  "CMakeFiles/pm_core.dir/retroflow.cpp.o"
  "CMakeFiles/pm_core.dir/retroflow.cpp.o.d"
  "CMakeFiles/pm_core.dir/runner.cpp.o"
  "CMakeFiles/pm_core.dir/runner.cpp.o.d"
  "CMakeFiles/pm_core.dir/scenario.cpp.o"
  "CMakeFiles/pm_core.dir/scenario.cpp.o.d"
  "CMakeFiles/pm_core.dir/serialize.cpp.o"
  "CMakeFiles/pm_core.dir/serialize.cpp.o.d"
  "libpm_core.a"
  "libpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
