
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/abilene.cpp" "src/topo/CMakeFiles/pm_topo.dir/abilene.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/abilene.cpp.o.d"
  "/root/repo/src/topo/att.cpp" "src/topo/CMakeFiles/pm_topo.dir/att.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/att.cpp.o.d"
  "/root/repo/src/topo/generators.cpp" "src/topo/CMakeFiles/pm_topo.dir/generators.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/generators.cpp.o.d"
  "/root/repo/src/topo/geo.cpp" "src/topo/CMakeFiles/pm_topo.dir/geo.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/geo.cpp.o.d"
  "/root/repo/src/topo/gml.cpp" "src/topo/CMakeFiles/pm_topo.dir/gml.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/gml.cpp.o.d"
  "/root/repo/src/topo/placement.cpp" "src/topo/CMakeFiles/pm_topo.dir/placement.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/placement.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/pm_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/pm_topo.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
