# Empty dependencies file for pm_topo.
# This may be replaced when dependencies are built.
