file(REMOVE_RECURSE
  "libpm_topo.a"
)
