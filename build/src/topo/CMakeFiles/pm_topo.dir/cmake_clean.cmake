file(REMOVE_RECURSE
  "CMakeFiles/pm_topo.dir/abilene.cpp.o"
  "CMakeFiles/pm_topo.dir/abilene.cpp.o.d"
  "CMakeFiles/pm_topo.dir/att.cpp.o"
  "CMakeFiles/pm_topo.dir/att.cpp.o.d"
  "CMakeFiles/pm_topo.dir/generators.cpp.o"
  "CMakeFiles/pm_topo.dir/generators.cpp.o.d"
  "CMakeFiles/pm_topo.dir/geo.cpp.o"
  "CMakeFiles/pm_topo.dir/geo.cpp.o.d"
  "CMakeFiles/pm_topo.dir/gml.cpp.o"
  "CMakeFiles/pm_topo.dir/gml.cpp.o.d"
  "CMakeFiles/pm_topo.dir/placement.cpp.o"
  "CMakeFiles/pm_topo.dir/placement.cpp.o.d"
  "CMakeFiles/pm_topo.dir/topology.cpp.o"
  "CMakeFiles/pm_topo.dir/topology.cpp.o.d"
  "libpm_topo.a"
  "libpm_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
