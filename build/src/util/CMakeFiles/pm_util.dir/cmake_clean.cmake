file(REMOVE_RECURSE
  "CMakeFiles/pm_util.dir/cli.cpp.o"
  "CMakeFiles/pm_util.dir/cli.cpp.o.d"
  "CMakeFiles/pm_util.dir/csv.cpp.o"
  "CMakeFiles/pm_util.dir/csv.cpp.o.d"
  "CMakeFiles/pm_util.dir/json.cpp.o"
  "CMakeFiles/pm_util.dir/json.cpp.o.d"
  "CMakeFiles/pm_util.dir/stats.cpp.o"
  "CMakeFiles/pm_util.dir/stats.cpp.o.d"
  "CMakeFiles/pm_util.dir/strings.cpp.o"
  "CMakeFiles/pm_util.dir/strings.cpp.o.d"
  "CMakeFiles/pm_util.dir/table.cpp.o"
  "CMakeFiles/pm_util.dir/table.cpp.o.d"
  "libpm_util.a"
  "libpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
