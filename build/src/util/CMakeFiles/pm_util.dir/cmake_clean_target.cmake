file(REMOVE_RECURSE
  "libpm_util.a"
)
