# Empty compiler generated dependencies file for pm_util.
# This may be replaced when dependencies are built.
