file(REMOVE_RECURSE
  "libpm_sdwan.a"
)
