# Empty dependencies file for pm_sdwan.
# This may be replaced when dependencies are built.
