
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdwan/dataplane.cpp" "src/sdwan/CMakeFiles/pm_sdwan.dir/dataplane.cpp.o" "gcc" "src/sdwan/CMakeFiles/pm_sdwan.dir/dataplane.cpp.o.d"
  "/root/repo/src/sdwan/failure.cpp" "src/sdwan/CMakeFiles/pm_sdwan.dir/failure.cpp.o" "gcc" "src/sdwan/CMakeFiles/pm_sdwan.dir/failure.cpp.o.d"
  "/root/repo/src/sdwan/hybrid_switch.cpp" "src/sdwan/CMakeFiles/pm_sdwan.dir/hybrid_switch.cpp.o" "gcc" "src/sdwan/CMakeFiles/pm_sdwan.dir/hybrid_switch.cpp.o.d"
  "/root/repo/src/sdwan/network.cpp" "src/sdwan/CMakeFiles/pm_sdwan.dir/network.cpp.o" "gcc" "src/sdwan/CMakeFiles/pm_sdwan.dir/network.cpp.o.d"
  "/root/repo/src/sdwan/ospf.cpp" "src/sdwan/CMakeFiles/pm_sdwan.dir/ospf.cpp.o" "gcc" "src/sdwan/CMakeFiles/pm_sdwan.dir/ospf.cpp.o.d"
  "/root/repo/src/sdwan/traffic.cpp" "src/sdwan/CMakeFiles/pm_sdwan.dir/traffic.cpp.o" "gcc" "src/sdwan/CMakeFiles/pm_sdwan.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/pm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
