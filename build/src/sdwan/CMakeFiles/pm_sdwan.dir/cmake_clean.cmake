file(REMOVE_RECURSE
  "CMakeFiles/pm_sdwan.dir/dataplane.cpp.o"
  "CMakeFiles/pm_sdwan.dir/dataplane.cpp.o.d"
  "CMakeFiles/pm_sdwan.dir/failure.cpp.o"
  "CMakeFiles/pm_sdwan.dir/failure.cpp.o.d"
  "CMakeFiles/pm_sdwan.dir/hybrid_switch.cpp.o"
  "CMakeFiles/pm_sdwan.dir/hybrid_switch.cpp.o.d"
  "CMakeFiles/pm_sdwan.dir/network.cpp.o"
  "CMakeFiles/pm_sdwan.dir/network.cpp.o.d"
  "CMakeFiles/pm_sdwan.dir/ospf.cpp.o"
  "CMakeFiles/pm_sdwan.dir/ospf.cpp.o.d"
  "CMakeFiles/pm_sdwan.dir/traffic.cpp.o"
  "CMakeFiles/pm_sdwan.dir/traffic.cpp.o.d"
  "libpm_sdwan.a"
  "libpm_sdwan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_sdwan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
