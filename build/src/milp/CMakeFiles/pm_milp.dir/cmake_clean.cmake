file(REMOVE_RECURSE
  "CMakeFiles/pm_milp.dir/branch_bound.cpp.o"
  "CMakeFiles/pm_milp.dir/branch_bound.cpp.o.d"
  "CMakeFiles/pm_milp.dir/model.cpp.o"
  "CMakeFiles/pm_milp.dir/model.cpp.o.d"
  "CMakeFiles/pm_milp.dir/presolve.cpp.o"
  "CMakeFiles/pm_milp.dir/presolve.cpp.o.d"
  "CMakeFiles/pm_milp.dir/simplex.cpp.o"
  "CMakeFiles/pm_milp.dir/simplex.cpp.o.d"
  "libpm_milp.a"
  "libpm_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
