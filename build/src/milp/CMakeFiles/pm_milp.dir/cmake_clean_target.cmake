file(REMOVE_RECURSE
  "libpm_milp.a"
)
