# Empty compiler generated dependencies file for pm_milp.
# This may be replaced when dependencies are built.
