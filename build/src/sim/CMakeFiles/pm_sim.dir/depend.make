# Empty dependencies file for pm_sim.
# This may be replaced when dependencies are built.
