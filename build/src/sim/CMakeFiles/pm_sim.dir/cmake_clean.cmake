file(REMOVE_RECURSE
  "CMakeFiles/pm_sim.dir/cascade.cpp.o"
  "CMakeFiles/pm_sim.dir/cascade.cpp.o.d"
  "CMakeFiles/pm_sim.dir/control_plane.cpp.o"
  "CMakeFiles/pm_sim.dir/control_plane.cpp.o.d"
  "CMakeFiles/pm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pm_sim.dir/event_queue.cpp.o.d"
  "libpm_sim.a"
  "libpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
