file(REMOVE_RECURSE
  "libpm_ctrl.a"
)
