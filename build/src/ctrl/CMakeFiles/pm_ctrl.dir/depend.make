# Empty dependencies file for pm_ctrl.
# This may be replaced when dependencies are built.
