file(REMOVE_RECURSE
  "CMakeFiles/pm_ctrl.dir/channel.cpp.o"
  "CMakeFiles/pm_ctrl.dir/channel.cpp.o.d"
  "CMakeFiles/pm_ctrl.dir/controller.cpp.o"
  "CMakeFiles/pm_ctrl.dir/controller.cpp.o.d"
  "CMakeFiles/pm_ctrl.dir/simulation.cpp.o"
  "CMakeFiles/pm_ctrl.dir/simulation.cpp.o.d"
  "CMakeFiles/pm_ctrl.dir/switch_agent.cpp.o"
  "CMakeFiles/pm_ctrl.dir/switch_agent.cpp.o.d"
  "libpm_ctrl.a"
  "libpm_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
