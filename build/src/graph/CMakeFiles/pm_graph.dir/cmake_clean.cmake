file(REMOVE_RECURSE
  "CMakeFiles/pm_graph.dir/graph.cpp.o"
  "CMakeFiles/pm_graph.dir/graph.cpp.o.d"
  "CMakeFiles/pm_graph.dir/k_shortest.cpp.o"
  "CMakeFiles/pm_graph.dir/k_shortest.cpp.o.d"
  "CMakeFiles/pm_graph.dir/path_count.cpp.o"
  "CMakeFiles/pm_graph.dir/path_count.cpp.o.d"
  "CMakeFiles/pm_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/pm_graph.dir/shortest_path.cpp.o.d"
  "libpm_graph.a"
  "libpm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
