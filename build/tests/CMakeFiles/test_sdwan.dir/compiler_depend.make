# Empty compiler generated dependencies file for test_sdwan.
# This may be replaced when dependencies are built.
