file(REMOVE_RECURSE
  "CMakeFiles/test_sdwan.dir/test_sdwan.cpp.o"
  "CMakeFiles/test_sdwan.dir/test_sdwan.cpp.o.d"
  "test_sdwan"
  "test_sdwan.pdb"
  "test_sdwan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdwan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
