
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cascade.cpp" "tests/CMakeFiles/test_cascade.dir/test_cascade.cpp.o" "gcc" "tests/CMakeFiles/test_cascade.dir/test_cascade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctrl/CMakeFiles/pm_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/pm_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/sdwan/CMakeFiles/pm_sdwan.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
