# Empty compiler generated dependencies file for test_cascade.
# This may be replaced when dependencies are built.
