# Empty dependencies file for test_abilene.
# This may be replaced when dependencies are built.
