file(REMOVE_RECURSE
  "CMakeFiles/test_abilene.dir/test_abilene.cpp.o"
  "CMakeFiles/test_abilene.dir/test_abilene.cpp.o.d"
  "test_abilene"
  "test_abilene.pdb"
  "test_abilene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abilene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
