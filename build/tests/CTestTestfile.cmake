# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_sdwan[1]_include.cmake")
include("/root/repo/build/tests/test_milp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_cascade[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_random_networks[1]_include.cmake")
include("/root/repo/build/tests/test_ctrl[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_abilene[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
