# Empty compiler generated dependencies file for successive_failures.
# This may be replaced when dependencies are built.
