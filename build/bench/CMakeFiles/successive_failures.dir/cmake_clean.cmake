file(REMOVE_RECURSE
  "CMakeFiles/successive_failures.dir/successive_failures.cpp.o"
  "CMakeFiles/successive_failures.dir/successive_failures.cpp.o.d"
  "successive_failures"
  "successive_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/successive_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
