# Empty dependencies file for fig7_computation_time.
# This may be replaced when dependencies are built.
