# Empty dependencies file for cascade_analysis.
# This may be replaced when dependencies are built.
