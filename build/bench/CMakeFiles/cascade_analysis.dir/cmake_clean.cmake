file(REMOVE_RECURSE
  "CMakeFiles/cascade_analysis.dir/cascade_analysis.cpp.o"
  "CMakeFiles/cascade_analysis.dir/cascade_analysis.cpp.o.d"
  "cascade_analysis"
  "cascade_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
