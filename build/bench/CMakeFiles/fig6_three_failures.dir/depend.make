# Empty dependencies file for fig6_three_failures.
# This may be replaced when dependencies are built.
