file(REMOVE_RECURSE
  "CMakeFiles/fig6_three_failures.dir/fig6_three_failures.cpp.o"
  "CMakeFiles/fig6_three_failures.dir/fig6_three_failures.cpp.o.d"
  "fig6_three_failures"
  "fig6_three_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_three_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
