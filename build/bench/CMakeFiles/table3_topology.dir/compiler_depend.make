# Empty compiler generated dependencies file for table3_topology.
# This may be replaced when dependencies are built.
