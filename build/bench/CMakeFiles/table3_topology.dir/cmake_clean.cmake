file(REMOVE_RECURSE
  "CMakeFiles/table3_topology.dir/table3_topology.cpp.o"
  "CMakeFiles/table3_topology.dir/table3_topology.cpp.o.d"
  "table3_topology"
  "table3_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
