# Empty dependencies file for traffic_resilience.
# This may be replaced when dependencies are built.
