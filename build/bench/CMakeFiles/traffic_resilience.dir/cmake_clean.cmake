file(REMOVE_RECURSE
  "CMakeFiles/traffic_resilience.dir/traffic_resilience.cpp.o"
  "CMakeFiles/traffic_resilience.dir/traffic_resilience.cpp.o.d"
  "traffic_resilience"
  "traffic_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
