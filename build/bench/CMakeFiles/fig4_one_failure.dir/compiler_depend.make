# Empty compiler generated dependencies file for fig4_one_failure.
# This may be replaced when dependencies are built.
