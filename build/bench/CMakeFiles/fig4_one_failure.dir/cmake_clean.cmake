file(REMOVE_RECURSE
  "CMakeFiles/fig4_one_failure.dir/fig4_one_failure.cpp.o"
  "CMakeFiles/fig4_one_failure.dir/fig4_one_failure.cpp.o.d"
  "fig4_one_failure"
  "fig4_one_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_one_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
