file(REMOVE_RECURSE
  "CMakeFiles/fig5_two_failures.dir/fig5_two_failures.cpp.o"
  "CMakeFiles/fig5_two_failures.dir/fig5_two_failures.cpp.o.d"
  "fig5_two_failures"
  "fig5_two_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_two_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
