# Empty compiler generated dependencies file for traffic_surge.
# This may be replaced when dependencies are built.
