file(REMOVE_RECURSE
  "CMakeFiles/traffic_surge.dir/traffic_surge.cpp.o"
  "CMakeFiles/traffic_surge.dir/traffic_surge.cpp.o.d"
  "traffic_surge"
  "traffic_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
