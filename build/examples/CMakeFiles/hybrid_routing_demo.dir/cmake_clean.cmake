file(REMOVE_RECURSE
  "CMakeFiles/hybrid_routing_demo.dir/hybrid_routing_demo.cpp.o"
  "CMakeFiles/hybrid_routing_demo.dir/hybrid_routing_demo.cpp.o.d"
  "hybrid_routing_demo"
  "hybrid_routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
