# Empty dependencies file for att_failover.
# This may be replaced when dependencies are built.
