file(REMOVE_RECURSE
  "CMakeFiles/att_failover.dir/att_failover.cpp.o"
  "CMakeFiles/att_failover.dir/att_failover.cpp.o.d"
  "att_failover"
  "att_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/att_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
