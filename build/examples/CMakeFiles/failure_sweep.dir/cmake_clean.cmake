file(REMOVE_RECURSE
  "CMakeFiles/failure_sweep.dir/failure_sweep.cpp.o"
  "CMakeFiles/failure_sweep.dir/failure_sweep.cpp.o.d"
  "failure_sweep"
  "failure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
