#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "core/metrics.hpp"
#include "core/naive.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "core/scenario.hpp"
#include "sim/cascade.hpp"

namespace pm {
namespace {

const sdwan::Network& att() {
  static const sdwan::Network net = core::make_att_network();
  return net;
}

// ---------------------------------------------------------------------
// NaiveNearest baseline
// ---------------------------------------------------------------------

TEST(NaiveNearest, AdoptsEverySwitchAtItsNearestController) {
  const sdwan::FailureState state(att(), {{3}});
  const core::RecoveryPlan plan = core::run_naive_nearest(state);
  EXPECT_EQ(plan.mapping.size(), state.offline_switches().size());
  for (const auto& [sw, ctrl] : plan.mapping) {
    EXPECT_EQ(ctrl, state.nearest_active_controller(sw));
  }
  EXPECT_TRUE(plan.whole_switch_control);
}

TEST(NaiveNearest, CanViolateCapacity) {
  // Fail controllers of nodes 13 and 20: the naive takeover dumps the
  // hub's whole gamma on nearby controllers, which cannot hold it.
  const sdwan::FailureState state(att(), {{3, 4}});
  const core::RecoveryPlan plan = core::run_naive_nearest(state);
  EXPECT_FALSE(core::validate_plan(state, plan).empty())
      << "the strawman is supposed to overload controllers here";
}

// ---------------------------------------------------------------------
// Cascade simulation
// ---------------------------------------------------------------------

TEST(Cascade, PmNeverCascades) {
  const sim::RecoveryPolicy pm = [](const sdwan::FailureState& st) {
    return core::run_pm(st);
  };
  for (int k = 1; k <= 3; ++k) {
    for (const auto& sc : sdwan::enumerate_failures(att(), k)) {
      const auto r = sim::simulate_cascade(att(), sc.failed, pm);
      EXPECT_EQ(r.induced_failures(), 0u) << sc.label(att());
      EXPECT_FALSE(r.collapsed);
      EXPECT_EQ(r.rounds.size(), 1u);
      EXPECT_LE(r.rounds.front().max_load_ratio, 1.0 + 1e-9);
    }
  }
}

TEST(Cascade, NaiveCascadesSomewhere) {
  const sim::RecoveryPolicy naive = [](const sdwan::FailureState& st) {
    return core::run_naive_nearest(st);
  };
  int cascades = 0;
  for (const auto& sc : sdwan::enumerate_failures(att(), 2)) {
    const auto r = sim::simulate_cascade(att(), sc.failed, naive);
    if (r.induced_failures() > 0) ++cascades;
    // Bookkeeping invariants hold regardless.
    EXPECT_GE(r.final_failed.size(), sc.failed.size());
    EXPECT_EQ(r.rounds.front().newly_failed, sc.failed);
  }
  EXPECT_GT(cascades, 0)
      << "capacity-blind adoption must overload someone in 2-failure "
         "cases";
}

TEST(Cascade, ToleranceDampensCascade) {
  const sim::RecoveryPolicy naive = [](const sdwan::FailureState& st) {
    return core::run_naive_nearest(st);
  };
  int strict = 0;
  int lax = 0;
  for (const auto& sc : sdwan::enumerate_failures(att(), 2)) {
    strict += sim::simulate_cascade(att(), sc.failed, naive, 0.0)
                      .induced_failures() > 0
                  ? 1
                  : 0;
    lax += sim::simulate_cascade(att(), sc.failed, naive, 10.0)
                   .induced_failures() > 0
               ? 1
               : 0;
  }
  EXPECT_LE(lax, strict);
  EXPECT_EQ(lax, 0);  // 1000% headroom tolerance swallows everything
}

TEST(Cascade, CollapseIsReported) {
  // A pathological policy that overloads everyone by claiming per-switch
  // control at every controller... simplest: naive with zero-capacity
  // network. Use a tiny capacity so any adoption overloads.
  sdwan::NetworkConfig cfg;
  cfg.controller_capacity = 1.0;  // normal load already exceeds this
  const sdwan::Network tiny = core::make_att_network(cfg);
  const sim::RecoveryPolicy naive = [](const sdwan::FailureState& st) {
    return core::run_naive_nearest(st);
  };
  const auto r = sim::simulate_cascade(tiny, {0}, naive);
  EXPECT_TRUE(r.collapsed);
  EXPECT_EQ(r.final_failed.size(),
            static_cast<std::size_t>(tiny.controller_count()));
}

// ---------------------------------------------------------------------
// Incremental PM (successive failures) + churn metric
// ---------------------------------------------------------------------

TEST(PlanChurn, SelfChurnIsZeroAndDiffCounts) {
  const sdwan::FailureState state(att(), {{3}});
  const core::RecoveryPlan plan = core::run_pm(state);
  const auto self = core::plan_churn(plan, plan);
  EXPECT_EQ(self.total(), 0u);

  core::RecoveryPlan other = plan;
  ASSERT_FALSE(other.mapping.empty());
  // Change one mapping, add one entry, remove one entry.
  const auto first_switch = other.mapping.begin()->first;
  other.mapping[first_switch] =
      other.mapping.begin()->second == state.active_controllers().front()
          ? state.active_controllers().back()
          : state.active_controllers().front();
  other.sdn_assignments.erase(other.sdn_assignments.begin());
  other.sdn_assignments.insert({-99, -99});
  const auto churn = core::plan_churn(plan, other);
  EXPECT_EQ(churn.mappings_changed, 1u);
  EXPECT_EQ(churn.entries_added, 1u);
  EXPECT_EQ(churn.entries_removed, 1u);
  EXPECT_EQ(churn.total(), 3u);
}

TEST(IncrementalPm, ValidAndLowerChurnInAggregate) {
  // A single sequence can tie (e.g. when the first plan leaned on the
  // controller that dies next, the seed contributes nothing), so compare
  // churn and quality summed over every ordered failure pair.
  std::size_t churn_incr_sum = 0;
  std::size_t churn_scratch_sum = 0;
  std::int64_t total_incr = 0;
  std::int64_t total_scratch = 0;
  const int m = att().controller_count();
  for (int first = 0; first < m; ++first) {
    for (int second = 0; second < m; ++second) {
      if (first == second) continue;
      const sdwan::FailureState st1(att(), {{first}});
      const core::RecoveryPlan plan1 = core::run_pm(st1);
      sdwan::FailureScenario sc2;
      sc2.failed = {std::min(first, second), std::max(first, second)};
      const sdwan::FailureState st2(att(), sc2);

      core::PmOptions opts;
      opts.seed = &plan1;
      const core::RecoveryPlan incremental = core::run_pm(st2, opts);
      const core::RecoveryPlan scratch = core::run_pm(st2);
      ASSERT_TRUE(core::validate_plan(st2, incremental).empty());

      churn_incr_sum += core::plan_churn(plan1, incremental).total();
      churn_scratch_sum += core::plan_churn(plan1, scratch).total();
      total_incr +=
          core::evaluate_plan(st2, incremental).total_programmability;
      total_scratch +=
          core::evaluate_plan(st2, scratch).total_programmability;
    }
  }
  // PM is deterministic and stable, so from-scratch recomputation often
  // re-derives the same plan; seeding guarantees churn never exceeds it.
  EXPECT_LE(churn_incr_sum, churn_scratch_sum);
  // Quality stays within 10% of scratch in aggregate.
  EXPECT_GE(total_incr,
            static_cast<std::int64_t>(0.9 * static_cast<double>(
                                                total_scratch)));
}

TEST(IncrementalPm, SeedMappingsToFailedControllersDropped) {
  // Seed mappings that point at the newly failed controller must not
  // survive into the incremental plan.
  const sdwan::FailureState st1(att(), {{4}});  // C20 fails first
  const core::RecoveryPlan plan1 = core::run_pm(st1);
  // Did plan1 map anything to controller 3 (C13)? It is the nearest
  // neighbor of the mountain domain, so almost surely yes.
  bool used_c13 = false;
  for (const auto& [sw, j] : plan1.mapping) {
    (void)sw;
    if (j == 3) used_c13 = true;
  }
  const sdwan::FailureState st2(att(), {{3, 4}});  // now C13 dies too
  core::PmOptions opts;
  opts.seed = &plan1;
  const core::RecoveryPlan plan2 = core::run_pm(st2, opts);
  for (const auto& [sw, j] : plan2.mapping) {
    (void)sw;
    EXPECT_NE(j, 3);
    EXPECT_NE(j, 4);
  }
  EXPECT_TRUE(core::validate_plan(st2, plan2).empty());
  (void)used_c13;
}

TEST(Cascade, RoundPlansRecordNaiveCollapseWhileSmartPoliciesHold) {
  // The paper's hub failure set: controllers at nodes 13 and 20 (ids 3
  // and 4). Capacity-blind nearest-controller adoption overloads its
  // adopters round after round until every controller is down; the
  // capacity-aware policies absorb the exact same failure set in one
  // round. round_plans exposes the per-round planning record that makes
  // the difference inspectable.
  const std::vector<sdwan::ControllerId> initial = {3, 4};
  const sim::RecoveryPolicy naive = [](const sdwan::FailureState& st) {
    return core::run_naive_nearest(st);
  };
  const auto nr = sim::simulate_cascade(att(), initial, naive);
  EXPECT_GT(nr.induced_failures(), 0u);
  EXPECT_TRUE(nr.collapsed);
  // One plan per planning round; the terminal collapse round plans
  // nothing, so on collapse there is exactly one fewer plan than rounds.
  ASSERT_EQ(nr.round_plans.size(), nr.rounds.size() - 1);

  const std::vector<sim::RecoveryPolicy> smart = {
      [](const sdwan::FailureState& st) { return core::run_pm(st); },
      [](const sdwan::FailureState& st) {
        return core::run_retroflow(st);
      },
      [](const sdwan::FailureState& st) { return core::run_pg(st); },
  };
  for (const auto& policy : smart) {
    const auto r = sim::simulate_cascade(att(), initial, policy);
    EXPECT_EQ(r.induced_failures(), 0u);
    EXPECT_FALSE(r.collapsed);
    ASSERT_EQ(r.round_plans.size(), r.rounds.size());
    // The recorded last round IS the final plan.
    EXPECT_EQ(r.final_plan.mapping, r.round_plans.back().mapping);
    EXPECT_EQ(r.final_plan.sdn_assignments,
              r.round_plans.back().sdn_assignments);
  }
}

TEST(IncrementalPm, EmptySeedEqualsScratch) {
  const sdwan::FailureState st(att(), {{1}});
  core::RecoveryPlan empty;
  core::PmOptions opts;
  opts.seed = &empty;
  const auto seeded = core::run_pm(st, opts);
  const auto scratch = core::run_pm(st);
  EXPECT_EQ(seeded.mapping, scratch.mapping);
  EXPECT_EQ(seeded.sdn_assignments, scratch.sdn_assignments);
}

}  // namespace
}  // namespace pm
