#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "milp/branch_bound.hpp"
#include "milp/model.hpp"
#include "milp/presolve.hpp"
#include "milp/simplex.hpp"

namespace pm::milp {
namespace {

// ---------------------------------------------------------------------
// Model container
// ---------------------------------------------------------------------

TEST(Model, VariableValidation) {
  Model m;
  EXPECT_THROW(m.add_variable("bad", 2.0, 1.0, 0.0, VarType::kContinuous),
               std::invalid_argument);
  const int b = m.add_variable("b", -5.0, 5.0, 1.0, VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.variable(b).lower, 0.0);  // clamped
  EXPECT_DOUBLE_EQ(m.variable(b).upper, 1.0);
}

TEST(Model, ConstraintMergingAndValidation) {
  Model m;
  const int x = m.add_continuous("x", 0, 10, 1);
  const int c = m.add_constraint("c", {{x, 1.0}, {x, 2.0}, {x, -3.0}},
                                 Sense::kLe, 5.0);
  EXPECT_TRUE(m.constraint(c).terms.empty());  // 1+2-3 = 0 dropped
  EXPECT_THROW(m.add_constraint("bad", {{7, 1.0}}, Sense::kLe, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      m.add_constraint("nan", {{x, std::nan("")}}, Sense::kLe, 0.0),
      std::invalid_argument);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const int x = m.add_binary("x", 1);
  const int y = m.add_continuous("y", 0, 5, 1);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 3.0);
  EXPECT_TRUE(m.is_feasible({1.0, 2.0}));
  EXPECT_FALSE(m.is_feasible({1.0, 2.5}));   // violates c
  EXPECT_FALSE(m.is_feasible({0.5, 1.0}));   // x fractional
  EXPECT_FALSE(m.is_feasible({1.0, 6.0}));   // y above bound
  EXPECT_FALSE(m.is_feasible({1.0}));        // wrong size
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 2.0}), 3.0);
}

TEST(Model, HasIntegerVariables) {
  Model m;
  m.add_continuous("x", 0, 1, 0);
  EXPECT_FALSE(m.has_integer_variables());
  m.add_binary("b", 0);
  EXPECT_TRUE(m.has_integer_variables());
}

// ---------------------------------------------------------------------
// LP: known cases
// ---------------------------------------------------------------------

TEST(Simplex, TextbookMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x <= 3 -> (3, 1), 11.
  Model m;
  const int x = m.add_continuous("x", 0, 3, 3);
  const int y = m.add_continuous("y", 0, kInfinity, 2);
  m.set_objective_sense(Objective::kMaximize);
  m.add_constraint("c1", {{x, 1}, {y, 1}}, Sense::kLe, 4);
  m.add_constraint("c2", {{x, 1}, {y, 3}}, Sense::kLe, 6);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 11.0, 1e-9);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Simplex, Minimization) {
  // min x + y s.t. x + y = 10, x - y >= 2 -> objective 10.
  Model m;
  const int x = m.add_continuous("x", 0, kInfinity, 1);
  const int y = m.add_continuous("y", 0, kInfinity, 1);
  m.add_constraint("e", {{x, 1}, {y, 1}}, Sense::kEq, 10);
  m.add_constraint("g", {{x, 1}, {y, -1}}, Sense::kGe, 2);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_GE(r.x[0] - r.x[1], 2.0 - 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const int x = m.add_continuous("x", 0, 3, 1);
  m.add_constraint("c", {{x, 1}}, Sense::kGe, 5);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model m;
  const int x = m.add_continuous("x", 0, kInfinity, 1);
  m.set_objective_sense(Objective::kMaximize);
  m.add_constraint("c", {{x, -1}}, Sense::kLe, 0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min x s.t. x >= -7 with x free -> -7.
  Model m;
  const int x = m.add_continuous("x", -kInfinity, kInfinity, 1);
  m.add_constraint("c", {{x, 1}}, Sense::kGe, -7);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-9);
}

TEST(Simplex, NegativeRhsNeedsPhase1) {
  // -x <= -3 i.e. x >= 3; min x with x in [0, 10] -> 3.
  Model m;
  const int x = m.add_continuous("x", 0, 10, 1);
  m.add_constraint("c", {{x, -1}}, Sense::kLe, -3);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(Simplex, BoundFlipPath) {
  // max x + y, x + y <= 1.5, x,y in [0,1]: optimum 1.5 needs one variable
  // at its upper bound.
  Model m;
  const int x = m.add_continuous("x", 0, 1, 1);
  const int y = m.add_continuous("y", 0, 1, 1);
  m.set_objective_sense(Objective::kMaximize);
  m.add_constraint("c", {{x, 1}, {y, 1}}, Sense::kLe, 1.5);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-9);
}

TEST(Simplex, NoConstraints) {
  Model m;
  m.add_continuous("x", -2, 5, 1);
  m.set_objective_sense(Objective::kMaximize);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 5.0);

  Model u;
  u.add_continuous("x", 0, kInfinity, 1);
  u.set_objective_sense(Objective::kMaximize);
  EXPECT_EQ(solve_lp(u).status, LpStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Highly degenerate: many redundant constraints through the origin.
  Model m;
  const int x = m.add_continuous("x", 0, kInfinity, -1);
  const int y = m.add_continuous("y", 0, kInfinity, -1);
  m.set_objective_sense(Objective::kMinimize);
  for (int k = 1; k <= 6; ++k) {
    m.add_constraint("c" + std::to_string(k),
                     {{x, static_cast<double>(k)}, {y, 1.0}}, Sense::kGe,
                     0.0);
  }
  m.add_constraint("cap", {{x, 1}, {y, 1}}, Sense::kLe, 2.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
}

// ---------------------------------------------------------------------
// LP: randomized cross-check against grid enumeration.
// Feasible regions are boxes with a few cuts; we verify the simplex
// objective dominates every feasible grid point (LP optimum must be >=
// any feasible point's value for maximization) and is itself feasible.
// ---------------------------------------------------------------------

class SimplexRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandom, OptimumDominatesFeasibleGrid) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coeff(-5.0, 5.0);
  std::uniform_real_distribution<double> rhs(1.0, 20.0);

  Model m;
  const int n = 4;
  for (int j = 0; j < n; ++j) {
    m.add_continuous("x" + std::to_string(j), 0.0, 4.0, coeff(rng));
  }
  m.set_objective_sense(Objective::kMaximize);
  for (int i = 0; i < 5; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, coeff(rng)});
    m.add_constraint("c" + std::to_string(i), std::move(terms), Sense::kLe,
                     rhs(rng));
  }

  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal) << "seed=" << GetParam();
  EXPECT_TRUE(m.is_feasible(r.x, 1e-6));

  // Enumerate the integer grid {0..4}^4 and check no feasible point beats
  // the LP optimum.
  std::vector<double> pt(n);
  for (int a = 0; a <= 4; ++a) {
    for (int b = 0; b <= 4; ++b) {
      for (int c = 0; c <= 4; ++c) {
        for (int d = 0; d <= 4; ++d) {
          pt = {static_cast<double>(a), static_cast<double>(b),
                static_cast<double>(c), static_cast<double>(d)};
          if (m.is_feasible(pt)) {
            EXPECT_LE(m.objective_value(pt), r.objective + 1e-6);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Values(101, 102, 103, 104, 105, 106,
                                           107, 108, 109, 110));

// ---------------------------------------------------------------------
// MIP
// ---------------------------------------------------------------------

TEST(Mip, Knapsack) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  std::vector<Term> terms;
  for (int i = 0; i < 4; ++i) {
    const int v = m.add_binary("v" + std::to_string(i), value[i]);
    terms.push_back({v, weight[i]});
  }
  m.add_constraint("cap", terms, Sense::kLe, 14);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 21.0, 1e-9);  // items 1, 2, 3
  EXPECT_NEAR(r.best_bound, 21.0, 1e-6);
}

TEST(Mip, PureLpPassThrough) {
  Model m;
  const int x = m.add_continuous("x", 0, 2, 1);
  m.set_objective_sense(Objective::kMaximize);
  m.add_constraint("c", {{x, 1}}, Sense::kLe, 1.5);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-9);
  EXPECT_EQ(r.nodes_explored, 1);
}

TEST(Mip, InfeasibleIntegerProblem) {
  // 2x = 1 with x binary.
  Model m;
  const int x = m.add_binary("x", 1);
  m.add_constraint("c", {{x, 2}}, Sense::kEq, 1);
  EXPECT_EQ(solve_mip(m).status, MipStatus::kInfeasible);
}

TEST(Mip, GeneralIntegerVariables) {
  // max x + y, 3x + 5y <= 15, x,y integer in [0, 4] -> (4,0): 4? or
  // (0,3): 3, (4, 0): obj 4; but x+y with (2,1)=3... best integer: x=4
  // (12 <= 15) y=0 -> 4? (3,1): 9+5=14 -> 4. So optimum 4 at (4, 0) or (3, 1).
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_variable("x", 0, 4, 1, VarType::kInteger);
  const int y = m.add_variable("y", 0, 4, 1, VarType::kInteger);
  m.add_constraint("c", {{x, 3}, {y, 5}}, Sense::kLe, 15);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);
}

TEST(Mip, WarmStartRespectedAndImproved) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  std::vector<Term> terms;
  for (int i = 0; i < 4; ++i) {
    const int v = m.add_binary("v" + std::to_string(i), value[i]);
    terms.push_back({v, weight[i]});
  }
  m.add_constraint("cap", terms, Sense::kLe, 14);
  MipOptions opts;
  opts.warm_start = std::vector<double>{1, 0, 0, 1};  // value 12, feasible
  const MipResult r = solve_mip(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 21.0, 1e-9);  // improved past the warm start

  // With a zero node budget the warm start itself must be returned.
  MipOptions frozen;
  frozen.warm_start = std::vector<double>{1, 0, 0, 1};
  frozen.node_limit = 0;
  const MipResult f = solve_mip(m, frozen);
  EXPECT_EQ(f.status, MipStatus::kFeasible);
  EXPECT_NEAR(f.objective, 12.0, 1e-9);
}

TEST(Mip, InfeasibleWarmStartIgnored) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_binary("x", 1);
  m.add_constraint("c", {{x, 1}}, Sense::kLe, 1);
  MipOptions opts;
  opts.warm_start = std::vector<double>{2.0};  // out of bounds
  const MipResult r = solve_mip(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(Mip, NodeLimitReportsHonestStatus) {
  // A problem needing branching, with no warm start and a zero budget.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  std::vector<Term> terms;
  for (int i = 0; i < 6; ++i) {
    const int v = m.add_binary("v" + std::to_string(i), 1.0 + 0.1 * i);
    terms.push_back({v, 2.0 + static_cast<double>(i % 3)});
  }
  m.add_constraint("cap", terms, Sense::kLe, 7.0);
  MipOptions opts;
  opts.node_limit = 0;
  const MipResult r = solve_mip(m, opts);
  EXPECT_EQ(r.status, MipStatus::kNoSolutionFound);
  EXPECT_FALSE(r.has_solution());
}

class MipRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MipRandom, MatchesBruteForceOnBinaryProblems) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coeff(-4.0, 6.0);
  std::uniform_real_distribution<double> rhs(2.0, 12.0);

  const int n = 8;
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  for (int j = 0; j < n; ++j) {
    m.add_binary("b" + std::to_string(j), coeff(rng));
  }
  for (int i = 0; i < 4; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, std::abs(coeff(rng))});
    }
    m.add_constraint("c" + std::to_string(i), std::move(terms), Sense::kLe,
                     rhs(rng));
  }

  // Brute force over all 2^8 assignments.
  double best = -1e18;
  bool any = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[static_cast<std::size_t>(j)] = (mask >> j) & 1;
    if (m.is_feasible(x)) {
      any = true;
      best = std::max(best, m.objective_value(x));
    }
  }
  ASSERT_TRUE(any);  // all-zeros is always feasible here

  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal) << "seed=" << GetParam();
  EXPECT_NEAR(r.objective, best, 1e-6) << "seed=" << GetParam();
  EXPECT_TRUE(m.is_feasible(r.x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandom,
                         ::testing::Values(201, 202, 203, 204, 205, 206,
                                           207, 208, 209, 210, 211, 212));

TEST(Mip, MixedIntegerContinuous) {
  // max 2b + y, y <= 1.7, b binary, b + y <= 2 -> b=1, y=1 -> wait:
  // y <= 1.7 and b + y <= 2 -> b=1, y=1 -> 3? y can be 1.0 only if
  // b + y <= 2 -> y <= 1; objective 2*1 + 1 = 3.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int b = m.add_binary("b", 2);
  const int y = m.add_continuous("y", 0, 1.7, 1);
  m.add_constraint("c", {{b, 1}, {y, 1}}, Sense::kLe, 2);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 1.0, 1e-9);
}

TEST(MipStatusStrings, AllCovered) {
  EXPECT_EQ(to_string(MipStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(MipStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
}


// ---------------------------------------------------------------------
// Presolve
// ---------------------------------------------------------------------

TEST(Presolve, FixesSingletonEqualityAndFoldsIntoRows) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_continuous("x", 0, 10, 1);
  const int y = m.add_continuous("y", 0, 10, 1);
  m.add_constraint("fix", {{x, 2.0}}, Sense::kEq, 6.0);   // x = 3
  m.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 8.0);
  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.variables_fixed, 1);
  EXPECT_EQ(pre.reduced.variable_count(), 1);
  // The remaining row became y <= 5... as a singleton it is absorbed
  // into y's bound, so no rows remain.
  EXPECT_EQ(pre.reduced.constraint_count(), 0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 5.0);
  // restore() lifts correctly.
  const auto full = pre.restore({4.0});
  ASSERT_EQ(full.size(), 2u);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(x)], 3.0);
  EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(y)], 4.0);
}

TEST(Presolve, DetectsInfeasibility) {
  {
    Model m;
    const int x = m.add_continuous("x", 0, 1, 0);
    m.add_constraint("c", {{x, 1.0}}, Sense::kGe, 5.0);
    EXPECT_TRUE(presolve(m).infeasible);
  }
  {
    Model m;
    const int x = m.add_binary("x", 0);
    // 2x = 1 -> x = 0.5, not integral.
    m.add_constraint("c", {{x, 2.0}}, Sense::kEq, 1.0);
    EXPECT_TRUE(presolve(m).infeasible);
  }
  {
    Model m;
    (void)m.add_continuous("x", 0, 1, 0);
    m.add_constraint("empty", {}, Sense::kGe, 3.0);  // 0 >= 3
    EXPECT_TRUE(presolve(m).infeasible);
  }
}

TEST(Presolve, IntegerBoundRounding) {
  Model m;
  (void)m.add_variable("k", 0.3, 4.7, 1.0, VarType::kInteger);
  const PresolveResult pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lower, 1.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 4.0);
}

TEST(Presolve, NoopOnIrreducibleModel) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_binary("x", 1);
  const int y = m.add_binary("y", 1);
  m.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0);
  const PresolveResult pre = presolve(m);
  EXPECT_EQ(pre.variables_fixed, 0);
  EXPECT_EQ(pre.rows_removed, 0);
  EXPECT_EQ(pre.reduced.variable_count(), 2);
}

class PresolveEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PresolveEquivalence, SolveMipAgreesWithAndWithoutPresolve) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coeff(-4.0, 6.0);
  std::uniform_real_distribution<double> rhs(1.0, 10.0);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int n = 7;
  for (int j = 0; j < n; ++j) {
    m.add_binary("b" + std::to_string(j), coeff(rng));
  }
  // A mix of singleton rows (absorbed), fixings, and real constraints.
  m.add_constraint("fix0", {{0, 1.0}}, Sense::kEq, 1.0);
  m.add_constraint("cap1", {{1, 1.0}}, Sense::kLe, 0.0);  // forces b1 = 0
  for (int i = 0; i < 3; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, std::abs(coeff(rng))});
    m.add_constraint("c" + std::to_string(i), std::move(terms), Sense::kLe,
                     rhs(rng) + 3.0);
  }
  MipOptions with;
  with.presolve = true;
  MipOptions without;
  without.presolve = false;
  const MipResult a = solve_mip(m, with);
  const MipResult b = solve_mip(m, without);
  ASSERT_EQ(a.status, MipStatus::kOptimal) << "seed=" << GetParam();
  ASSERT_EQ(b.status, MipStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed=" << GetParam();
  EXPECT_TRUE(m.is_feasible(a.x));
  EXPECT_NEAR(a.x[0], 1.0, 1e-9);
  EXPECT_NEAR(a.x[1], 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalence,
                         ::testing::Values(301, 302, 303, 304, 305, 306,
                                           307, 308));

// ---------------------------------------------------------------------
// Simplex robustness
// ---------------------------------------------------------------------

TEST(SimplexRobustness, FrequentRefactorizationAgrees) {
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> coeff(0.5, 5.0);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int n = 12;
  for (int j = 0; j < n; ++j) {
    m.add_continuous("x" + std::to_string(j), 0.0, 3.0, coeff(rng));
  }
  for (int i = 0; i < 8; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, coeff(rng)});
    m.add_constraint("c" + std::to_string(i), std::move(terms), Sense::kLe,
                     10.0 + coeff(rng));
  }
  SimplexOptions normal;
  SimplexOptions paranoid;
  paranoid.refactor_every = 2;  // rebuild the basis inverse constantly
  const LpResult a = solve_lp(m, normal);
  const LpResult b = solve_lp(m, paranoid);
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
}

TEST(SimplexRobustness, IterationLimitReported) {
  std::mt19937_64 rng(78);
  std::uniform_real_distribution<double> coeff(0.5, 5.0);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  for (int j = 0; j < 20; ++j) {
    m.add_continuous("x" + std::to_string(j), 0.0, 3.0, coeff(rng));
  }
  for (int i = 0; i < 15; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < 20; ++j) terms.push_back({j, coeff(rng)});
    m.add_constraint("c" + std::to_string(i), std::move(terms), Sense::kLe,
                     12.0);
  }
  SimplexOptions strangled;
  strangled.max_iterations = 1;
  EXPECT_EQ(solve_lp(m, strangled).status, LpStatus::kIterationLimit);
}

}  // namespace
}  // namespace pm::milp
