#include <gtest/gtest.h>

#include <set>

#include "graph/shortest_path.hpp"
#include "sdwan/network.hpp"
#include "topo/att.hpp"
#include "topo/generators.hpp"
#include "topo/placement.hpp"

namespace pm::topo {
namespace {

void expect_partition(const Topology& topo, const Domains& domains, int k) {
  EXPECT_EQ(domains.size(), static_cast<std::size_t>(k));
  std::set<graph::NodeId> seen;
  for (const auto& [controller, members] : domains) {
    bool contains_controller = false;
    for (graph::NodeId v : members) {
      EXPECT_TRUE(seen.insert(v).second) << "node in two domains";
      if (v == controller) contains_controller = true;
    }
    EXPECT_TRUE(contains_controller)
        << "controller " << controller << " outside its domain";
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(topo.node_count()));
}

TEST(Placement, KCenterPartitions) {
  const Topology topo = att_topology();
  for (int k : {1, 2, 4, 6, 10}) {
    expect_partition(topo, k_center_domains(topo, k), k);
  }
}

TEST(Placement, KCenterValidatesK) {
  const Topology topo = att_topology();
  EXPECT_THROW(k_center_domains(topo, 0), std::invalid_argument);
  EXPECT_THROW(k_center_domains(topo, 26), std::invalid_argument);
  EXPECT_THROW(balanced_domains(topo, 0), std::invalid_argument);
}

TEST(Placement, MoreControllersNeverWorsenWorstDelay) {
  const Topology topo = att_topology();
  double prev = 1e18;
  for (int k : {1, 2, 3, 4, 6, 8}) {
    const double worst = worst_case_delay_ms(topo, k_center_domains(topo, k));
    EXPECT_LE(worst, prev + 1e-9) << "k=" << k;
    prev = worst;
  }
}

TEST(Placement, NodesJoinNearestCenter) {
  const Topology topo = att_topology();
  const Domains domains = k_center_domains(topo, 4);
  std::vector<graph::NodeId> centers;
  for (const auto& [c, members] : domains) {
    (void)members;
    centers.push_back(c);
  }
  for (const auto& [c, members] : domains) {
    const auto sssp = graph::dijkstra(topo.graph(), c);
    for (graph::NodeId v : members) {
      const double mine = sssp.dist[static_cast<std::size_t>(v)];
      for (graph::NodeId other : centers) {
        const auto other_sssp = graph::dijkstra(topo.graph(), other);
        EXPECT_GE(other_sssp.dist[static_cast<std::size_t>(v)] + 1e-9, mine)
            << "node " << v << " not at its nearest center";
      }
    }
  }
}

TEST(Placement, BalancedDomainsRespectCap) {
  const Topology topo = att_topology();
  const int k = 5;
  const int slack = 1;
  const Domains domains = balanced_domains(topo, k, slack);
  expect_partition(topo, domains, k);
  const std::size_t cap =
      static_cast<std::size_t>((topo.node_count() + k - 1) / k + slack);
  for (const auto& [c, members] : domains) {
    (void)c;
    EXPECT_LE(members.size(), cap);
  }
}

TEST(Placement, BalancedTradesDelayForBalance) {
  const Topology topo = att_topology();
  const Domains centered = k_center_domains(topo, 4);
  const Domains balanced = balanced_domains(topo, 4, 0);
  std::size_t max_centered = 0;
  std::size_t max_balanced = 0;
  for (const auto& [c, m] : centered) {
    (void)c;
    max_centered = std::max(max_centered, m.size());
  }
  for (const auto& [c, m] : balanced) {
    (void)c;
    max_balanced = std::max(max_balanced, m.size());
  }
  EXPECT_LE(max_balanced, max_centered);
}

TEST(Placement, WorksOnGeneratedTopologies) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Topology topo = waxman(30, 0.5, 0.3, seed);
    const Domains domains = k_center_domains(topo, 5);
    expect_partition(topo, domains, 5);
    // The placement must produce a usable Network.
    sdwan::NetworkConfig cfg;
    cfg.controller_capacity = 10000.0;
    EXPECT_NO_THROW(sdwan::Network(topo, domains, cfg));
  }
}

TEST(Placement, Deterministic) {
  const Topology topo = att_topology();
  const Domains a = k_center_domains(topo, 6);
  const Domains b = k_center_domains(topo, 6);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pm::topo
