// RecoveryPlan serialization contract: the JSON format is pinned by a
// golden file (a format change must show up as a reviewed diff of
// tests/data/), and serialize -> deserialize -> serialize must be
// byte-identical for every algorithm — the property the svc plan cache
// leans on when it treats serialized payloads as canonical.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/naive.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "core/scenario.hpp"
#include "core/serialize.hpp"

#ifndef PM_TEST_DATA_DIR
#define PM_TEST_DATA_DIR "tests/data"
#endif

namespace pm {
namespace {

using util::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The deterministic rendering of a plan: wall clock zeroed (same
/// convention as svc::Engine payloads) so the bytes are a pure function
/// of the plan's decisions.
std::string canonical_plan_json(core::RecoveryPlan plan) {
  plan.solve_seconds = 0.0;
  return core::plan_to_json(plan).to_string(2);
}

TEST(SerializeGolden, PmPlanMatchesGoldenFile) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3, 4}});
  const std::string produced =
      canonical_plan_json(core::run_pm(state)) + "\n";
  const std::string golden =
      read_file(std::string(PM_TEST_DATA_DIR) + "/plan_pm_att_3_4.json");
  EXPECT_EQ(produced, golden)
      << "plan JSON drifted from the golden file; if the format or the "
         "PM algorithm changed intentionally, regenerate "
         "tests/data/plan_pm_att_3_4.json";
}

TEST(SerializeGolden, GoldenFileDeserializesAndValidates) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3, 4}});
  const std::string golden =
      read_file(std::string(PM_TEST_DATA_DIR) + "/plan_pm_att_3_4.json");
  const core::RecoveryPlan plan =
      core::plan_from_json(JsonValue::parse(golden));
  EXPECT_EQ(plan.algorithm, "PM");
  EXPECT_TRUE(core::validate_plan(state, plan).empty());
}

/// serialize -> deserialize -> serialize is byte-identical.
void expect_fixed_point(const core::RecoveryPlan& plan) {
  const std::string once = core::plan_to_json(plan).to_string(2);
  const core::RecoveryPlan back =
      core::plan_from_json(JsonValue::parse(once));
  const std::string twice = core::plan_to_json(back).to_string(2);
  EXPECT_EQ(once, twice) << "algorithm " << plan.algorithm;
}

TEST(SerializeProperty, RoundTripIsByteIdenticalAcrossAlgorithms) {
  const sdwan::Network net = core::make_att_network();
  const std::vector<std::vector<sdwan::ControllerId>> scenarios = {
      {3}, {4}, {3, 4}, {0, 3, 4}};
  for (const auto& failed : scenarios) {
    const sdwan::FailureState state(net, {failed});
    expect_fixed_point(core::run_pm(state));
    expect_fixed_point(core::run_naive_nearest(state));
    expect_fixed_point(core::run_retroflow(state));
    expect_fixed_point(core::run_pg(state));
  }
}

TEST(SerializeProperty, RoundTripPreservesEveryField) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3, 4}});
  const core::RecoveryPlan plan = core::run_pg(state);
  const core::RecoveryPlan back =
      core::plan_from_json(JsonValue::parse(
          core::plan_to_json(plan).to_string()));
  EXPECT_EQ(back.algorithm, plan.algorithm);
  EXPECT_EQ(back.mapping, plan.mapping);
  EXPECT_EQ(back.sdn_assignments, plan.sdn_assignments);
  EXPECT_EQ(back.whole_switch_control, plan.whole_switch_control);
  EXPECT_EQ(back.assignment_controller, plan.assignment_controller);
  EXPECT_DOUBLE_EQ(back.middle_layer_ms, plan.middle_layer_ms);
  EXPECT_DOUBLE_EQ(back.solve_seconds, plan.solve_seconds);
}

}  // namespace
}  // namespace pm
