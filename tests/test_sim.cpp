#include <gtest/gtest.h>

#include <vector>

#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "sim/control_plane.hpp"
#include "sim/event_queue.hpp"

namespace pm::sim {
namespace {

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(9.0, [&] { order.push_back(3); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, StableAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RelativeSchedulingAndCascade) {
  EventQueue q;
  std::vector<double> times;
  q.schedule_in(2.0, [&] {
    times.push_back(q.now());
    q.schedule_in(3.0, [&] { times.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(EventQueue, CancelledEventNeverFires) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  const EventId doomed = q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(doomed));
  EXPECT_FALSE(q.cancel(doomed));  // already cancelled
  EXPECT_EQ(q.run(), 2u);          // cancelled entry is not counted
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelUnknownIdIsRejected) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));  // never issued
}

TEST(EventQueue, CancelFromInsideAnEarlierEvent) {
  EventQueue q;
  int fired = 0;
  const EventId later = q.schedule_at(5.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { q.cancel(later); });
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);  // the cancelled tail never advances time
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(q.run(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(5.0, [&] {
    q.schedule_at(1.0, [&] { seen = q.now(); });  // in the past
  });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

// ---------------------------------------------------------------------
// Control-plane recovery replay
// ---------------------------------------------------------------------

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest()
      : net_(core::make_att_network()), state_(net_, scenario()) {}

  static sdwan::FailureScenario scenario() {
    // Fail the controller at node 13.
    return {{3}};
  }

  sdwan::Network net_;
  sdwan::FailureState state_;
};

TEST_F(ControlPlaneTest, TimelineIsOrdered) {
  const core::RecoveryPlan plan = core::run_pm(state_);
  const RecoveryTimeline t = simulate_recovery(state_, plan);
  EXPECT_GT(t.detected_at, t.failure_at);
  EXPECT_GE(t.plan_ready_at, t.detected_at);
  EXPECT_GE(t.completed_at, t.plan_ready_at);
  for (const auto& [flow, at] : t.flow_recovered_at) {
    (void)flow;
    EXPECT_GE(at, t.plan_ready_at);
    EXPECT_LE(at, t.completed_at);
  }
}

TEST_F(ControlPlaneTest, EveryRecoveredFlowGetsATimestamp) {
  const core::RecoveryPlan plan = core::run_pm(state_);
  const RecoveryTimeline t = simulate_recovery(state_, plan);
  std::set<sdwan::FlowId> flows;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    (void)sw;
    flows.insert(flow);
  }
  EXPECT_EQ(t.flow_recovered_at.size(), flows.size());
  // role request per switch + flow-mod per assignment.
  EXPECT_EQ(t.control_messages,
            plan.sdn_assignments.size() + plan.mapping.size());
}

TEST_F(ControlPlaneTest, DetectionTimeoutShiftsEverything) {
  const core::RecoveryPlan plan = core::run_pm(state_);
  ControlPlaneConfig fast;
  fast.detection_timeout_ms = 100.0;
  ControlPlaneConfig slow;
  slow.detection_timeout_ms = 500.0;
  const auto t_fast = simulate_recovery(state_, plan, fast);
  const auto t_slow = simulate_recovery(state_, plan, slow);
  EXPECT_NEAR(t_slow.detected_at - t_fast.detected_at, 400.0, 1e-9);
  EXPECT_NEAR(t_slow.completed_at - t_fast.completed_at, 400.0, 1e-6);
}

TEST_F(ControlPlaneTest, MiddleLayerSlowsPgDown) {
  const core::RecoveryPlan pm_plan = core::run_pm(state_);
  const core::RecoveryPlan pg_plan = core::run_pg(state_);
  ControlPlaneConfig cfg;
  cfg.plan_compute_ms = 10.0;  // same computation budget for both
  const auto t_pm = simulate_recovery(state_, pm_plan, cfg);
  const auto t_pg = simulate_recovery(state_, pg_plan, cfg);
  EXPECT_GT(t_pg.total_recovery_ms(), t_pm.total_recovery_ms());
}

TEST_F(ControlPlaneTest, InvalidPlanRejected) {
  core::RecoveryPlan bogus;
  bogus.mapping[13] = 0;  // switch 13 offline, controller 0 active — but
  bogus.sdn_assignments.insert({13, -1});  // flow id is nonsense
  EXPECT_THROW(simulate_recovery(state_, bogus), std::exception);
}

TEST_F(ControlPlaneTest, ExplicitComputeBudgetOverridesPlanTime) {
  const core::RecoveryPlan plan = core::run_pm(state_);
  ControlPlaneConfig cfg;
  cfg.plan_compute_ms = 1234.0;
  const auto t = simulate_recovery(state_, plan, cfg);
  EXPECT_NEAR(t.plan_ready_at - t.detected_at, 1234.0, 1e-9);
}

}  // namespace
}  // namespace pm::sim
