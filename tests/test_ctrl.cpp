#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "graph/shortest_path.hpp"

namespace pm::ctrl {
namespace {

const sdwan::Network& att() {
  static const sdwan::Network net = core::make_att_network();
  return net;
}

RecoveryPolicy pm_policy() {
  return [](const sdwan::FailureState& state,
            const core::RecoveryPlan* previous) {
    core::PmOptions opts;
    opts.seed = previous;
    return core::run_pm(state, opts);
  };
}

// ---------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------

TEST(Channel, DeliversWithPropagationDelay) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  double received_at = -1.0;
  channel.attach(0, 0, [&](const Message&) { received_at = queue.now(); });
  channel.attach(1, 13, [&](const Message&) {});
  Message m;
  m.from = 1;
  m.to = 0;
  m.body = Heartbeat{0, 1};
  channel.send(m);
  queue.run();
  // Node 13 (Dallas) to node 0 (New York) over the graph: positive,
  // finite, equals the shortest-path delay.
  EXPECT_GT(received_at, 0.0);
  EXPECT_NEAR(received_at,
              graph::dijkstra(att().topology().graph(), 13)
                  .dist[0],
              1e-9);
  EXPECT_EQ(channel.messages_sent(), 1u);
}

TEST(Channel, DropsToUnknownAndCountsKinds) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  channel.attach(0, 0, [](const Message&) {});
  Message m;
  m.from = 0;
  m.to = 999;  // never attached
  m.body = RoleRequest{1};
  channel.send(m);
  queue.run();
  EXPECT_EQ(channel.messages_dropped(), 1u);
  EXPECT_THROW(channel.send({998, 0, Heartbeat{}}), std::logic_error);
}

TEST(Channel, DetachedEndpointDropsInFlight) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  int received = 0;
  channel.attach(0, 0, [&](const Message&) { ++received; });
  channel.attach(1, 24, [](const Message&) {});
  Message m;
  m.from = 1;
  m.to = 0;
  m.body = Heartbeat{0, 1};
  channel.send(m);
  channel.detach(0);  // before delivery
  queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(channel.messages_dropped(), 1u);
}

TEST(Channel, SendToDetachedEndpointCountsDrop) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  int received = 0;
  channel.attach(0, 0, [&](const Message&) { ++received; });
  channel.attach(1, 24, [](const Message&) {});
  channel.detach(0);  // before the send, not merely before delivery
  Message m;
  m.from = 1;
  m.to = 0;
  m.body = Heartbeat{0, 1};
  channel.send(m);
  queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(channel.messages_sent(), 1u);
  EXPECT_EQ(channel.messages_dropped(), 1u);
}

TEST(Channel, CountsEveryMessageKind) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  channel.attach(0, 0, [](const Message&) {});
  channel.attach(1, 24, [](const Message&) {});
  channel.send({1, 0, Heartbeat{0, 1}});
  channel.send({1, 0, RoleRequest{2}});
  channel.send({0, 1, RoleReply{0, 2}});
  channel.send({1, 0, FlowMod{}});
  channel.send({0, 1, FlowModAck{0, 7}});
  queue.run();
  const auto& kinds = channel.sent_by_kind();
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds.at("heartbeat"), 1u);
  EXPECT_EQ(kinds.at("role-request"), 1u);
  EXPECT_EQ(kinds.at("role-reply"), 1u);
  EXPECT_EQ(kinds.at("flow-mod"), 1u);
  EXPECT_EQ(kinds.at("flow-mod-ack"), 1u);
  EXPECT_EQ(channel.messages_sent(), 5u);
}

TEST(Channel, ResendKeepsSequenceAndCountsRetransmission) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  std::vector<std::uint64_t> seqs;
  channel.attach(0, 0, [&](const Message& m) { seqs.push_back(m.seq); });
  channel.attach(1, 24, [](const Message&) {});
  Message m;
  m.from = 1;
  m.to = 0;
  m.body = Heartbeat{0, 1};
  m.seq = channel.send(m);
  channel.resend(m);
  queue.run();
  EXPECT_EQ(channel.retransmissions(), 1u);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], seqs[1]);
  EXPECT_NE(seqs[0], 0u);
  Message fresh;
  fresh.from = 1;
  fresh.to = 0;
  fresh.body = Heartbeat{};
  EXPECT_THROW(channel.resend(fresh), std::logic_error);
}

// ---------------------------------------------------------------------
// Channel fault injection
// ---------------------------------------------------------------------

TEST(Channel, CertainDropLosesEverythingAndIsCounted) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  int received = 0;
  channel.attach(0, 0, [&](const Message&) { ++received; });
  channel.attach(1, 24, [](const Message&) {});
  ChannelFaultModel model;
  model.drop_probability = 1.0;
  channel.set_fault_model(model);
  for (int i = 0; i < 10; ++i) {
    channel.send({1, 0, Heartbeat{0, static_cast<std::uint64_t>(i)}});
  }
  queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(channel.messages_sent(), 10u);  // sends are still accounted
  EXPECT_EQ(channel.messages_dropped(), 0u);  // injected loss is separate
  EXPECT_EQ(channel.fault_stats().injected_drops, 10u);
  EXPECT_EQ(channel.fault_stats().by_kind.at("heartbeat").drops, 10u);
}

TEST(Channel, CertainDuplicationDeliversTwiceWithSameSeq) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  std::vector<std::uint64_t> seqs;
  channel.attach(0, 0, [&](const Message& m) { seqs.push_back(m.seq); });
  channel.attach(1, 24, [](const Message&) {});
  ChannelFaultModel model;
  model.duplicate_probability = 1.0;
  channel.set_fault_model(model);
  channel.send({1, 0, Heartbeat{0, 1}});
  queue.run();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], seqs[1]);
  EXPECT_EQ(channel.fault_stats().injected_duplicates, 1u);
}

TEST(Channel, ReorderHoldbackDelaysDelivery) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  double received_at = -1.0;
  channel.attach(0, 0, [&](const Message&) { received_at = queue.now(); });
  channel.attach(1, 13, [](const Message&) {});
  ChannelFaultModel model;
  model.reorder_probability = 1.0;
  model.reorder_delay_ms = 100.0;
  channel.set_fault_model(model);
  channel.send({1, 0, Heartbeat{0, 1}});
  queue.run();
  const double base = graph::dijkstra(att().topology().graph(), 13).dist[0];
  EXPECT_NEAR(received_at, base + 100.0, 1e-9);
  EXPECT_EQ(channel.fault_stats().reordered, 1u);
}

TEST(Channel, JitterReordersBackToBackMessages) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  std::vector<std::uint64_t> seqs;
  channel.attach(0, 0, [&](const Message& m) { seqs.push_back(m.seq); });
  channel.attach(1, 24, [](const Message&) {});
  ChannelFaultModel model;
  model.seed = 7;
  model.jitter_ms = 30.0;
  channel.set_fault_model(model);
  for (int i = 0; i < 20; ++i) {
    channel.send({1, 0, Heartbeat{0, static_cast<std::uint64_t>(i)}});
  }
  queue.run();
  ASSERT_EQ(seqs.size(), 20u);
  EXPECT_FALSE(std::is_sorted(seqs.begin(), seqs.end()))
      << "30 ms jitter on back-to-back sends must invert some pair";
}

TEST(Channel, PartitionWindowCutsPairForItsInterval) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  int received = 0;
  channel.attach(0, 0, [&](const Message&) { ++received; });
  channel.attach(1, 24, [](const Message&) {});
  ChannelFaultModel model;
  model.partitions.push_back({0, 1, 100.0, 200.0});
  channel.set_fault_model(model);
  const auto send_heartbeat = [&] {
    channel.send({1, 0, Heartbeat{0, 1}});
  };
  send_heartbeat();  // t=0: before the window
  queue.schedule_at(150.0, send_heartbeat);  // inside: cut
  queue.schedule_at(250.0, send_heartbeat);  // after: healed
  queue.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(channel.fault_stats().partition_drops, 1u);
}

TEST(Channel, WildcardPartitionIsolatesOneEndpoint) {
  PartitionWindow w;
  w.b = 5;
  w.from_ms = 0.0;
  w.to_ms = 10.0;
  EXPECT_TRUE(w.cuts(3, 5, 1.0));
  EXPECT_TRUE(w.cuts(5, 3, 1.0));   // symmetric
  EXPECT_FALSE(w.cuts(3, 4, 1.0));  // pair not involving 5
  EXPECT_FALSE(w.cuts(3, 5, 10.0));  // window closed (half-open)
}

TEST(Channel, FaultSequenceIsSeedReproducible) {
  const auto run_once = [] {
    sim::EventQueue queue;
    ControlChannel channel(att(), queue);
    std::vector<std::pair<std::uint64_t, double>> deliveries;
    channel.attach(0, 0, [&](const Message& m) {
      deliveries.emplace_back(m.seq, queue.now());
    });
    channel.attach(1, 24, [](const Message&) {});
    ChannelFaultModel model;
    model.seed = 7;
    model.drop_probability = 0.3;
    model.duplicate_probability = 0.3;
    model.jitter_ms = 10.0;
    model.reorder_probability = 0.2;
    model.reorder_delay_ms = 40.0;
    channel.set_fault_model(model);
    for (int i = 0; i < 100; ++i) {
      channel.send({1, 0, Heartbeat{0, static_cast<std::uint64_t>(i)}});
    }
    queue.run();
    return std::pair{deliveries, channel.fault_stats()};
  };
  const auto [first, first_stats] = run_once();
  const auto [second, second_stats] = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_stats.injected_drops, second_stats.injected_drops);
  EXPECT_EQ(first_stats.injected_duplicates,
            second_stats.injected_duplicates);
  EXPECT_EQ(first_stats.reordered, second_stats.reordered);
  EXPECT_GT(first_stats.injected_drops, 0u);
  EXPECT_GT(first_stats.injected_duplicates, 0u);
}

TEST(Channel, DelayCacheInvalidationForcesRecompute) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  channel.attach(0, 0, [](const Message&) {});
  channel.attach(1, 24, [](const Message&) {});
  EXPECT_EQ(channel.cached_delay_pairs(), 0u);
  channel.send({1, 0, Heartbeat{0, 1}});
  const std::size_t populated = channel.cached_delay_pairs();
  EXPECT_GT(populated, 0u);
  channel.invalidate_delays();
  EXPECT_EQ(channel.cached_delay_pairs(), 0u);
  channel.send({1, 0, Heartbeat{0, 2}});
  EXPECT_EQ(channel.cached_delay_pairs(), populated);
  queue.run();
}

// ---------------------------------------------------------------------
// Full protocol runs
// ---------------------------------------------------------------------

TEST(ControlSimulation, SteadyStateHasOnlyHeartbeats) {
  ControlSimulation simulation(att(), pm_policy());
  const SimulationReport report = simulation.run(2000.0);
  EXPECT_FALSE(report.detected_at.has_value());  // nothing failed
  EXPECT_EQ(report.recovery_waves, 0u);
  EXPECT_EQ(report.adopted_switches, 0u);
  EXPECT_TRUE(report.all_flows_deliverable);
  ASSERT_TRUE(report.messages_by_kind.contains("heartbeat"));
  EXPECT_EQ(report.messages_by_kind.size(), 1u);  // heartbeats only
}

TEST(ControlSimulation, SingleFailureDetectedAndRecovered) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);  // C13
  const SimulationReport report = simulation.run(5000.0);

  // Detection within ~2 timeouts of the crash.
  ASSERT_TRUE(report.detected_at.has_value());
  EXPECT_GT(*report.detected_at, 500.0);
  EXPECT_LT(*report.detected_at, 500.0 + 2.5 * 200.0);
  // Exactly one recovery wave, fully converged shortly after detection.
  EXPECT_EQ(report.recovery_waves, 1u);
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_GT(*report.converged_at, *report.detected_at);
  EXPECT_LT(*report.converged_at, *report.detected_at + 100.0);
  // The offline domain's switches were adopted and programmed.
  EXPECT_GT(report.adopted_switches, 0u);
  EXPECT_GT(report.flows_with_entries, 0u);
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_TRUE(report.messages_by_kind.contains("flow-mod"));
  EXPECT_EQ(report.messages_by_kind.at("flow-mod"),
            report.messages_by_kind.at("flow-mod-ack"));
}

TEST(ControlSimulation, AdoptedMastersMatchThePlan) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);
  simulation.run(5000.0);

  // The coordinator is the lowest-id survivor: controller 0.
  const auto& coordinator = simulation.controller(0);
  ASSERT_TRUE(coordinator.installed_plan().has_value());
  const core::RecoveryPlan& plan = *coordinator.installed_plan();
  for (const auto& [sw, adopter] : plan.mapping) {
    EXPECT_EQ(simulation.switch_agent(sw).master(), adopter)
        << "switch " << sw;
  }
}

TEST(ControlSimulation, SuccessiveFailuresRunIncrementally) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);   // C13 first
  simulation.fail_controller_at(4, 3000.0);  // C20 later
  const SimulationReport report = simulation.run(8000.0);

  EXPECT_GE(report.recovery_waves, 2u);
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_GT(*report.converged_at, 3000.0);
  EXPECT_TRUE(report.all_flows_deliverable);
  // After both failures the coordinator's cumulative plan covers the
  // union of both domains.
  const auto& coordinator = simulation.controller(0);
  ASSERT_TRUE(coordinator.installed_plan().has_value());
  const sdwan::FailureState state(att(), {{3, 4}});
  EXPECT_TRUE(
      core::validate_plan(state, *coordinator.installed_plan()).empty());
}

TEST(ControlSimulation, DeadCoordinatorReplaced) {
  // Fail controller 0 (the would-be coordinator) plus controller 3:
  // controller 1 must take over coordination.
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(0, 500.0);
  simulation.fail_controller_at(3, 500.0);
  const SimulationReport report = simulation.run(5000.0);
  EXPECT_GE(report.recovery_waves, 1u);
  EXPECT_TRUE(simulation.controller(1).installed_plan().has_value());
  EXPECT_FALSE(simulation.controller(0).alive());
  EXPECT_TRUE(report.all_flows_deliverable);
}

TEST(ControlSimulation, OrphanedSwitchesKeepForwarding) {
  // Even before/without recovery, the hybrid data plane keeps delivering
  // over the legacy tables.
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);
  // Stop the clock right after the crash, before detection.
  simulation.queue().run(600.0);
  for (const auto& f : att().flows()) {
    const auto trace = simulation.dataplane().trace(f.src, {f.src, f.dst});
    ASSERT_TRUE(trace.delivered) << trace.failure_reason;
  }
}

// ---------------------------------------------------------------------
// Reliable delivery under channel faults
// ---------------------------------------------------------------------

TEST(ControlSimulation, FailureEventInvalidatesDelayCache) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);
  // Probe scheduled AFTER fail_controller_at: at t=500 it runs after the
  // failure event (stable tie-break) but before any same-instant beats
  // scheduled later during the run, observing the just-invalidated cache.
  std::size_t at_failure = static_cast<std::size_t>(-1);
  simulation.queue().schedule_at(500.0, [&] {
    at_failure = simulation.channel().cached_delay_pairs();
  });
  simulation.queue().run(400.0);
  EXPECT_GT(simulation.channel().cached_delay_pairs(), 0u);
  simulation.queue().run(600.0);
  EXPECT_EQ(at_failure, 0u);
}

TEST(ControlSimulation, DuplicatedDeliveriesAreSuppressedNotReapplied) {
  ControlSimulation clean(att(), pm_policy());
  clean.fail_controller_at(3, 500.0);
  const SimulationReport clean_report = clean.run(5000.0);

  ControlSimulation noisy(att(), pm_policy());
  ChannelFaultModel faults;
  faults.duplicate_probability = 1.0;  // every message delivered twice
  noisy.set_fault_model(faults);
  noisy.fail_controller_at(3, 500.0);
  const SimulationReport noisy_report = noisy.run(5000.0);

  EXPECT_GT(noisy_report.duplicates_suppressed, 0u);
  EXPECT_EQ(clean_report.duplicates_suppressed, 0u);
  EXPECT_TRUE(noisy_report.all_flows_deliverable);
  // Dedup means duplication changes no protocol outcome: same entries
  // installed, no double-applied flow-mods.
  EXPECT_EQ(noisy_report.flows_with_entries,
            clean_report.flows_with_entries);
  std::uint64_t clean_mods = 0;
  std::uint64_t noisy_mods = 0;
  for (int s = 0; s < att().switch_count(); ++s) {
    clean_mods += clean.switch_agent(s).flow_mods_applied();
    noisy_mods += noisy.switch_agent(s).flow_mods_applied();
    EXPECT_EQ(noisy.dataplane().at(s).flow_table_size(),
              clean.dataplane().at(s).flow_table_size())
        << "switch " << s;
  }
  EXPECT_EQ(noisy_mods, clean_mods);
}

TEST(ControlSimulation, ChaosTwoFailuresStillConverge) {
  // The acceptance scenario: 10% loss + 20 ms jitter (+ a little
  // duplication), fixed seed, two successive controller failures. The
  // reliable-delivery layer must still converge the waves and keep every
  // flow deliverable, with the repair work visible in the report.
  ctrl::ControllerConfig config;
  config.suspicion_checks = 3;  // hysteresis sized for the jitter
  ControlSimulation simulation(att(), pm_policy(), config);
  ChannelFaultModel faults;
  faults.seed = 42;
  faults.drop_probability = 0.10;
  faults.jitter_ms = 20.0;
  faults.duplicate_probability = 0.02;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  simulation.fail_controller_at(4, 3000.0);
  const SimulationReport report = simulation.run(20000.0);

  ASSERT_TRUE(report.detected_at.has_value());
  EXPECT_GT(*report.detected_at, 500.0);
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_GT(*report.converged_at, 3000.0);
  EXPECT_GE(report.recovery_waves, 2u);
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_EQ(report.degraded_flows, 0u);
  // The repair machinery did real work and the report shows it.
  EXPECT_GT(report.injected_drops, 0u);
  EXPECT_GT(report.retransmissions, 0u);
  EXPECT_GT(report.duplicates_suppressed, 0u);
  // Lost flow-mods were retransmitted until acked: the plan is fully
  // installed despite the lossy channel.
  const auto& coordinator = simulation.controller(0);
  ASSERT_TRUE(coordinator.installed_plan().has_value());
  for (const auto& [sw, adopter] : coordinator.installed_plan()->mapping) {
    EXPECT_EQ(simulation.switch_agent(sw).master(), adopter)
        << "switch " << sw;
  }
}

TEST(ControlSimulation, ChaosRunsAreSeedDeterministic) {
  const auto run_once = [] {
    ctrl::ControllerConfig config;
    config.suspicion_checks = 3;
    ControlSimulation simulation(att(), pm_policy(), config);
    ChannelFaultModel faults;
    faults.seed = 1234;
    faults.drop_probability = 0.10;
    faults.jitter_ms = 20.0;
    faults.duplicate_probability = 0.05;
    simulation.set_fault_model(faults);
    simulation.fail_controller_at(3, 500.0);
    simulation.fail_controller_at(4, 3000.0);
    return simulation.run(20000.0);
  };
  const SimulationReport a = run_once();
  const SimulationReport b = run_once();
  EXPECT_EQ(a.detected_at, b.detected_at);
  EXPECT_EQ(a.converged_at, b.converged_at);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.injected_drops, b.injected_drops);
  EXPECT_EQ(a.injected_duplicates, b.injected_duplicates);
  EXPECT_EQ(a.degraded_flows, b.degraded_flows);
}

TEST(ControlSimulation, PartitionCausesSpuriousDetectionThenRecovers) {
  // Cut the heartbeat path between controllers 0 and 1 for 600 ms: both
  // are alive the whole time, so the detector's firing is spurious and
  // must be recognized as such when the heartbeats come back.
  ControlSimulation simulation(att(), pm_policy());
  ChannelFaultModel faults;
  faults.partitions.push_back({controller_endpoint(att(), 0),
                               controller_endpoint(att(), 1), 1000.0,
                               1600.0});
  simulation.set_fault_model(faults);
  const SimulationReport report = simulation.run(5000.0);

  EXPECT_GT(report.partition_drops, 0u);
  EXPECT_GE(report.spurious_detections, 1u);
  EXPECT_TRUE(simulation.controller(0).alive());
  EXPECT_TRUE(simulation.controller(1).alive());
  // Once heartbeats resumed, nobody stays falsely suspected.
  EXPECT_FALSE(simulation.controller(0).suspected().contains(1));
  EXPECT_FALSE(simulation.controller(1).suspected().contains(0));
  EXPECT_TRUE(report.all_flows_deliverable);
}

TEST(ControlSimulation, HysteresisRidesOutShortPartitions) {
  // A shorter 400 ms partition with 6-check hysteresis: heartbeats
  // resume (and reset the miss count) before six consecutive detector
  // checks ever miss, so the detector never fires at all.
  ctrl::ControllerConfig config;
  config.suspicion_checks = 6;
  ControlSimulation simulation(att(), pm_policy(), config);
  ChannelFaultModel faults;
  faults.partitions.push_back({controller_endpoint(att(), 0),
                               controller_endpoint(att(), 1), 1000.0,
                               1400.0});
  simulation.set_fault_model(faults);
  const SimulationReport report = simulation.run(5000.0);
  EXPECT_EQ(report.spurious_detections, 0u);
  EXPECT_EQ(report.recovery_waves, 0u);
  EXPECT_FALSE(report.detected_at.has_value());
}

TEST(ControlSimulation, ExhaustedRetriesDegradeInsteadOfWedging) {
  // Permanently cut every switch of the failed controller's domain off
  // the control plane: RoleRequests and FlowMods to them can never be
  // delivered, so their retries must exhaust, degrade the affected
  // flows/switches, and still let the wave converge.
  ControlSimulation simulation(att(), pm_policy());
  ChannelFaultModel faults;
  for (sdwan::SwitchId s : att().controller(3).domain) {
    faults.partitions.push_back(
        {PartitionWindow::kAnyEndpoint, switch_endpoint(s), 0.0, 1e12});
  }
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  const SimulationReport report = simulation.run(20000.0);

  EXPECT_GE(report.degraded_switches, 1u);
  EXPECT_GE(report.degraded_flows, 1u);
  EXPECT_GT(report.retransmissions, 0u);
  // The wave converged (modulo the explicitly-degraded messages) rather
  // than hanging forever on unreachable switches...
  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_GT(*report.converged_at, 0.0);
  // ...and the hybrid data plane still delivers everything over the
  // legacy tables.
  EXPECT_TRUE(report.all_flows_deliverable);
}

// ---------------------------------------------------------------------
// Transactional recovery: epochs, mid-wave failures, rollback, audit
// ---------------------------------------------------------------------

TEST(TransactionalRecovery, CoordinatorKilledMidWaveFailsOverAndReplans) {
  // Controller 3 fails at t=500; the coordinator that runs the wave is
  // killed at t=850, inside the recovery window, under loss + jitter.
  // The lowest surviving id must take over, replan against the updated
  // failure set, and commit with a clean consistency audit.
  ctrl::ControllerConfig config;
  config.suspicion_checks = 3;
  ControlSimulation simulation(att(), pm_policy(), config);
  ChannelFaultModel faults;
  faults.drop_probability = 0.05;
  faults.jitter_ms = 20.0;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  simulation.fail_controller_at(0, 850.0);  // the coordinator
  const SimulationReport report = simulation.run(15000.0);

  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_GE(report.coordinator_failovers, 1u);
  EXPECT_TRUE(report.audit_clean) << report.audit_violations;
  const SharedRecoveryState& shared = simulation.shared_state();
  EXPECT_EQ(shared.phase, WavePhase::kCommitted);
  ASSERT_TRUE(shared.committed_plan.has_value());
  EXPECT_EQ(shared.committed_epoch, shared.wave_epoch);
  // The successor, not the dead node, owns the committed wave.
  EXPECT_NE(shared.coordinator, 0);
  EXPECT_TRUE(simulation.controller(shared.coordinator).alive());
}

TEST(TransactionalRecovery, AdopterKilledMidWaveIsReplannedAround) {
  // Kill a wave-1 ADOPTER (not the coordinator) mid-wave: its slice can
  // never prepare, the detector fires, and the coordinator's next wave
  // must re-home its switches and clean up any entries the dead
  // adopter's assignments left behind.
  sdwan::FailureScenario scenario;
  scenario.failed = {3};
  const sdwan::FailureState state(att(), scenario);
  const core::RecoveryPlan wave1 = core::run_pm(state);
  sdwan::ControllerId adopter = -1;
  for (const auto& [sw, j] : wave1.mapping) {
    if (j != 0) adopter = std::max(adopter, j);
  }
  ASSERT_GE(adopter, 0) << "wave-1 plan uses only the coordinator";

  ctrl::ControllerConfig config;
  config.suspicion_checks = 3;
  ControlSimulation simulation(att(), pm_policy(), config);
  ChannelFaultModel faults;
  faults.drop_probability = 0.05;
  faults.jitter_ms = 20.0;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  simulation.fail_controller_at(adopter, 850.0);
  const SimulationReport report = simulation.run(15000.0);

  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_TRUE(report.audit_clean) << report.audit_violations;
  const SharedRecoveryState& shared = simulation.shared_state();
  EXPECT_EQ(shared.phase, WavePhase::kCommitted);
  ASSERT_TRUE(shared.committed_plan.has_value());
  // Nothing in the committed plan may reference the dead adopter.
  for (const auto& [sw, j] : shared.committed_plan->mapping) {
    EXPECT_NE(j, adopter);
    EXPECT_NE(j, 3);
  }
}

TEST(TransactionalRecovery, CorrelatedMidWaveKillsStillConverge) {
  // Coordinator AND an adopter die at the same instant mid-wave — the
  // correlated-failure case. A single surviving successor must absorb
  // both and commit cleanly.
  sdwan::FailureScenario scenario;
  scenario.failed = {3};
  const sdwan::FailureState state(att(), scenario);
  const core::RecoveryPlan wave1 = core::run_pm(state);
  sdwan::ControllerId adopter = -1;
  for (const auto& [sw, j] : wave1.mapping) {
    if (j != 0) adopter = std::max(adopter, j);
  }
  ASSERT_GE(adopter, 0);

  ctrl::ControllerConfig config;
  config.suspicion_checks = 3;
  ControlSimulation simulation(att(), pm_policy(), config);
  ChannelFaultModel faults;
  faults.drop_probability = 0.05;
  faults.jitter_ms = 20.0;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  simulation.fail_controller_at(0, 850.0);
  simulation.fail_controller_at(adopter, 850.0);
  const SimulationReport report = simulation.run(15000.0);

  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_GE(report.coordinator_failovers, 1u);
  if (!report.audit_clean) {
    for (const auto& v : simulation.audit().violations) {
      ADD_FAILURE() << v.invariant << ": " << v.detail;
    }
  }
  EXPECT_EQ(simulation.shared_state().phase, WavePhase::kCommitted);
}

TEST(TransactionalRecovery, RetryExhaustionRollsBackToLegacyNotMixed) {
  // Permanently cut SOME of the failed controller's switches off the
  // control plane: installs to them exhaust, and transactional rollback
  // must take each affected flow back to legacy wholesale — removing
  // the siblings that DID land — rather than leaving a half-programmed
  // flow. The audit must come back clean (degraded is legal; mixed
  // state is not).
  ControlSimulation simulation(att(), pm_policy());
  ChannelFaultModel faults;
  const auto& domain = att().controller(3).domain;
  ASSERT_GE(domain.size(), 2u);
  std::vector<sdwan::SwitchId> cut(domain.begin(),
                                   domain.begin() + 2);
  for (const sdwan::SwitchId s : cut) {
    faults.partitions.push_back(
        {PartitionWindow::kAnyEndpoint, switch_endpoint(s), 0.0, 1e12});
  }
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  const SimulationReport report = simulation.run(20000.0);

  ASSERT_TRUE(report.converged_at.has_value());
  EXPECT_GE(report.degraded_flows, 1u);
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_TRUE(report.audit_clean) << report.audit_violations;
  const SharedRecoveryState& shared = simulation.shared_state();
  EXPECT_GE(shared.rolled_back_flows.size(), 1u);
  // No entry for a rolled-back flow survives anywhere: the reachable
  // siblings were removed, the unreachable ones never landed.
  for (const sdwan::FlowId flow : shared.rolled_back_flows) {
    const auto& f = att().flow(flow);
    for (int s = 0; s < att().switch_count(); ++s) {
      EXPECT_FALSE(simulation.switch_agent(s).entry_epochs().contains(
          {f.src, f.dst}))
          << "rolled-back flow " << flow << " still programmed on switch "
          << s;
    }
  }
}

TEST(TransactionalRecovery, SwitchDiscardsStaleEpochMessages) {
  // Unit-level: drive a SwitchAgent over a raw channel. Messages below
  // the switch's epoch high-water mark are discarded (no reply, no ack,
  // no application); replace-on-install keeps one entry per match.
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  sdwan::Dataplane dataplane(att().topology(), sdwan::RoutingMode::kHybrid);
  SwitchAgent agent(0, dataplane.at(0), channel, /*epoch_guard=*/true);
  agent.attach();
  const EndpointId ctrl_ep = controller_endpoint(att(), 0);
  std::size_t replies = 0;
  std::size_t acks = 0;
  channel.attach(ctrl_ep, att().controller(0).location,
                 [&](const Message& m) {
                   if (std::holds_alternative<RoleReply>(m.body)) ++replies;
                   if (std::holds_alternative<FlowModAck>(m.body)) ++acks;
                 });

  const auto send_role = [&](std::uint64_t epoch) {
    Message m;
    m.from = ctrl_ep;
    m.to = switch_endpoint(0);
    m.body = RoleRequest{0, epoch};
    m.seq = channel.send(m);
  };
  const auto send_mod = [&](std::uint64_t epoch, std::uint64_t xid,
                            sdwan::SwitchId next_hop) {
    Message m;
    m.from = ctrl_ep;
    m.to = switch_endpoint(0);
    FlowMod body;
    body.entry = {10, {0, 5}, next_hop};
    body.xid = xid;
    body.epoch = epoch;
    m.body = body;
    m.seq = channel.send(m);
  };

  send_role(2);
  queue.run();
  EXPECT_EQ(agent.epoch(), 2u);
  EXPECT_EQ(replies, 1u);

  send_role(1);  // stale: a deposed master's retransmission
  queue.run();
  EXPECT_EQ(agent.stale_discarded(), 1u);
  EXPECT_EQ(replies, 1u);  // no reply for the stale request
  EXPECT_EQ(agent.epoch(), 2u);

  send_mod(1, 100, 1);  // stale mod: discarded, NOT acked
  queue.run();
  EXPECT_EQ(agent.stale_discarded(), 2u);
  EXPECT_EQ(acks, 0u);
  EXPECT_EQ(agent.entry_epochs().size(), 0u);

  send_mod(2, 101, 1);  // current epoch: applied + acked
  queue.run();
  EXPECT_EQ(acks, 1u);
  ASSERT_TRUE(agent.entry_epochs().contains({0, 5}));
  EXPECT_EQ(agent.entry_epochs().at({0, 5}), 2u);

  // A later wave re-programs the same match: replace, don't stack.
  send_role(3);
  send_mod(3, 102, 2);
  queue.run();
  EXPECT_EQ(acks, 2u);
  EXPECT_EQ(agent.entry_epochs().size(), 1u);
  EXPECT_EQ(agent.entry_epochs().at({0, 5}), 3u);
  EXPECT_EQ(dataplane.at(0).flow_table_size(), 1u);

  // Legacy mode (epoch_guard off) accepts everything — the
  // pre-transactional protocol, bit for bit.
  SwitchAgent legacy(1, dataplane.at(1), channel, /*epoch_guard=*/false);
  legacy.attach();
  Message m;
  m.from = ctrl_ep;
  m.to = switch_endpoint(1);
  m.body = RoleRequest{0, 5};
  m.seq = channel.send(m);
  queue.run();
  m.body = RoleRequest{0, 1};  // would be stale under the guard
  m.seq = channel.send(m);
  queue.run();
  EXPECT_EQ(legacy.stale_discarded(), 0u);
}

TEST(TransactionalRecovery, AuditorFlagsTamperedState) {
  // Negative test: fabricate an inconsistent post-recovery state and
  // check the auditor names each broken invariant.
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  sdwan::Dataplane dataplane(att().topology(), sdwan::RoutingMode::kHybrid);
  std::vector<std::unique_ptr<SwitchAgent>> agents;
  for (int s = 0; s < att().switch_count(); ++s) {
    agents.push_back(
        std::make_unique<SwitchAgent>(s, dataplane.at(s), channel, true));
    agents.back()->attach();
  }
  const EndpointId ctrl_ep = controller_endpoint(att(), 1);
  channel.attach(ctrl_ep, att().controller(1).location,
                 [](const Message&) {});
  // Controller 1 masters switch 0 and installs one entry at epoch 1,
  // pinning the real 0->5 flow to its actual path successor (so the
  // "honest" audit below has nothing to complain about).
  sdwan::FlowId pinned = -1;
  sdwan::SwitchId next_hop = -1;
  for (const auto& f : att().flows()) {
    if (f.src == 0 && f.dst == 5 && f.path.size() >= 2) {
      pinned = f.id;
      next_hop = f.path[1];
      break;
    }
  }
  ASSERT_GE(pinned, 0);
  Message role;
  role.from = ctrl_ep;
  role.to = switch_endpoint(0);
  role.body = RoleRequest{1, 1};
  role.seq = channel.send(role);
  Message mod;
  mod.from = ctrl_ep;
  mod.to = switch_endpoint(0);
  FlowMod body;
  body.entry = {10, {0, 5}, next_hop};
  body.xid = 7;
  body.epoch = 1;
  mod.body = body;
  mod.seq = channel.send(mod);
  queue.run();

  // Commit a plan that (a) expects switch 0 mastered by controller 2,
  // (b) contains no assignment for the installed entry, at epoch 2 —
  // and declare controller 1 (the actual master) dead.
  SharedRecoveryState shared;
  shared.committed_epoch = 2;
  core::RecoveryPlan plan;
  plan.mapping[0] = 2;
  shared.committed_plan = plan;
  std::vector<const SwitchAgent*> ptrs;
  for (const auto& a : agents) ptrs.push_back(a.get());
  std::vector<bool> alive(
      static_cast<std::size_t>(att().controller_count()), true);
  alive[1] = false;

  const AuditReport audit =
      audit_recovery(att(), dataplane, ptrs, alive, shared);
  EXPECT_FALSE(audit.clean());
  const auto counts = audit.by_invariant();
  EXPECT_GE(counts.count("orphaned-master"), 1u);  // master 1 is dead
  EXPECT_GE(counts.count("stale-epoch"), 1u);      // entry epoch 1 != 2
  EXPECT_GE(counts.count("unplanned-entry"), 1u);  // not in the plan
  EXPECT_GE(counts.count("wrong-master"), 1u);     // plan says 2, is 1

  // The same state audits clean once the tampering is undone.
  SharedRecoveryState consistent;
  consistent.committed_epoch = 1;
  core::RecoveryPlan honest;
  honest.mapping[0] = 1;
  honest.sdn_assignments.insert({0, pinned});
  consistent.committed_plan = honest;
  std::vector<bool> all_alive(
      static_cast<std::size_t>(att().controller_count()), true);
  const AuditReport ok =
      audit_recovery(att(), dataplane, ptrs, all_alive, consistent);
  EXPECT_TRUE(ok.clean()) << ok.violations.size();
}

}  // namespace
}  // namespace pm::ctrl
