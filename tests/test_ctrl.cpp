#include <gtest/gtest.h>

#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "graph/shortest_path.hpp"

namespace pm::ctrl {
namespace {

const sdwan::Network& att() {
  static const sdwan::Network net = core::make_att_network();
  return net;
}

RecoveryPolicy pm_policy() {
  return [](const sdwan::FailureState& state,
            const core::RecoveryPlan* previous) {
    core::PmOptions opts;
    opts.seed = previous;
    return core::run_pm(state, opts);
  };
}

// ---------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------

TEST(Channel, DeliversWithPropagationDelay) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  double received_at = -1.0;
  channel.attach(0, 0, [&](const Message&) { received_at = queue.now(); });
  channel.attach(1, 13, [&](const Message&) {});
  Message m;
  m.from = 1;
  m.to = 0;
  m.body = Heartbeat{0, 1};
  channel.send(m);
  queue.run();
  // Node 13 (Dallas) to node 0 (New York) over the graph: positive,
  // finite, equals the shortest-path delay.
  EXPECT_GT(received_at, 0.0);
  EXPECT_NEAR(received_at,
              graph::dijkstra(att().topology().graph(), 13)
                  .dist[0],
              1e-9);
  EXPECT_EQ(channel.messages_sent(), 1u);
}

TEST(Channel, DropsToUnknownAndCountsKinds) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  channel.attach(0, 0, [](const Message&) {});
  Message m;
  m.from = 0;
  m.to = 999;  // never attached
  m.body = RoleRequest{1};
  channel.send(m);
  queue.run();
  EXPECT_EQ(channel.messages_dropped(), 1u);
  EXPECT_THROW(channel.send({998, 0, Heartbeat{}}), std::logic_error);
}

TEST(Channel, DetachedEndpointDropsInFlight) {
  sim::EventQueue queue;
  ControlChannel channel(att(), queue);
  int received = 0;
  channel.attach(0, 0, [&](const Message&) { ++received; });
  channel.attach(1, 24, [](const Message&) {});
  Message m;
  m.from = 1;
  m.to = 0;
  m.body = Heartbeat{0, 1};
  channel.send(m);
  channel.detach(0);  // before delivery
  queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(channel.messages_dropped(), 1u);
}

// ---------------------------------------------------------------------
// Full protocol runs
// ---------------------------------------------------------------------

TEST(ControlSimulation, SteadyStateHasOnlyHeartbeats) {
  ControlSimulation simulation(att(), pm_policy());
  const SimulationReport report = simulation.run(2000.0);
  EXPECT_LT(report.detected_at, 0.0);  // nothing failed
  EXPECT_EQ(report.recovery_waves, 0u);
  EXPECT_EQ(report.adopted_switches, 0u);
  EXPECT_TRUE(report.all_flows_deliverable);
  ASSERT_TRUE(report.messages_by_kind.contains("heartbeat"));
  EXPECT_EQ(report.messages_by_kind.size(), 1u);  // heartbeats only
}

TEST(ControlSimulation, SingleFailureDetectedAndRecovered) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);  // C13
  const SimulationReport report = simulation.run(5000.0);

  // Detection within ~2 timeouts of the crash.
  EXPECT_GT(report.detected_at, 500.0);
  EXPECT_LT(report.detected_at, 500.0 + 2.5 * 200.0);
  // Exactly one recovery wave, fully converged shortly after detection.
  EXPECT_EQ(report.recovery_waves, 1u);
  EXPECT_GT(report.converged_at, report.detected_at);
  EXPECT_LT(report.converged_at, report.detected_at + 100.0);
  // The offline domain's switches were adopted and programmed.
  EXPECT_GT(report.adopted_switches, 0u);
  EXPECT_GT(report.flows_with_entries, 0u);
  EXPECT_TRUE(report.all_flows_deliverable);
  EXPECT_TRUE(report.messages_by_kind.contains("flow-mod"));
  EXPECT_EQ(report.messages_by_kind.at("flow-mod"),
            report.messages_by_kind.at("flow-mod-ack"));
}

TEST(ControlSimulation, AdoptedMastersMatchThePlan) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);
  simulation.run(5000.0);

  // The coordinator is the lowest-id survivor: controller 0.
  const auto& coordinator = simulation.controller(0);
  ASSERT_TRUE(coordinator.installed_plan().has_value());
  const core::RecoveryPlan& plan = *coordinator.installed_plan();
  for (const auto& [sw, adopter] : plan.mapping) {
    EXPECT_EQ(simulation.switch_agent(sw).master(), adopter)
        << "switch " << sw;
  }
}

TEST(ControlSimulation, SuccessiveFailuresRunIncrementally) {
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);   // C13 first
  simulation.fail_controller_at(4, 3000.0);  // C20 later
  const SimulationReport report = simulation.run(8000.0);

  EXPECT_GE(report.recovery_waves, 2u);
  EXPECT_GT(report.converged_at, 3000.0);
  EXPECT_TRUE(report.all_flows_deliverable);
  // After both failures the coordinator's cumulative plan covers the
  // union of both domains.
  const auto& coordinator = simulation.controller(0);
  ASSERT_TRUE(coordinator.installed_plan().has_value());
  const sdwan::FailureState state(att(), {{3, 4}});
  EXPECT_TRUE(
      core::validate_plan(state, *coordinator.installed_plan()).empty());
}

TEST(ControlSimulation, DeadCoordinatorReplaced) {
  // Fail controller 0 (the would-be coordinator) plus controller 3:
  // controller 1 must take over coordination.
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(0, 500.0);
  simulation.fail_controller_at(3, 500.0);
  const SimulationReport report = simulation.run(5000.0);
  EXPECT_GE(report.recovery_waves, 1u);
  EXPECT_TRUE(simulation.controller(1).installed_plan().has_value());
  EXPECT_FALSE(simulation.controller(0).alive());
  EXPECT_TRUE(report.all_flows_deliverable);
}

TEST(ControlSimulation, OrphanedSwitchesKeepForwarding) {
  // Even before/without recovery, the hybrid data plane keeps delivering
  // over the legacy tables.
  ControlSimulation simulation(att(), pm_policy());
  simulation.fail_controller_at(3, 500.0);
  // Stop the clock right after the crash, before detection.
  simulation.queue().run(600.0);
  for (const auto& f : att().flows()) {
    const auto trace = simulation.dataplane().trace(f.src, {f.src, f.dst});
    ASSERT_TRUE(trace.delivered) << trace.failure_reason;
  }
}

}  // namespace
}  // namespace pm::ctrl
