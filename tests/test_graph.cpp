#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "graph/graph.hpp"
#include "graph/k_shortest.hpp"
#include "graph/path_count.hpp"
#include "graph/shortest_path.hpp"

namespace pm::graph {
namespace {

Graph diamond() {
  // 0 - 1 - 3, 0 - 2 - 3 with a direct 0-3 chord.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 3.0);
  return g;
}

/// Deterministic random connected graph for property tests.
Graph random_graph(int n, double extra_edge_prob, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Graph g(n);
  std::uniform_real_distribution<double> w(1.0, 10.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int v = 1; v < n; ++v) {
    std::uniform_int_distribution<int> pick(0, v - 1);
    g.add_edge(v, pick(rng), w(rng));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && coin(rng) < extra_edge_prob) {
        g.add_edge(u, v, w(rng));
      }
    }
  }
  return g;
}

/// Brute-force shortest distance by DFS over all simple paths.
double brute_force_distance(const Graph& g, NodeId src, NodeId dst) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), 0);
  auto dfs = [&](auto&& self, NodeId u, double len) -> void {
    if (len >= best) return;
    if (u == dst) {
      best = len;
      return;
    }
    used[static_cast<std::size_t>(u)] = 1;
    for (const Arc& a : g.neighbors(u)) {
      if (!used[static_cast<std::size_t>(a.to)]) {
        self(self, a.to, len + a.weight);
      }
    }
    used[static_cast<std::size_t>(u)] = 0;
  };
  dfs(dfs, src, 0.0);
  return best;
}

/// Brute-force count of simple paths with <= max_hops edges.
std::int64_t brute_force_paths(const Graph& g, NodeId src, NodeId dst,
                               int max_hops) {
  std::int64_t count = 0;
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), 0);
  auto dfs = [&](auto&& self, NodeId u, int hops) -> void {
    if (u == dst) {
      ++count;
      return;
    }
    if (hops >= max_hops) return;
    used[static_cast<std::size_t>(u)] = 1;
    for (const Arc& a : g.neighbors(u)) {
      if (!used[static_cast<std::size_t>(a.to)]) {
        self(self, a.to, hops + 1);
      }
    }
    used[static_cast<std::size_t>(u)] = 0;
  };
  dfs(dfs, src, 0);
  return count;
}

// ---------------------------------------------------------------------
// Graph container
// ---------------------------------------------------------------------

TEST(Graph, BasicInvariants) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 0u);
  g.add_edge(0, 1, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 2.5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1, 2.0), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.add_edge(1, 0, 2.0), std::invalid_argument);  // reversed dup
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);       // self-loop
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);       // range
  EXPECT_THROW(g.add_edge(0, 2, -1.0), std::invalid_argument); // negative
  EXPECT_THROW(g.edge_weight(0, 2), std::out_of_range);
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(1, 2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
}

TEST(Graph, HopDistances) {
  Graph g = diamond();
  const auto d = hop_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 1);
  EXPECT_EQ(d[3], 1);  // direct chord
  Graph h(3);
  h.add_edge(0, 1);
  EXPECT_EQ(hop_distances(h, 0)[2], -1);  // unreachable
}

// ---------------------------------------------------------------------
// Shortest paths
// ---------------------------------------------------------------------

TEST(ShortestPath, DiamondPath) {
  Graph g = diamond();
  const auto p = shortest_path(g, 0, 3);
  // Two length-2 paths; the deterministic tie-break picks via node 1.
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 3);
  EXPECT_EQ(p[1], 1);
  EXPECT_DOUBLE_EQ(path_length(g, p), 2.0);
}

TEST(ShortestPath, TrivialAndUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(shortest_path(g, 0, 0), std::vector<NodeId>{0});
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
  EXPECT_EQ(path_length(g, {0}), 0.0);
  EXPECT_EQ(path_length(g, {}), 0.0);
}

TEST(ShortestPath, PathLengthValidatesEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(path_length(g, {0, 2}), std::out_of_range);
}

class DijkstraRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraRandom, MatchesBruteForceOnAllPairs) {
  const Graph g = random_graph(9, 0.3, GetParam());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto r = dijkstra(g, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      const double expected = brute_force_distance(g, s, t);
      EXPECT_NEAR(r.dist[static_cast<std::size_t>(t)], expected, 1e-9)
          << "s=" << s << " t=" << t << " seed=" << GetParam();
      // The reconstructed path must realize the distance.
      const auto p = extract_path(r, t);
      ASSERT_FALSE(p.empty());
      EXPECT_NEAR(path_length(g, p), expected, 1e-9);
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ShortestPath, DeterministicAcrossRuns) {
  const Graph g = random_graph(12, 0.4, 99);
  for (NodeId t = 1; t < g.node_count(); ++t) {
    EXPECT_EQ(shortest_path(g, 0, t), shortest_path(g, 0, t));
  }
}

// ---------------------------------------------------------------------
// Path counting
// ---------------------------------------------------------------------

TEST(PathCount, DiamondCounts) {
  Graph g = diamond();
  // Paths 0 -> 3 with <= 2 hops: 0-3, 0-1-3, 0-2-3.
  EXPECT_EQ(count_paths_bounded(g, 0, 3, 2), 3);
  EXPECT_EQ(count_paths_bounded(g, 0, 3, 1), 1);
  EXPECT_EQ(count_paths_bounded(g, 0, 3, 0), 0);
  EXPECT_EQ(count_paths_bounded(g, 0, 0, 5), 1);  // empty path
}

TEST(PathCount, ShortestPathDagCount) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 3, 1);
  EXPECT_EQ(count_shortest_paths(g, 0, 3), 2);
  EXPECT_EQ(count_shortest_paths(g, 0, 0), 1);
  Graph h(2);
  EXPECT_EQ(count_shortest_paths(h, 0, 1), 0);  // unreachable
}

TEST(PathCount, NextHopCount) {
  Graph g = diamond();
  // From 0 toward 3: neighbors 1 (d=1), 2 (d=1), 3 (d=0); own d = 1.
  // All three make progress (d_nh <= d_src).
  EXPECT_EQ(count_progress_next_hops(g, 0, 3), 3);
  EXPECT_EQ(count_progress_next_hops(g, 3, 3), 0);
}

TEST(PathCount, CapStopsExplosion) {
  // Complete graph K8: astronomically many bounded paths; cap must bind.
  Graph g(8);
  for (int u = 0; u < 8; ++u) {
    for (int v = u + 1; v < 8; ++v) g.add_edge(u, v);
  }
  EXPECT_EQ(count_paths_bounded(g, 0, 7, 7, 100), 100);
}

class PathCountRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathCountRandom, BoundedCountMatchesBruteForce) {
  const Graph g = random_graph(8, 0.35, GetParam());
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (s == t) continue;
      for (int hops = 1; hops <= 4; ++hops) {
        EXPECT_EQ(count_paths_bounded(g, s, t, hops),
                  brute_force_paths(g, s, t, hops))
            << "s=" << s << " t=" << t << " hops=" << hops
            << " seed=" << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathCountRandom,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(PathCount, PolicyDispatch) {
  Graph g = diamond();
  PathCountOptions o;
  o.policy = PathCountPolicy::kBoundedSimplePaths;
  o.slack = 1;
  // hop distance 0->3 is 1; budget 2: paths 0-3, 0-1-3, 0-2-3.
  EXPECT_EQ(path_diversity(g, 0, 3, o), 3);
  o.policy = PathCountPolicy::kShortestPathDag;
  EXPECT_EQ(path_diversity(g, 0, 3, o), 1);  // unit weights: direct hop
  o.policy = PathCountPolicy::kNextHopCount;
  EXPECT_EQ(path_diversity(g, 0, 3, o), 3);
}

// ---------------------------------------------------------------------
// k shortest paths
// ---------------------------------------------------------------------

TEST(KShortest, DiamondOrder) {
  Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(path_length(g, paths[0]), 2.0);
  EXPECT_DOUBLE_EQ(path_length(g, paths[1]), 2.0);
  EXPECT_DOUBLE_EQ(path_length(g, paths[2]), 3.0);
  EXPECT_EQ(paths[2], (std::vector<NodeId>{0, 3}));
}

TEST(KShortest, Degenerate) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, 3).empty());  // unreachable
  EXPECT_TRUE(k_shortest_paths(g, 0, 1, 0).empty());  // k = 0
  const auto self = k_shortest_paths(g, 0, 0, 2);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], std::vector<NodeId>{0});
}

class KShortestRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KShortestRandom, SortedLooplessAndDistinct) {
  const Graph g = random_graph(9, 0.3, GetParam());
  const auto paths = k_shortest_paths(g, 0, g.node_count() - 1, 6);
  ASSERT_FALSE(paths.empty());
  double prev = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double len = path_length(g, paths[i]);
    EXPECT_GE(len + 1e-12, prev);
    prev = len;
    // loopless
    auto sorted = paths[i];
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
    // distinct
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j]);
    }
  }
  // First path must be THE shortest path.
  EXPECT_NEAR(path_length(g, paths[0]),
              brute_force_distance(g, 0, g.node_count() - 1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KShortestRandom,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(KShortest, FindsAllSimplePathsWhenKIsLarge) {
  Graph g = diamond();
  // The diamond has exactly 3 simple 0->3 paths... plus 0-1-3/0-2-3 via
  // the chord? No: simple paths 0->3 are {0-3, 0-1-3, 0-2-3} only.
  const auto paths = k_shortest_paths(g, 0, 3, 100);
  EXPECT_EQ(paths.size(), 3u);
}

}  // namespace
}  // namespace pm::graph
