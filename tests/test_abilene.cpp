// Cross-topology validation on the Abilene (Internet2) backbone: the
// system's invariants and the paper's qualitative orderings must hold on
// a real topology the ATT calibration never saw.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/naive.hpp"
#include "core/optimal.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "sim/cascade.hpp"
#include "topo/abilene.hpp"

namespace pm {
namespace {

sdwan::Network abilene(double headroom = 1.15) {
  const topo::Topology topology = topo::abilene_topology();
  const auto domains = topo::abilene_domains();
  sdwan::NetworkConfig cfg;
  cfg.controller_capacity = 1e12;
  const sdwan::Network probe(topology, domains, cfg);
  double max_load = 0.0;
  for (int j = 0; j < probe.controller_count(); ++j) {
    max_load = std::max(max_load, probe.normal_load(j));
  }
  cfg.controller_capacity = headroom * max_load;
  return sdwan::Network(topology, domains, cfg);
}

TEST(Abilene, TopologyShape) {
  const topo::Topology t = topo::abilene_topology();
  EXPECT_EQ(t.node_count(), 11);
  EXPECT_EQ(t.link_count(), 14u);
  EXPECT_TRUE(graph::is_connected(t.graph()));
  EXPECT_EQ(t.find_node("Denver"), 3);
  // The network builds: 11 * 10 flows.
  const sdwan::Network net = abilene();
  EXPECT_EQ(net.flow_count(), 110);
  EXPECT_EQ(net.controller_count(), 3);
}

TEST(Abilene, DomainsPartition) {
  const auto domains = topo::abilene_domains();
  std::size_t total = 0;
  for (const auto& [c, members] : domains) {
    (void)c;
    total += members.size();
  }
  EXPECT_EQ(total, 11u);
  EXPECT_EQ(domains.size(), 3u);
}

class AbileneFailures : public ::testing::TestWithParam<int> {};

TEST_P(AbileneFailures, OrderingsHoldUnderEverySingleFailure) {
  const sdwan::Network net = abilene();
  const sdwan::FailureState state(net, {{GetParam()}});
  const auto pm = core::run_pm(state);
  const auto pg = core::run_pg(state);
  const auto retro = core::run_retroflow(state);
  for (const auto* plan : {&pm, &pg, &retro}) {
    EXPECT_TRUE(core::validate_plan(state, *plan).empty())
        << plan->algorithm;
  }
  const auto m_pm = core::evaluate_plan(state, pm);
  const auto m_pg = core::evaluate_plan(state, pg);
  const auto m_retro = core::evaluate_plan(state, retro);
  EXPECT_GE(m_pg.total_programmability, m_pm.total_programmability);
  EXPECT_GE(m_pm.least_programmability, m_retro.least_programmability);
  EXPECT_GE(m_pm.recovered_flow_fraction,
            m_retro.recovered_flow_fraction - 1e-12);
  // (No PG-vs-PM overhead assertion here: on this sparse geography PG's
  // per-pair controller freedom can outweigh its middle-layer penalty —
  // the PG > PM overhead ordering is an ATT-scenario outcome, not an
  // invariant.)
}

INSTANTIATE_TEST_SUITE_P(AllThree, AbileneFailures, ::testing::Range(0, 3));

TEST(Abilene, TightCapacityStressesGranularity) {
  // With barely any headroom, the switch-level mapper starves while PM
  // still recovers something everywhere it can.
  const sdwan::Network net = abilene(1.02);
  const sdwan::FailureState state(net, {{0}});
  const auto m_pm = core::evaluate_plan(state, core::run_pm(state));
  const auto m_retro =
      core::evaluate_plan(state, core::run_retroflow(state));
  EXPECT_GE(m_pm.total_programmability, m_retro.total_programmability);
}

TEST(Abilene, OptimalAgreesOnSmallInstance) {
  // Abilene is small enough for the exact solver to finish fast.
  const sdwan::Network net = abilene();
  const sdwan::FailureState state(net, {{1}});
  core::OptimalOptions opts;
  opts.time_limit_seconds = 30.0;
  const auto outcome = core::run_optimal(state, opts);
  ASSERT_TRUE(outcome.plan.has_value());
  EXPECT_TRUE(core::validate_plan(state, *outcome.plan).empty());
  const auto m_opt = core::evaluate_plan(state, *outcome.plan);
  const auto m_pm = core::evaluate_plan(state, core::run_pm(state));
  // Optimal dominates PM on the model objective (r first).
  EXPECT_GE(m_opt.least_programmability, m_pm.least_programmability);
}

TEST(Abilene, PmNeverCascades) {
  const sdwan::Network net = abilene();
  const sim::RecoveryPolicy pm = [](const sdwan::FailureState& st) {
    return core::run_pm(st);
  };
  for (int j = 0; j < net.controller_count(); ++j) {
    const auto r = sim::simulate_cascade(net, {j}, pm);
    EXPECT_EQ(r.induced_failures(), 0u);
  }
}

}  // namespace
}  // namespace pm
