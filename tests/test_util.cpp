#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pm::util {
namespace {

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

TEST(Stats, EmptySampleIsAllZero) {
  const BoxStats s = box_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v{7.0};
  const BoxStats s = box_stats(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.q1, 7.0);
  EXPECT_EQ(s.median, 7.0);
  EXPECT_EQ(s.q3, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.mean, 7.0);
}

TEST(Stats, KnownFiveNumberSummary) {
  // numpy: q1=2.5, median=4.5, q3=6.5 for 1..8 (type-7 quantiles).
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8};
  const BoxStats s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.75);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.q3, 6.25);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
}

TEST(Stats, UnsortedInputHandled) {
  const std::vector<double> v{9, 1, 5};
  const BoxStats s = box_stats(v);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Stats, QuantileEdges) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, -0.5), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.5), 4.0);   // clamped
}

TEST(Stats, StddevMatchesHandComputation) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  // mean 5; sum sq dev = 32; sample variance = 32/7.
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevDegenerate) {
  EXPECT_EQ(stddev({}), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Stats, ToDoublesConvertsIntegers) {
  const std::vector<int> v{1, 2, 3};
  const auto d = to_doubles(v);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(Stats, AllDuplicatesCollapseTheBox) {
  const std::vector<double> v{4, 4, 4, 4, 4};
  const BoxStats s = box_stats(v);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.q1, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.q3, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(stddev(v), 0.0);
}

TEST(Stats, QuantileSingleElementAndDuplicates) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 1.0), 5.0);
  // Ties at the interpolation point still interpolate to the tied value.
  const std::vector<double> dup{1, 2, 2, 2, 9};
  EXPECT_DOUBLE_EQ(quantile_sorted(dup, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(dup, 0.25), 2.0);
}

TEST(Stats, BucketIndexBoundariesAreUpperInclusive) {
  const std::vector<double> bounds{1.0, 5.0, 10.0};
  // Prometheus semantics: bucket b counts v <= upper_bound[b].
  EXPECT_EQ(bucket_index(bounds, 0.5), 0u);
  EXPECT_EQ(bucket_index(bounds, 1.0), 0u);   // exactly on a bound
  EXPECT_EQ(bucket_index(bounds, 1.0001), 1u);
  EXPECT_EQ(bucket_index(bounds, 10.0), 2u);
  EXPECT_EQ(bucket_index(bounds, 11.0), 3u);  // +Inf overflow bucket
  EXPECT_EQ(bucket_index(bounds, std::nan("")), 3u);
}

TEST(Stats, BucketIndexEmptyBounds) {
  EXPECT_EQ(bucket_index({}, 42.0), 0u);  // only the overflow bucket
}

TEST(Stats, HistogramCountsCoverSample) {
  const std::vector<double> bounds{1.0, 5.0};
  const std::vector<double> sample{0.5, 1.0, 3.0, 5.0, 7.0, 100.0};
  const auto counts = histogram_counts(sample, bounds);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 3.0, 5.0
  EXPECT_EQ(counts[2], 2u);  // 7.0, 100.0
}

TEST(Stats, HistogramCountsEmptySample) {
  const auto counts = histogram_counts({}, std::vector<double>{1.0, 2.0});
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 0u);
}

// ---------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = split_ws("  alpha\t beta\n gamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, ParseInt) {
  long long v = 0;
  EXPECT_TRUE(parse_int(" 42 ", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("4x", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("3.5", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("-2.5e3", v));
  EXPECT_DOUBLE_EQ(v, -2500.0);
  EXPECT_FALSE(parse_double("nanx", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Strings, JoinAndLowerAndStartsWith) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

// ---------------------------------------------------------------------
// csv
// ---------------------------------------------------------------------

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotingAndEscaping) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"with,comma", "with\"quote", "with\nnewline", "plain"});
  EXPECT_EQ(out.str(),
            "\"with,comma\",\"with\"\"quote\",\"with\nnewline\",plain\n");
}

TEST(Csv, EscapeHelper) {
  EXPECT_EQ(CsvWriter::escape("ok"), "ok");
  EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
}

// ---------------------------------------------------------------------
// table
// ---------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "9"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 9  |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RaggedRowsPadded) {
  TextTable t({"a"});
  t.add_row({"1", "2", "3"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("| 1 | 2 | 3 |"), std::string::npos);
}

// ---------------------------------------------------------------------
// cli
// ---------------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  // Note: a bare "--flag" followed by a non-flag token consumes the token
  // as its value ("--flag pos" means flag=pos), so boolean flags should
  // come last or use "--flag=true".
  const char* argv[] = {"prog", "pos", "--a=1", "--b", "2", "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_EQ(args.get_int("b", 0), 2);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, FallbacksOnMissingOrMalformed) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("n", 5), 5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
}

TEST(Cli, BoolParsing) {
  const char* argv[] = {"prog", "--x=yes", "--y=0", "--z=TRUE"};
  CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("x", false));
  EXPECT_FALSE(args.get_bool("y", true));
  EXPECT_TRUE(args.get_bool("z", false));
}

TEST(Cli, UnusedFlagsReported) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, NegativeNumberAsSeparateValue) {
  // "--d -3" : "-3" does not start with "--", so it is the value.
  const char* argv[] = {"prog", "--d", "-3"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("d", 0), -3);
}

}  // namespace
}  // namespace pm::util
