// util::TaskPool — the deterministic parallel scenario engine: ordering,
// exception propagation, the nested-submission deadlock guard, and the
// parallel-equals-serial golden contract on the real sweep drivers (one
// figure sweep, one chaos cell grid).
#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pm_algorithm.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "util/cli.hpp"
#include "util/task_pool.hpp"

namespace pm::util {
namespace {

TEST(TaskPool, ResultsComeBackInSubmissionOrder) {
  TaskPool pool(4);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  const auto out = pool.parallel_map(items, [](std::size_t idx, int item) {
    EXPECT_EQ(static_cast<int>(idx), item);
    return item * item;
  });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(TaskPool, JobsOneRunsInlineOnTheCallingThread) {
  TaskPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const auto main_id = std::this_thread::get_id();
  std::vector<int> items(16, 0);
  const auto ids =
      pool.parallel_map(items, [&](std::size_t, int) {
        return std::this_thread::get_id();
      });
  for (const auto& id : ids) EXPECT_EQ(id, main_id);
}

TEST(TaskPool, JobsBelowOneClampToOne) {
  TaskPool pool(-3);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<int> items = {1, 2, 3};
  const auto out =
      pool.parallel_map(items, [](std::size_t, int v) { return v + 1; });
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TEST(TaskPool, EmptyInputIsANoOp) {
  TaskPool pool(4);
  const std::vector<int> none;
  const auto out =
      pool.parallel_map(none, [](std::size_t, int v) { return v; });
  EXPECT_TRUE(out.empty());
  pool.run_indexed(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(TaskPool, LowestIndexExceptionWinsAndEveryIndexRuns) {
  for (int jobs : {1, 4}) {
    TaskPool pool(jobs);
    std::atomic<int> attempted{0};
    try {
      pool.run_indexed(32, [&](std::size_t i) {
        attempted.fetch_add(1);
        if (i == 7 || i == 3 || i == 21) {
          throw std::runtime_error("idx " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "idx 3") << "jobs=" << jobs;
    }
    EXPECT_EQ(attempted.load(), 32) << "jobs=" << jobs;
  }
}

TEST(TaskPool, ManyTasksOnFewThreads) {
  TaskPool pool(3);
  std::vector<int> items(1000);
  for (int i = 0; i < 1000; ++i) items[static_cast<std::size_t>(i)] = i;
  std::atomic<long long> sum{0};
  pool.run_indexed(items.size(),
                   [&](std::size_t i) { sum.fetch_add(items[i]); });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(TaskPool, NestedSubmissionRunsInlineInsteadOfDeadlocking) {
  TaskPool pool(2);  // fewer slots than the nested fan-out would need
  std::vector<int> outer = {0, 1, 2, 3};
  const auto out = pool.parallel_map(outer, [&](std::size_t, int o) {
    std::vector<int> inner(8, o);
    // Same pool from inside a task: must not wait for a free slot.
    const auto partial = pool.parallel_map(
        inner, [](std::size_t idx, int v) {
          return v * 10 + static_cast<int>(idx);
        });
    int total = 0;
    for (int v : partial) total += v;
    return total;
  });
  // sum over idx 0..7 of (o*10 + idx) = 80*o + 28.
  EXPECT_EQ(out, (std::vector<int>{28, 108, 188, 268}));
}

TEST(TaskPool, ParseJobsFlag) {
  {
    const char* argv[] = {"bench", "--jobs=4"};
    CliArgs args(2, argv);
    EXPECT_EQ(parse_jobs_flag(args), 4);
  }
  {
    const char* argv[] = {"bench"};
    CliArgs args(1, argv);
    EXPECT_EQ(parse_jobs_flag(args), 1);  // default stays serial
  }
  {
    const char* argv[] = {"bench", "--jobs=0"};
    CliArgs args(2, argv);
    EXPECT_EQ(parse_jobs_flag(args), 1);  // clamped
  }
  {
    const char* argv[] = {"bench", "--jobs=banana"};
    CliArgs args(2, argv);
    EXPECT_EQ(parse_jobs_flag(args), 1);  // unparsable clamps to serial
  }
  {
    const char* argv[] = {"bench", "--jobs=auto"};
    CliArgs args(2, argv);
    EXPECT_GE(parse_jobs_flag(args), 1);
  }
}

// --- Golden parallel-equals-serial tests on the real drivers ---------

void expect_same_metrics(const core::CaseResult& a,
                         const core::CaseResult& b) {
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [algo, m] : a.metrics) {
    const auto it = b.metrics.find(algo);
    ASSERT_NE(it, b.metrics.end()) << a.label << "/" << algo;
    const auto& n = it->second;
    // Everything except solve_seconds (wall clock) must match exactly.
    EXPECT_EQ(m.least_programmability, n.least_programmability);
    EXPECT_EQ(m.total_programmability, n.total_programmability);
    EXPECT_EQ(m.recovered_flow_fraction, n.recovered_flow_fraction);
    EXPECT_EQ(m.recovered_switch_count, n.recovered_switch_count);
    EXPECT_EQ(m.offline_switch_count, n.offline_switch_count);
    EXPECT_EQ(m.used_control_resource, n.used_control_resource);
    EXPECT_EQ(m.available_control_resource, n.available_control_resource);
    EXPECT_EQ(m.per_flow_overhead_ms, n.per_flow_overhead_ms);
  }
  EXPECT_EQ(a.violations, b.violations);
}

TEST(TaskPoolGolden, FigureSweepIsIdenticalAtJobsFour) {
  const sdwan::Network net = core::make_att_network();
  core::RunnerOptions serial_opts;
  serial_opts.run_optimal = false;  // keep the test fast and deterministic
  serial_opts.jobs = 1;
  core::RunnerOptions parallel_opts = serial_opts;
  parallel_opts.jobs = 4;

  const auto serial = core::run_failure_sweep(net, 1, serial_opts);
  const auto parallel = core::run_failure_sweep(net, 1, parallel_opts);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_metrics(serial[i], parallel[i]);
  }
}

ctrl::SimulationReport chaos_cell(const sdwan::Network& net, double loss,
                                  double jitter_ms) {
  ctrl::ControllerConfig config;
  config.suspicion_checks = 3;
  config.transactional = false;
  ctrl::ControlSimulation simulation(
      net,
      [](const sdwan::FailureState& state,
         const core::RecoveryPlan* previous) {
        core::PmOptions opts;
        opts.seed = previous;
        return core::run_pm(state, opts);
      },
      config);
  ctrl::ChannelFaultModel faults;
  faults.seed = 42;
  faults.drop_probability = loss;
  faults.duplicate_probability = 0.02;
  faults.jitter_ms = jitter_ms;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  return simulation.run(2500.0);
}

TEST(TaskPoolGolden, ChaosCellsAreIdenticalAtJobsFour) {
  const sdwan::Network net = core::make_att_network();
  const std::vector<std::pair<double, double>> cells = {
      {0.0, 0.0}, {0.05, 5.0}, {0.10, 20.0}, {0.20, 20.0}};

  auto sweep = [&](int jobs) {
    TaskPool pool(jobs);
    return pool.parallel_map(
        cells, [&](std::size_t, const std::pair<double, double>& c) {
          return chaos_cell(net, c.first, c.second);
        });
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    EXPECT_EQ(a.detected_at, b.detected_at) << "cell " << i;
    EXPECT_EQ(a.converged_at, b.converged_at) << "cell " << i;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "cell " << i;
    EXPECT_EQ(a.retransmissions, b.retransmissions) << "cell " << i;
    EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed)
        << "cell " << i;
    EXPECT_EQ(a.spurious_detections, b.spurious_detections) << "cell " << i;
    EXPECT_EQ(a.degraded_flows, b.degraded_flows) << "cell " << i;
    EXPECT_EQ(a.all_flows_deliverable, b.all_flows_deliverable)
        << "cell " << i;
  }
}

}  // namespace
}  // namespace pm::util
