// Tests for the recovery service: request canonicalization, the
// byte-budgeted LRU plan cache, engine determinism (cached ==
// recomputed, batch == serial), deadline handling, and a loopback
// server smoke covering the admission-control contract end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "svc/client.hpp"
#include "svc/engine.hpp"
#include "svc/plan_cache.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace pm {
namespace {

using svc::Engine;
using svc::EngineConfig;
using svc::PlanCache;
using svc::SolveParams;
using util::JsonValue;

// ---------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------

TEST(SvcProtocol, CanonicalKeyIgnoresOrderAndDuplicates) {
  SolveParams a;
  a.failed = {4, 3};
  SolveParams b;
  b.failed = {3, 4, 3};
  SolveParams c;
  c.failed = {3, 4};
  EXPECT_EQ(svc::canonical_key(a), svc::canonical_key(c));
  EXPECT_EQ(svc::canonical_key(b), svc::canonical_key(c));
  EXPECT_EQ(svc::canonical_key(c), "algo=pm|failed=3,4");
}

TEST(SvcProtocol, CanonicalKeySeparatesAlgorithmsAndKnobs) {
  SolveParams pm_params;
  pm_params.failed = {3};
  SolveParams naive = pm_params;
  naive.algorithm = "naive";
  EXPECT_NE(svc::canonical_key(pm_params), svc::canonical_key(naive));

  SolveParams retro = pm_params;
  retro.algorithm = "retroflow";
  SolveParams retro3 = retro;
  retro3.retroflow_candidates = 3;
  // The candidates knob changes retroflow plans, so it is in the key...
  EXPECT_NE(svc::canonical_key(retro), svc::canonical_key(retro3));
  // ...but it is irrelevant to (and excluded from) other algorithms.
  SolveParams pm_knob = pm_params;
  pm_knob.retroflow_candidates = 7;
  EXPECT_EQ(svc::canonical_key(pm_params), svc::canonical_key(pm_knob));
}

TEST(SvcProtocol, DeadlineExcludedFromKey) {
  SolveParams a;
  a.failed = {3};
  SolveParams b = a;
  b.deadline_ms = 250.0;
  EXPECT_EQ(svc::canonical_key(a), svc::canonical_key(b));
}

TEST(SvcProtocol, ParseRejectsMalformedRequests) {
  EXPECT_THROW(svc::parse_request("not json"), svc::ProtocolError);
  EXPECT_THROW(svc::parse_request("[1,2]"), svc::ProtocolError);
  EXPECT_THROW(svc::parse_request(R"({"verb":"nope"})"),
               svc::ProtocolError);
  EXPECT_THROW(
      svc::parse_request(R"({"verb":"solve","failed":[3],"algorithm":"x"})"),
      svc::ProtocolError);
  EXPECT_THROW(
      svc::parse_request(R"({"verb":"solve","failed":["three"]})"),
      svc::ProtocolError);
}

// ---------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------

TEST(SvcPlanCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits exactly two of these entries (key 1 byte + payload 9).
  PlanCache cache(20);
  cache.put("a", "123456789");
  cache.put("b", "123456789");
  EXPECT_EQ(cache.entries(), 2u);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_TRUE(cache.get("a").has_value());
  cache.put("c", "123456789");
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(SvcPlanCache, CountsHitsAndMisses) {
  PlanCache cache(1024);
  EXPECT_FALSE(cache.get("k").has_value());
  cache.put("k", "v");
  EXPECT_TRUE(cache.get("k").has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // peek() counts hits but never misses.
  EXPECT_FALSE(cache.peek("absent").has_value());
  EXPECT_TRUE(cache.peek("k").has_value());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SvcPlanCache, OversizedPayloadIsNeverStored) {
  PlanCache cache(8);
  cache.put("k", "way too large for the budget");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.get("k").has_value());
}

TEST(SvcPlanCache, PutRefreshesExistingEntry) {
  PlanCache cache(64);
  cache.put("k", "old");
  cache.put("k", "newer");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(*cache.get("k"), "newer");
  EXPECT_EQ(cache.bytes(), 1u + 5u);
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

EngineConfig small_engine_config() {
  EngineConfig config;
  config.jobs = 2;
  return config;
}

TEST(SvcEngine, CachedPayloadIsByteIdenticalAcrossAlgorithms) {
  Engine engine(core::make_att_network(), small_engine_config());
  for (const std::string& algorithm : svc::known_algorithms()) {
    SolveParams params;
    params.failed = {3, 4};
    params.algorithm = algorithm;
    const auto cold = engine.solve(params);
    ASSERT_TRUE(cold.ok) << algorithm << ": " << cold.error_message;
    EXPECT_FALSE(cold.cache_hit) << algorithm;
    const auto warm = engine.solve(params);
    ASSERT_TRUE(warm.ok) << algorithm;
    EXPECT_TRUE(warm.cache_hit) << algorithm;
    EXPECT_EQ(warm.payload, cold.payload) << algorithm;
    // A permuted failure set is the same canonical request.
    SolveParams permuted = params;
    permuted.failed = {4, 3};
    const auto aliased = engine.solve(permuted);
    EXPECT_TRUE(aliased.cache_hit) << algorithm;
    EXPECT_EQ(aliased.payload, cold.payload) << algorithm;
  }
}

TEST(SvcEngine, TryCachedOnlyAnswersResidentKeys) {
  Engine engine(core::make_att_network(), small_engine_config());
  SolveParams params;
  params.failed = {3};
  EXPECT_FALSE(engine.try_cached(params).has_value());
  const auto cold = engine.solve(params);
  ASSERT_TRUE(cold.ok);
  const auto hit = engine.try_cached(params);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->payload, cold.payload);
}

TEST(SvcEngine, RejectsInvalidFailureSets) {
  Engine engine(core::make_att_network(), small_engine_config());
  SolveParams out_of_range;
  out_of_range.failed = {99};
  const auto a = engine.solve(out_of_range);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.error_code, svc::kErrBadRequest);

  SolveParams all_dead;
  all_dead.failed = {0, 1, 2, 3, 4, 5};
  const auto b = engine.solve(all_dead);
  EXPECT_FALSE(b.ok);
  EXPECT_EQ(b.error_code, svc::kErrBadRequest);
}

TEST(SvcEngine, ExpiredDeadlineReturnsDeadlineExceeded) {
  Engine engine(core::make_att_network(), small_engine_config());
  svc::SolveJob job;
  job.params.failed = {3};
  job.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);
  const auto outcome = engine.solve(job);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, svc::kErrDeadlineExceeded);
  // The expired request never computed or filled the cache.
  EXPECT_FALSE(engine.try_cached(job.params).has_value());
}

TEST(SvcEngine, BatchMatchesSerialSolves) {
  Engine engine(core::make_att_network(), small_engine_config());
  std::vector<svc::SolveJob> jobs;
  for (const auto& failed : std::vector<std::vector<sdwan::ControllerId>>{
           {3}, {4}, {3, 4}, {0, 5}}) {
    svc::SolveJob job;
    job.params.failed = failed;
    jobs.push_back(job);
  }
  const auto batch = engine.solve_batch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());

  Engine serial_engine(core::make_att_network(), small_engine_config());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto one = serial_engine.solve(jobs[i]);
    ASSERT_TRUE(batch[i].ok);
    ASSERT_TRUE(one.ok);
    EXPECT_EQ(batch[i].payload, one.payload) << "job " << i;
    EXPECT_EQ(batch[i].key, one.key) << "job " << i;
  }
}

// ---------------------------------------------------------------------
// Server smoke over loopback
// ---------------------------------------------------------------------

class SvcServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.jobs = 1;
    engine_ = std::make_unique<Engine>(core::make_att_network(), config);
    svc::ServerConfig server_config;
    server_config.port = 0;  // ephemeral
    server_ = std::make_unique<svc::Server>(*engine_, server_config);
    server_->start();
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<svc::Server> server_;
};

TEST_F(SvcServerTest, HealthReportsResidentModel) {
  svc::Client client("127.0.0.1", server_->port());
  const JsonValue health = client.health();
  ASSERT_TRUE(health.at("ok").as_bool());
  const JsonValue& result = health.at("result");
  EXPECT_EQ(result.at("status").as_string(), "ok");
  EXPECT_EQ(result.at("switches").as_int(), 25);
  EXPECT_EQ(result.at("controllers").as_int(), 6);
  EXPECT_EQ(result.at("flows").as_int(), 600);
  EXPECT_GT(result.at("diameter_hops").as_int(), 0);
}

TEST_F(SvcServerTest, ColdThenWarmIsByteIdenticalAndCounted) {
  svc::Client client("127.0.0.1", server_->port());
  const std::string line =
      R"({"verb":"solve","failed":[3,4],"algorithm":"pm","id":"r1"})";
  const std::string cold_raw = client.roundtrip_line(line);
  const std::string warm_raw = client.roundtrip_line(line);
  const JsonValue cold = JsonValue::parse(cold_raw);
  const JsonValue warm = JsonValue::parse(warm_raw);
  ASSERT_TRUE(cold.at("ok").as_bool());
  ASSERT_TRUE(warm.at("ok").as_bool());
  EXPECT_FALSE(cold.at("cached").as_bool());
  EXPECT_TRUE(warm.at("cached").as_bool());
  EXPECT_EQ(cold.at("id").as_string(), "r1");
  // The result member is spliced verbatim from the cache: identical
  // bytes, not merely an equal tree.
  const auto result_bytes = [](const std::string& raw) {
    const auto pos = raw.find("\"result\":");
    return raw.substr(pos);
  };
  EXPECT_EQ(result_bytes(warm_raw), result_bytes(cold_raw));

  const JsonValue metrics = client.metrics();
  ASSERT_TRUE(metrics.at("ok").as_bool());
  // The metrics verb returns the registry dump: an array of
  // {"name","type","value"} entries.
  bool found = false;
  for (std::size_t i = 0; i < metrics.at("result").size(); ++i) {
    const JsonValue& entry = metrics.at("result").at(i);
    if (entry.at("name").as_string() == "svc_cache_hits_total") {
      EXPECT_GE(entry.at("value").as_number(), 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "svc_cache_hits_total missing from metrics verb";
}

TEST_F(SvcServerTest, MalformedLineKeepsConnectionUsable) {
  svc::Client client("127.0.0.1", server_->port());
  const JsonValue err =
      JsonValue::parse(client.roundtrip_line("this is not json"));
  ASSERT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), svc::kErrBadRequest);
  // Same connection still answers real requests.
  const JsonValue health = client.health();
  EXPECT_TRUE(health.at("ok").as_bool());
}

TEST_F(SvcServerTest, UnknownAlgorithmIsStructuredError) {
  svc::Client client("127.0.0.1", server_->port());
  const JsonValue err = JsonValue::parse(client.roundtrip_line(
      R"({"verb":"solve","failed":[3],"algorithm":"magic"})"));
  ASSERT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), svc::kErrBadRequest);
}

TEST(SvcServer, ZeroQueueShedsUncachedSolves) {
  // max_queue=0: every solve that needs compute is shed deterministically
  // with `overloaded`; cached answers still flow (they bypass the queue).
  EngineConfig config;
  config.jobs = 1;
  Engine engine(core::make_att_network(), config);
  svc::ServerConfig server_config;
  server_config.port = 0;
  server_config.max_queue = 0;
  svc::Server server(engine, server_config);
  server.start();
  {
    svc::Client client("127.0.0.1", server.port());
    const std::string line = R"({"verb":"solve","failed":[3]})";
    const JsonValue shed = JsonValue::parse(client.roundtrip_line(line));
    ASSERT_FALSE(shed.at("ok").as_bool());
    EXPECT_EQ(shed.at("error").at("code").as_string(),
              svc::kErrOverloaded);
    // Warm the cache out of band; the same request now succeeds via the
    // fast path even though the queue admits nothing.
    SolveParams params;
    params.failed = {3};
    ASSERT_TRUE(engine.solve(params).ok);
    const JsonValue warm = JsonValue::parse(client.roundtrip_line(line));
    ASSERT_TRUE(warm.at("ok").as_bool());
    EXPECT_TRUE(warm.at("cached").as_bool());
  }
  server.stop();
}

}  // namespace
}  // namespace pm
