#include <gtest/gtest.h>

#include <algorithm>

#include "core/pm_algorithm.hpp"
#include "core/reroute.hpp"
#include "core/retroflow.hpp"
#include "core/scenario.hpp"
#include "sdwan/traffic.hpp"

namespace pm {
namespace {

using sdwan::FlowId;
using sdwan::SwitchId;

const sdwan::Network& att() {
  static const sdwan::Network net = core::make_att_network();
  return net;
}

// ---------------------------------------------------------------------
// Traffic matrices
// ---------------------------------------------------------------------

TEST(Traffic, UniformMatrix) {
  const auto tm = sdwan::uniform_traffic(att(), 2.5);
  EXPECT_EQ(tm.rate.size(), 600u);
  EXPECT_DOUBLE_EQ(tm.of(0), 2.5);
  EXPECT_NEAR(tm.total(), 600 * 2.5, 1e-9);
}

TEST(Traffic, GravityMatrixScalesToTotal) {
  const auto tm = sdwan::gravity_traffic(att(), 120000.0);
  EXPECT_NEAR(tm.total(), 120000.0, 1e-6);
  // Every flow gets positive rate; hub-attached pairs get more.
  double min_rate = 1e18;
  double max_rate = 0.0;
  for (double r : tm.rate) {
    min_rate = std::min(min_rate, r);
    max_rate = std::max(max_rate, r);
  }
  EXPECT_GT(min_rate, 0.0);
  EXPECT_GT(max_rate, 4.0 * min_rate);  // degree heterogeneity shows up
}

TEST(Traffic, SourceSurgeOnlyHitsThatSource) {
  auto tm = sdwan::uniform_traffic(att(), 1.0);
  sdwan::apply_source_surge(tm, att(), 13, 5.0);
  for (const auto& f : att().flows()) {
    EXPECT_DOUBLE_EQ(tm.of(f.id), f.src == 13 ? 5.0 : 1.0);
  }
}

TEST(Traffic, DispersedSurge) {
  auto tm = sdwan::uniform_traffic(att(), 1.0);
  sdwan::apply_dispersed_surge(tm, 0.25, 3.0);
  int surged = 0;
  for (double r : tm.rate) {
    if (r == 3.0) ++surged;
  }
  EXPECT_EQ(surged, 150);  // every 4th of 600
}

// ---------------------------------------------------------------------
// Link loads
// ---------------------------------------------------------------------

TEST(Traffic, LinkLoadConservation) {
  const auto tm = sdwan::uniform_traffic(att(), 1.0);
  const auto loads = sdwan::compute_link_loads(att(), tm, 1000.0);
  // Total link load == sum over flows of rate * path edge count.
  double expected = 0.0;
  for (const auto& f : att().flows()) {
    expected += static_cast<double>(f.path.size() - 1);
  }
  double actual = 0.0;
  for (const auto& [link, l] : loads.load_mbps) {
    (void)link;
    actual += l;
  }
  EXPECT_NEAR(actual, expected, 1e-9);
  EXPECT_GT(loads.max_utilization, 0.0);
}

TEST(Traffic, PathOverrideMovesLoad) {
  const auto tm = sdwan::uniform_traffic(att(), 10.0);
  const auto base = sdwan::compute_link_loads(att(), tm, 1000.0);
  // Move flow 0 onto some other simple path and check the busiest of its
  // default links sheds exactly 10 Mbps.
  const auto& f = att().flows()[0];
  ASSERT_GE(f.path.size(), 2u);
  const auto first_link = sdwan::make_link(f.path[0], f.path[1]);
  // Any reroute candidate from the source.
  const auto candidates = core::candidate_paths(att(), f.id, f.path[0]);
  ASSERT_FALSE(candidates.empty());
  std::map<FlowId, std::vector<SwitchId>> overrides{
      {f.id, candidates.front()}};
  const auto moved = sdwan::compute_link_loads(att(), tm, 1000.0, overrides);
  EXPECT_NEAR(moved.load_mbps.at(first_link),
              base.load_mbps.at(first_link) - 10.0, 1e-9);
}

TEST(Traffic, RejectsNonPositiveCapacity) {
  const auto tm = sdwan::uniform_traffic(att(), 1.0);
  EXPECT_THROW(sdwan::compute_link_loads(att(), tm, 0.0),
               std::invalid_argument);
}

TEST(Traffic, CongestedLinkCount) {
  auto tm = sdwan::uniform_traffic(att(), 0.0);
  // Push one heavy flow over its path only.
  tm.rate[0] = 500.0;
  const auto loads = sdwan::compute_link_loads(att(), tm, 100.0);
  const auto& f = att().flows()[0];
  EXPECT_EQ(loads.congested_links,
            static_cast<int>(f.path.size()) - 1);
  EXPECT_DOUBLE_EQ(loads.max_utilization, 5.0);
}

// ---------------------------------------------------------------------
// Reroute candidates and programmability gating
// ---------------------------------------------------------------------

TEST(Reroute, CandidatesAreLoopFreeAndReachDestination) {
  for (const FlowId l : {0, 57, 123, 400}) {
    const auto& f = att().flow(l);
    for (SwitchId at : f.path) {
      if (at == f.dst) continue;
      for (const auto& path : core::candidate_paths(att(), l, at)) {
        EXPECT_EQ(path.front(), f.src);
        EXPECT_EQ(path.back(), f.dst);
        auto sorted = path;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end())
            << "loop in candidate path";
        EXPECT_NE(path, f.path);
        // Edges must exist.
        for (std::size_t i = 1; i < path.size(); ++i) {
          EXPECT_TRUE(
              att().topology().graph().has_edge(path[i - 1], path[i]));
        }
      }
    }
  }
}

TEST(Reroute, OfflineFlowsGatedByPlan) {
  const sdwan::FailureState state(att(), {{3}});  // controller of node 13
  core::RecoveryPlan empty;
  empty.algorithm = "empty";
  // Pick an offline flow whose path is entirely inside the failed domain
  // region... simpler: any recoverable flow: at its offline switches it
  // must NOT be reroutable under an empty plan.
  const FlowId l = state.recoverable_flows().front();
  const auto points = core::reroutable_switches(state, empty, l);
  for (SwitchId s : points) {
    EXPECT_FALSE(state.is_offline_switch(s));
  }
  // Under PM's plan, assigned offline switches become reroutable.
  const core::RecoveryPlan pm = core::run_pm(state);
  bool any_offline_point = false;
  for (FlowId fl : state.recoverable_flows()) {
    for (SwitchId s : core::reroutable_switches(state, pm, fl)) {
      if (state.is_offline_switch(s)) {
        any_offline_point = true;
        EXPECT_TRUE(pm.sdn_assignments.contains({s, fl}));
      }
    }
  }
  EXPECT_TRUE(any_offline_point);
}

// ---------------------------------------------------------------------
// Congestion minimization
// ---------------------------------------------------------------------

class RerouteMlu : public ::testing::Test {
 protected:
  RerouteMlu() : state_(att(), {{3, 4}}) {
    tm_ = sdwan::gravity_traffic(att(), 200000.0);
    sdwan::apply_source_surge(tm_, att(), 17, 6.0);
    options_.link_capacity_mbps = 10000.0;
  }
  sdwan::FailureState state_;
  sdwan::TrafficMatrix tm_;
  core::RerouteOptions options_;
};

TEST_F(RerouteMlu, NeverIncreasesMlu) {
  const core::RecoveryPlan pm = core::run_pm(state_);
  const auto rr = core::minimize_congestion(state_, pm, tm_, options_);
  EXPECT_LE(rr.final_mlu, rr.initial_mlu + 1e-12);
  EXPECT_EQ(rr.moves, static_cast<int>(rr.new_paths.size()));
}

TEST_F(RerouteMlu, ReroutingActuallyHelps) {
  const core::RecoveryPlan pm = core::run_pm(state_);
  const auto rr = core::minimize_congestion(state_, pm, tm_, options_);
  EXPECT_LT(rr.final_mlu, rr.initial_mlu)
      << "the surge must be escapable with PM's programmability";
}

TEST_F(RerouteMlu, ResultConsistentWithLinkLoads) {
  const core::RecoveryPlan pm = core::run_pm(state_);
  const auto rr = core::minimize_congestion(state_, pm, tm_, options_);
  std::map<FlowId, std::vector<SwitchId>> overrides(rr.new_paths.begin(),
                                                    rr.new_paths.end());
  const auto loads = sdwan::compute_link_loads(
      att(), tm_, options_.link_capacity_mbps, overrides);
  EXPECT_NEAR(loads.max_utilization, rr.final_mlu, 1e-9);
}

TEST_F(RerouteMlu, PmReroutePointsSupersetOfRetroFlow) {
  // The greedy MLU outcome is not monotone in the option set, but the
  // option set itself is: in this scenario PM takes every opportunity
  // (ample capacity), so every flow's RetroFlow reroute points are
  // contained in PM's.
  const core::RecoveryPlan retro = core::run_retroflow(state_);
  const core::RecoveryPlan pm = core::run_pm(state_);
  for (sdwan::FlowId l : state_.recoverable_flows()) {
    const auto pts_retro = core::reroutable_switches(state_, retro, l);
    const auto pts_pm = core::reroutable_switches(state_, pm, l);
    for (SwitchId s : pts_retro) {
      EXPECT_NE(std::find(pts_pm.begin(), pts_pm.end(), s), pts_pm.end())
          << "flow " << l << " switch " << s;
    }
  }
}

TEST_F(RerouteMlu, MoveBudgetRespected) {
  core::RerouteOptions strict = options_;
  strict.max_moves = 1;
  const auto rr = core::minimize_congestion(state_, core::run_pm(state_),
                                            tm_, strict);
  EXPECT_LE(rr.moves, 1);
}

}  // namespace
}  // namespace pm
