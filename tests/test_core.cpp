#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/fmssm.hpp"
#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/recovery_plan.hpp"
#include "core/retroflow.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "topo/generators.hpp"

namespace pm::core {
namespace {

using sdwan::ControllerId;
using sdwan::FailureScenario;
using sdwan::FailureState;
using sdwan::FlowId;
using sdwan::Network;
using sdwan::SwitchId;

/// Small ring+chords network with 3 controllers for exhaustive checks.
Network small_network(double capacity, std::uint64_t seed = 3,
                      int nodes = 9) {
  sdwan::NetworkConfig cfg;
  cfg.controller_capacity = capacity;
  std::map<SwitchId, std::vector<SwitchId>> domains;
  const int per = nodes / 3;
  domains[0] = {};
  domains[per] = {};
  domains[2 * per] = {};
  for (int s = 0; s < nodes; ++s) {
    if (s < per) domains[0].push_back(s);
    else if (s < 2 * per) domains[per].push_back(s);
    else domains[2 * per].push_back(s);
  }
  return Network(topo::ring_with_chords(nodes, 4, seed), domains, cfg);
}

/// Exhaustive FMSSM optimum on a tiny instance by enumerating every
/// switch->controller mapping and greedily... no — fully enumerating SDN
/// subsets too, which is only viable for very small instances. Used to
/// certify both the MILP formulation and the aggregated linearization.
struct BruteResult {
  double objective = -1.0;
  std::int64_t best_r = 0;
};

BruteResult brute_force_fmssm(const FailureState& state, double lambda,
                              bool delay_constraint) {
  const Network& net = state.network();
  const auto& switches = state.offline_switches();
  const auto& controllers = state.active_controllers();
  const int n = static_cast<int>(switches.size());
  const int m = static_cast<int>(controllers.size());

  // Collect (switch, flow, p) opportunity triples.
  struct Opp {
    SwitchId sw;
    FlowId flow;
    std::int64_t p;
  };
  std::vector<Opp> opps;
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& o : state.opportunities(l)) {
      opps.push_back({o.sw, l, o.p});
    }
  }
  const int k = static_cast<int>(opps.size());
  EXPECT_LE(k, 22) << "instance too large for brute force";

  BruteResult best;
  // Enumerate mappings: each switch unmapped (m) or mapped to one of m
  // controllers -> (m+1)^n combinations.
  std::vector<int> assign(static_cast<std::size_t>(n), 0);
  while (true) {
    // Enumerate SDN subsets of opportunities.
    for (int mask = 0; mask < (1 << k); ++mask) {
      // Check consistency + capacity + delay.
      std::map<ControllerId, double> load;
      double delay = 0.0;
      std::map<FlowId, std::int64_t> h;
      bool ok = true;
      for (int t = 0; t < k && ok; ++t) {
        if (!((mask >> t) & 1)) continue;
        const auto& o = opps[static_cast<std::size_t>(t)];
        const int si = static_cast<int>(
            std::find(switches.begin(), switches.end(), o.sw) -
            switches.begin());
        const int a = assign[static_cast<std::size_t>(si)];
        if (a == 0) {
          ok = false;  // switch unmapped
          break;
        }
        const ControllerId j = controllers[static_cast<std::size_t>(a - 1)];
        load[j] += 1.0;
        if (load[j] > state.rest_capacity(j)) ok = false;
        delay += net.delay_ms(o.sw, j);
        h[o.flow] += o.p;
      }
      if (!ok) continue;
      if (delay_constraint && delay > state.ideal_total_delay() + 1e-9) {
        continue;
      }
      std::int64_t r = std::numeric_limits<std::int64_t>::max();
      std::int64_t total = 0;
      for (FlowId l : state.recoverable_flows()) {
        const auto it = h.find(l);
        const std::int64_t hl = it == h.end() ? 0 : it->second;
        r = std::min(r, hl);
        total += hl;
      }
      if (state.recoverable_flows().empty()) r = 0;
      const double obj = static_cast<double>(r) +
                         lambda * static_cast<double>(total);
      if (obj > best.objective) {
        best.objective = obj;
        best.best_r = r;
      }
    }
    // Next mapping.
    int pos = 0;
    while (pos < n && assign[static_cast<std::size_t>(pos)] == m) {
      assign[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n) break;
    ++assign[static_cast<std::size_t>(pos)];
  }
  return best;
}

// ---------------------------------------------------------------------
// Recovery plan helpers
// ---------------------------------------------------------------------

TEST(RecoveryPlan, ValidationCatchesEveryViolationKind) {
  const Network net = small_network(100.0);
  const FailureState state(net, {{0}});
  const auto& offline = state.offline_switches();
  ASSERT_FALSE(offline.empty());
  const SwitchId some_offline = offline.front();
  const ControllerId active = state.active_controllers().front();
  const ControllerId failed = 0;

  {  // mapped but not offline
    RecoveryPlan p;
    SwitchId online = 0;
    for (int s = 0; s < net.switch_count(); ++s) {
      if (!state.is_offline_switch(s)) {
        online = s;
        break;
      }
    }
    p.mapping[online] = active;
    EXPECT_FALSE(validate_plan(state, p).empty());
  }
  {  // mapped to failed controller
    RecoveryPlan p;
    p.mapping[some_offline] = failed;
    EXPECT_FALSE(validate_plan(state, p).empty());
  }
  {  // assignment at unmapped switch
    RecoveryPlan p;
    FlowId l = state.recoverable_flows().front();
    p.sdn_assignments.insert({state.opportunities(l).front().sw, l});
    EXPECT_FALSE(validate_plan(state, p).empty());
  }
  {  // assignment where beta = 0 (flow's own destination)
    RecoveryPlan p;
    FlowId l = state.recoverable_flows().front();
    const auto& f = net.flow(l);
    SwitchId dst_offline = -1;
    for (FlowId l2 : state.recoverable_flows()) {
      if (state.is_offline_switch(net.flow(l2).dst)) {
        dst_offline = net.flow(l2).dst;
        l = l2;
        break;
      }
    }
    (void)f;
    if (dst_offline >= 0) {
      p.mapping[dst_offline] = active;
      p.sdn_assignments.insert({dst_offline, l});
      EXPECT_FALSE(validate_plan(state, p).empty());
    }
  }
  {  // overload
    const Network tight = small_network(1.0);
    const FailureState tight_state(tight, {{0}});
    RecoveryPlan p;
    int added = 0;
    for (FlowId l : tight_state.recoverable_flows()) {
      for (const auto& o : tight_state.opportunities(l)) {
        p.mapping[o.sw] = tight_state.active_controllers().front();
        p.sdn_assignments.insert({o.sw, l});
        if (++added >= 5) break;
      }
      if (added >= 5) break;
    }
    EXPECT_FALSE(validate_plan(tight_state, p).empty());
  }
}

TEST(RecoveryPlan, FlowProgrammabilitySumsDiversity) {
  const Network net = small_network(100.0);
  const FailureState state(net, {{0}});
  const FlowId l = state.recoverable_flows().front();
  const auto& opps = state.opportunities(l);
  RecoveryPlan p;
  std::int64_t expected = 0;
  for (const auto& o : opps) {
    p.mapping[o.sw] = state.active_controllers().front();
    p.sdn_assignments.insert({o.sw, l});
    expected += o.p;
  }
  const auto h = flow_programmability(state, p);
  EXPECT_EQ(h.at(l), expected);
}

TEST(RecoveryPlan, PruneRemovesIdleMappings) {
  RecoveryPlan p;
  p.mapping[3] = 1;
  p.mapping[4] = 1;
  p.sdn_assignments.insert({3, 7});
  prune_unused_mappings(p);
  EXPECT_TRUE(p.mapping.contains(3));
  EXPECT_FALSE(p.mapping.contains(4));
}

TEST(RecoveryPlan, ControllerOfAssignmentPrefersOverride) {
  RecoveryPlan p;
  p.mapping[3] = 1;
  p.assignment_controller[{3, 7}] = 2;
  EXPECT_EQ(p.controller_of_assignment(3, 7), 2);
  EXPECT_EQ(p.controller_of_assignment(3, 8), 1);
  EXPECT_EQ(p.controller_of_assignment(5, 7), -1);
}

// ---------------------------------------------------------------------
// PM (Algorithm 1)
// ---------------------------------------------------------------------

struct PmCase {
  double capacity;
  int failed;
};

class PmProperty : public ::testing::TestWithParam<PmCase> {};

TEST_P(PmProperty, ProducesValidBalancedPlans) {
  const Network net = small_network(GetParam().capacity);
  const FailureState state(net, {{GetParam().failed}});
  const RecoveryPlan plan = run_pm(state);
  EXPECT_EQ(plan.algorithm, "PM");
  EXPECT_TRUE(validate_plan(state, plan).empty());

  // Every mapped switch is used; every assignment sits at a mapped switch.
  std::set<SwitchId> used;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    (void)flow;
    used.insert(sw);
    EXPECT_TRUE(plan.mapping.contains(sw));
  }
  EXPECT_EQ(used.size(), plan.mapping.size());
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, PmProperty,
    ::testing::Values(PmCase{100.0, 0}, PmCase{100.0, 1}, PmCase{100.0, 2},
                      PmCase{60.0, 0}, PmCase{60.0, 1}, PmCase{60.0, 2},
                      PmCase{40.0, 0}, PmCase{40.0, 2}, PmCase{20.0, 1},
                      PmCase{10.0, 0}, PmCase{5.0, 2}, PmCase{1.0, 0}));

TEST(Pm, Deterministic) {
  const Network net = small_network(50.0);
  const FailureState state(net, {{1}});
  const RecoveryPlan a = run_pm(state);
  const RecoveryPlan b = run_pm(state);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.sdn_assignments, b.sdn_assignments);
}

TEST(Pm, AmpleCapacityRecoversEverythingRecoverable) {
  const Network net = small_network(10000.0);
  const FailureState state(net, {{0}});
  const RecoveryPlan plan = run_pm(state);
  const auto m = evaluate_plan(state, plan);
  EXPECT_DOUBLE_EQ(m.recovered_flow_fraction, 1.0);
  // With unlimited capacity, every opportunity at a MAPPED switch is
  // taken (the utilization pass of Algorithm 1 lines 42-50 only touches
  // switches the balancing stage mapped — faithful to the paper).
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      if (plan.mapping.contains(opp.sw)) {
        EXPECT_TRUE(plan.sdn_assignments.contains({opp.sw, l}))
            << "unused opportunity at mapped switch " << opp.sw;
      }
    }
  }
}

TEST(Pm, ZeroCapacityRecoversNothing) {
  const Network net = small_network(0.5);
  // Normal load >> 0.5, so every rest capacity clamps to 0.
  const FailureState state(net, {{0}});
  const RecoveryPlan plan = run_pm(state);
  EXPECT_TRUE(plan.sdn_assignments.empty());
  EXPECT_TRUE(validate_plan(state, plan).empty());
}

TEST(Pm, MonotoneInCapacity) {
  // More controller capacity never hurts total programmability.
  std::int64_t prev_total = -1;
  for (double cap : {20.0, 40.0, 80.0, 160.0, 10000.0}) {
    const Network net = small_network(cap);
    const FailureState state(net, {{1}});
    const auto m = evaluate_plan(state, run_pm(state));
    EXPECT_GE(m.total_programmability, prev_total) << "cap=" << cap;
    prev_total = m.total_programmability;
  }
}

TEST(Pm, UtilizationPassOnlyAddsTotal) {
  const Network net = small_network(60.0);
  const FailureState state(net, {{2}});
  PmOptions with, without;
  without.skip_utilization_pass = true;
  const auto m_with = evaluate_plan(state, run_pm(state, with));
  const auto m_without = evaluate_plan(state, run_pm(state, without));
  EXPECT_GE(m_with.total_programmability, m_without.total_programmability);
  EXPECT_EQ(m_with.least_programmability, m_without.least_programmability);
}

TEST(Pm, BalancesBeforeMaximizing) {
  // PM's least programmability must be >= RetroFlow's in every scenario
  // (flow-level granularity can only help the minimum).
  for (int failed = 0; failed < 3; ++failed) {
    const Network net = small_network(40.0);
    const FailureState state(net, {{failed}});
    const auto pm = evaluate_plan(state, run_pm(state));
    const auto retro = evaluate_plan(state, run_retroflow(state));
    EXPECT_GE(pm.least_programmability, retro.least_programmability);
  }
}

// ---------------------------------------------------------------------
// RetroFlow
// ---------------------------------------------------------------------

TEST(RetroFlow, ValidWholeSwitchPlans) {
  const Network net = small_network(60.0);
  const FailureState state(net, {{0}});
  const RecoveryPlan plan = run_retroflow(state);
  EXPECT_EQ(plan.algorithm, "RetroFlow");
  EXPECT_TRUE(plan.whole_switch_control);
  EXPECT_TRUE(validate_plan(state, plan).empty());
  // Whole-switch semantics: a mapped switch carries ALL its beta flows.
  for (const auto& [sw, ctrl] : plan.mapping) {
    (void)ctrl;
    for (FlowId l : state.recoverable_flows()) {
      const auto& opps = state.opportunities(l);
      const bool has = std::any_of(opps.begin(), opps.end(),
                                   [&](const auto& o) { return o.sw == sw; });
      EXPECT_EQ(plan.sdn_assignments.contains({sw, l}), has);
    }
  }
}

TEST(RetroFlow, SkipsSwitchesThatCannotFit) {
  const Network net = small_network(30.0);
  const FailureState state(net, {{0}});
  const RecoveryPlan plan = run_retroflow(state);
  for (const auto& [sw, ctrl] : plan.mapping) {
    EXPECT_LE(state.gamma(sw), state.rest_capacity(ctrl) + 1e-9)
        << "mapped switch exceeds the capacity it was given";
    // The chosen controller is among the 2 nearest (default policy).
    const auto by_delay = state.controllers_by_delay(sw);
    const bool near = ctrl == by_delay[0] ||
                      (by_delay.size() > 1 && ctrl == by_delay[1]);
    EXPECT_TRUE(near) << "switch " << sw << " mapped beyond its two "
                      << "nearest controllers";
  }
}

TEST(RetroFlow, MoreCandidatesRecoverMore) {
  const auto net = make_att_network();
  sdwan::FailureScenario sc;
  for (int j = 0; j < net.controller_count(); ++j) {
    const int loc = net.controller(j).location;
    if (loc == 13 || loc == 20) sc.failed.push_back(j);
  }
  const FailureState state(net, sc);
  const auto narrow =
      evaluate_plan(state, run_retroflow(state, {.controller_candidates = 1}));
  const auto wide =
      evaluate_plan(state, run_retroflow(state, {.controller_candidates = 4}));
  EXPECT_GE(wide.total_programmability, narrow.total_programmability);
  EXPECT_GE(wide.recovered_switch_count, narrow.recovered_switch_count);
}

// ---------------------------------------------------------------------
// PG
// ---------------------------------------------------------------------

TEST(Pg, ValidPlansWithMiddleLayerCost) {
  const Network net = small_network(60.0);
  const FailureState state(net, {{1}});
  const RecoveryPlan plan = run_pg(state);
  EXPECT_EQ(plan.algorithm, "PG");
  EXPECT_GT(plan.middle_layer_ms, 0.0);
  EXPECT_TRUE(validate_plan(state, plan).empty());
}

TEST(Pg, FlowLevelFreedomBeatsOrMatchesPm) {
  // PG solves a relaxation of PM's problem, so with the same greedy it
  // recovers at least as much total programmability.
  for (int failed = 0; failed < 3; ++failed) {
    for (double cap : {30.0, 60.0, 120.0}) {
      const Network net = small_network(cap);
      const FailureState state(net, {{failed}});
      const auto pg = evaluate_plan(state, run_pg(state));
      const auto pm = evaluate_plan(state, run_pm(state));
      EXPECT_GE(pg.total_programmability, pm.total_programmability)
          << "failed=" << failed << " cap=" << cap;
      EXPECT_GE(pg.least_programmability, pm.least_programmability)
          << "failed=" << failed << " cap=" << cap;
    }
  }
}

TEST(Pg, OverheadExceedsPmDueToLayer) {
  const auto net = make_att_network();
  const FailureState state(net, {{3}});
  const auto pg = evaluate_plan(state, run_pg(state));
  const auto pm = evaluate_plan(state, run_pm(state));
  EXPECT_GT(pg.per_flow_overhead_ms, pm.per_flow_overhead_ms);
}

// ---------------------------------------------------------------------
// FMSSM model + Optimal
// ---------------------------------------------------------------------

TEST(Fmssm, ModelShape) {
  const Network net = small_network(50.0);
  const FailureState state(net, {{0}});
  const FmssmProblem p = build_fmssm(state);
  const int N = static_cast<int>(state.offline_switches().size());
  const int M = static_cast<int>(state.active_controllers().size());
  int B = 0;
  for (FlowId l : state.recoverable_flows()) {
    B += static_cast<int>(state.opportunities(l).size());
  }
  EXPECT_EQ(p.model.variable_count(), 1 + N * M + B * M);
  EXPECT_GT(p.lambda, 0.0);
  EXPECT_LT(p.lambda, 1.0);
  // r maximization dominates: lambda * (max total) < 1.
  double total_max = 0;
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& o : state.opportunities(l)) total_max += o.p;
  }
  EXPECT_LT(p.lambda * total_max, 1.0);
}

TEST(Fmssm, EncodeDecodeRoundTrip) {
  const Network net = small_network(50.0);
  const FailureState state(net, {{0}});
  const FmssmProblem p = build_fmssm(state);
  const RecoveryPlan pm_plan = run_pm(state);
  const auto x = p.encode(state, pm_plan);
  const RecoveryPlan decoded = p.decode(x);
  EXPECT_EQ(decoded.sdn_assignments, pm_plan.sdn_assignments);
  EXPECT_EQ(decoded.mapping, pm_plan.mapping);
}

TEST(Fmssm, OptimalMatchesBruteForceOnTinyInstances) {
  // 6-node ring (opposite pairs have two equal-length shortest paths, so
  // the DAG diversity is nontrivial), 2 domains, tight capacity: small
  // enough to enumerate every mapping and every SDN subset.
  sdwan::NetworkConfig cfg;
  cfg.controller_capacity = 14.0;
  std::map<SwitchId, std::vector<SwitchId>> domains{{0, {0, 1}},
                                                    {2, {2, 3, 4, 5}}};
  const Network net(topo::ring_with_chords(6, 0, 11), domains, cfg);
  const FailureState state(net, {{0}});
  ASSERT_FALSE(state.recoverable_flows().empty());

  const FmssmProblem p = build_fmssm(state);
  milp::MipOptions opts;
  opts.time_limit_seconds = 30.0;
  const auto result = milp::solve_mip(p.model, opts);
  ASSERT_EQ(result.status, milp::MipStatus::kOptimal);

  const BruteResult brute =
      brute_force_fmssm(state, p.lambda, /*delay_constraint=*/true);
  EXPECT_NEAR(result.objective, brute.objective, 1e-6)
      << "aggregated linearization must preserve the integer optimum";
}

TEST(Fmssm, DelayConstraintOnlyRestricts) {
  sdwan::NetworkConfig cfg;
  cfg.controller_capacity = 14.0;
  std::map<SwitchId, std::vector<SwitchId>> domains{{0, {0, 1}},
                                                    {2, {2, 3, 4, 5}}};
  const Network net(topo::ring_with_chords(6, 0, 12), domains, cfg);
  const FailureState state(net, {{1}});
  ASSERT_FALSE(state.recoverable_flows().empty());
  const FmssmProblem with = build_fmssm(state, {.delay_constraint = true});
  const FmssmProblem without =
      build_fmssm(state, {.delay_constraint = false});
  milp::MipOptions opts;
  opts.time_limit_seconds = 30.0;
  const auto rw = milp::solve_mip(with.model, opts);
  const auto ro = milp::solve_mip(without.model, opts);
  ASSERT_TRUE(rw.has_solution());
  ASSERT_TRUE(ro.has_solution());
  EXPECT_LE(rw.objective, ro.objective + 1e-9);
}

TEST(Optimal, AtLeastAsGoodAsItsWarmStart) {
  const Network net = small_network(40.0);
  const FailureState state(net, {{2}});
  OptimalOptions opts;
  opts.time_limit_seconds = 20.0;
  const OptimalOutcome outcome = run_optimal(state, opts);
  ASSERT_TRUE(outcome.plan.has_value());
  EXPECT_TRUE(validate_plan(state, *outcome.plan).empty());

  const auto opt_metrics = evaluate_plan(state, *outcome.plan);
  // Optimal's objective value must dominate any delay-feasible plan; PM
  // ignores the delay budget, so compare against the solver's own warm
  // start implicitly: the outcome must at least recover a valid plan with
  // nonnegative objective, and when proven optimal its model objective
  // beats PM's whenever PM is delay-feasible.
  const RecoveryPlan pm_plan = run_pm(state);
  const FmssmProblem problem = build_fmssm(state, opts.fmssm);
  const auto pm_encoded = problem.encode(state, pm_plan);
  if (problem.model.is_feasible(pm_encoded) && outcome.plan->proven_optimal) {
    const auto opt_encoded = problem.encode(state, *outcome.plan);
    EXPECT_GE(problem.model.objective_value(opt_encoded),
              problem.model.objective_value(pm_encoded) - 1e-6);
  }
  EXPECT_GE(opt_metrics.total_programmability, 0);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(Metrics, HandBuiltPlan) {
  const Network net = small_network(100.0);
  const FailureState state(net, {{0}});
  const FlowId l = state.recoverable_flows().front();
  const auto& opp = state.opportunities(l).front();
  RecoveryPlan plan;
  plan.algorithm = "manual";
  const ControllerId j = state.active_controllers().front();
  plan.mapping[opp.sw] = j;
  plan.sdn_assignments.insert({opp.sw, l});

  const RecoveryMetrics m = evaluate_plan(state, plan);
  EXPECT_EQ(m.recovered_flow_count, 1u);
  EXPECT_EQ(m.total_programmability, opp.p);
  EXPECT_EQ(m.least_programmability, 0);  // other flows unrecovered
  EXPECT_EQ(m.recovered_switch_count, 1u);
  EXPECT_DOUBLE_EQ(m.used_control_resource, 1.0);
  EXPECT_DOUBLE_EQ(m.controller_load.at(j), 1.0);
  EXPECT_NEAR(m.total_overhead_ms, net.delay_ms(opp.sw, j), 1e-12);
  EXPECT_NEAR(m.per_flow_overhead_ms, net.delay_ms(opp.sw, j), 1e-12);
  EXPECT_DOUBLE_EQ(m.programmability.min, static_cast<double>(opp.p));
  EXPECT_DOUBLE_EQ(m.programmability.max, static_cast<double>(opp.p));
}

TEST(Metrics, EmptyPlan) {
  const Network net = small_network(100.0);
  const FailureState state(net, {{0}});
  RecoveryPlan plan;
  plan.algorithm = "empty";
  const RecoveryMetrics m = evaluate_plan(state, plan);
  EXPECT_EQ(m.recovered_flow_count, 0u);
  EXPECT_EQ(m.total_programmability, 0);
  EXPECT_EQ(m.least_programmability, 0);
  EXPECT_DOUBLE_EQ(m.recovered_flow_fraction, 0.0);
  EXPECT_DOUBLE_EQ(m.per_flow_overhead_ms, 0.0);
}

TEST(Metrics, WholeSwitchLoadUsesGamma) {
  const Network net = small_network(200.0);
  const FailureState state(net, {{0}});
  const RecoveryPlan plan = run_retroflow(state);
  const RecoveryMetrics m = evaluate_plan(state, plan);
  double expected = 0.0;
  for (const auto& [sw, ctrl] : plan.mapping) {
    (void)ctrl;
    expected += state.gamma(sw);
  }
  EXPECT_DOUBLE_EQ(m.used_control_resource, expected);
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

TEST(Runner, SweepCoversAllScenarios) {
  const Network net = small_network(60.0);
  RunnerOptions opts;
  opts.run_optimal = false;
  const auto results = run_failure_sweep(net, 1, opts);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.metrics.size(), 3u);  // PM, RetroFlow, PG
    for (const auto& [name, violations] : r.violations) {
      EXPECT_TRUE(violations.empty()) << name << " in " << r.label;
    }
    EXPECT_GT(r.pm_seconds, 0.0);
  }
}

TEST(Runner, OptimalIncludedWhenRequested) {
  const Network net = small_network(60.0, 3, 9);
  RunnerOptions opts;
  opts.run_optimal = true;
  opts.optimal.time_limit_seconds = 20.0;
  const auto r = run_case(net, {{0}}, opts);
  EXPECT_TRUE(r.optimal_available);
  EXPECT_TRUE(r.metrics.contains("Optimal"));
  EXPECT_GT(r.optimal_seconds, 0.0);
  EXPECT_TRUE(r.violations.at("Optimal").empty());
}

}  // namespace
}  // namespace pm::core
