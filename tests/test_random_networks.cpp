// Property sweep on randomly generated WANs: every invariant the
// algorithms promise must hold on topologies far from the calibrated ATT
// backbone — generated Waxman graphs with k-center placement, random
// failure subsets, and varying capacity headroom.
#include <gtest/gtest.h>

#include <random>

#include "core/metrics.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "sdwan/failure.hpp"
#include "topo/generators.hpp"
#include "topo/placement.hpp"

namespace pm {
namespace {

struct RandomCase {
  std::uint64_t seed;
  int nodes;
  int controllers;
  int failures;
  double headroom;  ///< capacity = headroom * max normal load
};

class RandomNetworks : public ::testing::TestWithParam<RandomCase> {
 protected:
  static sdwan::Network build(const RandomCase& rc) {
    const topo::Topology topology =
        topo::waxman(rc.nodes, 0.5, 0.25, rc.seed);
    const auto domains = topo::k_center_domains(topology, rc.controllers);
    sdwan::NetworkConfig cfg;
    cfg.controller_capacity = 1e12;
    const sdwan::Network probe(topology, domains, cfg);
    double max_load = 0.0;
    for (int j = 0; j < probe.controller_count(); ++j) {
      max_load = std::max(max_load, probe.normal_load(j));
    }
    cfg.controller_capacity = rc.headroom * max_load;
    return sdwan::Network(topology, domains, cfg);
  }

  static sdwan::FailureScenario pick_failures(const RandomCase& rc,
                                              int controller_count) {
    std::mt19937_64 rng(rc.seed * 7919 + 13);
    std::vector<sdwan::ControllerId> ids(
        static_cast<std::size_t>(controller_count));
    for (int j = 0; j < controller_count; ++j) {
      ids[static_cast<std::size_t>(j)] = j;
    }
    std::shuffle(ids.begin(), ids.end(), rng);
    sdwan::FailureScenario sc;
    sc.failed.assign(ids.begin(), ids.begin() + rc.failures);
    std::sort(sc.failed.begin(), sc.failed.end());
    return sc;
  }
};

TEST_P(RandomNetworks, AllAlgorithmInvariantsHold) {
  const RandomCase rc = GetParam();
  const sdwan::Network net = build(rc);
  const sdwan::FailureState state(
      net, pick_failures(rc, net.controller_count()));

  const core::RecoveryPlan pm = core::run_pm(state);
  const core::RecoveryPlan pg = core::run_pg(state);
  const core::RecoveryPlan retro = core::run_retroflow(state);

  // 1. Every plan respects the hard FMSSM constraints.
  for (const auto* plan : {&pm, &pg, &retro}) {
    const auto violations = core::validate_plan(state, *plan);
    EXPECT_TRUE(violations.empty())
        << plan->algorithm << ": " << violations.front();
  }

  // 2. Granularity ordering: PG >= PM on both objectives; PM >= RetroFlow
  //    on the balanced minimum.
  const auto m_pm = core::evaluate_plan(state, pm);
  const auto m_pg = core::evaluate_plan(state, pg);
  const auto m_retro = core::evaluate_plan(state, retro);
  EXPECT_GE(m_pg.total_programmability, m_pm.total_programmability);
  EXPECT_GE(m_pg.least_programmability, m_pm.least_programmability);
  EXPECT_GE(m_pm.least_programmability, m_retro.least_programmability);
  EXPECT_GE(m_pm.recovered_flow_fraction,
            m_retro.recovered_flow_fraction - 1e-12);

  // 3. Determinism.
  const core::RecoveryPlan pm2 = core::run_pm(state);
  EXPECT_EQ(pm.mapping, pm2.mapping);
  EXPECT_EQ(pm.sdn_assignments, pm2.sdn_assignments);

  // 4. Metrics internal consistency.
  EXPECT_EQ(m_pm.recovered_flow_count, m_pm.programmability.count);
  EXPECT_LE(m_pm.recovered_flow_count, m_pm.recoverable_flow_count);
  EXPECT_LE(m_pm.used_control_resource,
            m_pm.available_control_resource + 1e-9);
  if (m_pm.recovered_flow_count > 0) {
    EXPECT_GE(m_pm.programmability.min, 2.0);  // beta requires p >= 2
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomNetworks,
    ::testing::Values(RandomCase{1, 20, 3, 1, 1.2},
                      RandomCase{2, 20, 3, 1, 1.05},
                      RandomCase{3, 30, 4, 2, 1.3},
                      RandomCase{4, 30, 4, 2, 1.05},
                      RandomCase{5, 30, 5, 3, 1.2},
                      RandomCase{6, 40, 5, 2, 1.1},
                      RandomCase{7, 40, 5, 3, 1.05},
                      RandomCase{8, 50, 6, 3, 1.2},
                      RandomCase{9, 25, 4, 2, 2.0},
                      RandomCase{10, 35, 4, 1, 1.5},
                      RandomCase{11, 45, 6, 4, 1.1},
                      RandomCase{12, 24, 3, 2, 1.02}));

}  // namespace
}  // namespace pm
