#include <gtest/gtest.h>

#include <set>

#include "graph/path_count.hpp"
#include "topo/att.hpp"
#include "topo/generators.hpp"
#include "topo/geo.hpp"
#include "topo/gml.hpp"
#include "topo/topology.hpp"

namespace pm::topo {
namespace {

// ---------------------------------------------------------------------
// geo
// ---------------------------------------------------------------------

TEST(Geo, HaversineKnownDistances) {
  // New York <-> Los Angeles: ~3936 km great-circle.
  EXPECT_NEAR(haversine_km(40.71, -74.01, 34.05, -118.24), 3936.0, 40.0);
  // London <-> Paris: ~344 km.
  EXPECT_NEAR(haversine_km(51.507, -0.128, 48.857, 2.351), 344.0, 5.0);
}

TEST(Geo, HaversineProperties) {
  EXPECT_DOUBLE_EQ(haversine_km(10, 20, 10, 20), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(haversine_km(1, 2, 3, 4), haversine_km(3, 4, 1, 2));
  // Antipodal points: half the circumference, ~20015 km.
  EXPECT_NEAR(haversine_km(0, 0, 0, 180), 20015.0, 10.0);
}

TEST(Geo, PropagationDelay) {
  // 2000 km at 2e8 m/s = 10 ms.
  EXPECT_DOUBLE_EQ(propagation_delay_ms(2000.0), 10.0);
  EXPECT_DOUBLE_EQ(propagation_delay_ms(0.0), 0.0);
}

// ---------------------------------------------------------------------
// Topology container
// ---------------------------------------------------------------------

TEST(Topology, AddNodesAndLinks) {
  Topology t("test");
  const auto a = t.add_node({"A", 0.0, 0.0});
  const auto b = t.add_node({"B", 0.0, 1.0});
  t.add_link(a, b);
  EXPECT_EQ(t.node_count(), 2);
  EXPECT_EQ(t.link_count(), 1u);
  // 1 degree of longitude at the equator is ~111.19 km -> ~0.556 ms.
  EXPECT_NEAR(t.graph().edge_weight(a, b), 0.556, 0.01);
  EXPECT_EQ(t.find_node("B"), b);
  EXPECT_FALSE(t.find_node("missing").has_value());
}

TEST(Topology, ExplicitDelayLink) {
  Topology t;
  const auto a = t.add_node({"A", 0, 0});
  const auto b = t.add_node({"B", 0, 0});
  t.add_link_with_delay(a, b, 7.5);
  EXPECT_DOUBLE_EQ(t.graph().edge_weight(a, b), 7.5);
}

TEST(Topology, EdgesSurviveNodeAddition) {
  Topology t;
  const auto a = t.add_node({"A", 0, 0});
  const auto b = t.add_node({"B", 1, 1});
  t.add_link(a, b);
  t.add_node({"C", 2, 2});
  EXPECT_TRUE(t.graph().has_edge(a, b));
  EXPECT_EQ(t.node_count(), 3);
}

// ---------------------------------------------------------------------
// GML
// ---------------------------------------------------------------------

constexpr const char* kSmallGml = R"(
# a comment
graph [
  label "Tiny"
  directed 0
  node [ id 10 label "X" Latitude 40.0 Longitude -74.0 ]
  node [ id 20 label "Y" Latitude 41.0 Longitude -75.0 ]
  node [ id 30 label "Z" Latitude 42.0 Longitude -76.0 ]
  edge [ source 10 target 20 ]
  edge [ source 20 target 30 LinkLabel "OC-48" ]
  edge [ source 20 target 30 ]
  edge [ source 10 target 10 ]
]
)";

TEST(Gml, ParsesNodesEdgesAndQuirks) {
  const Topology t = parse_gml(kSmallGml);
  EXPECT_EQ(t.name(), "Tiny");
  EXPECT_EQ(t.node_count(), 3);          // ids 10/20/30 compacted
  EXPECT_EQ(t.link_count(), 2u);         // duplicate + self-loop skipped
  EXPECT_EQ(t.node(0).label, "X");
  EXPECT_DOUBLE_EQ(t.node(1).latitude, 41.0);
  EXPECT_TRUE(t.graph().has_edge(0, 1));
  EXPECT_TRUE(t.graph().has_edge(1, 2));
}

TEST(Gml, NoCoordinatesFallsBackToUnitDelay) {
  const Topology t = parse_gml(R"(graph [
    node [ id 0 label "a" ]
    node [ id 1 label "b" ]
    edge [ source 0 target 1 ]
  ])");
  EXPECT_DOUBLE_EQ(t.graph().edge_weight(0, 1), 1.0);
}

TEST(Gml, ErrorsCarryContext) {
  EXPECT_THROW(parse_gml("nodes [ ]"), GmlError);
  EXPECT_THROW(parse_gml("graph [ node [ label \"no id\" ] ]"), GmlError);
  EXPECT_THROW(parse_gml("graph [ edge [ source 0 target 1 ] ]"), GmlError);
  EXPECT_THROW(parse_gml("graph [ node [ id 0 ] node [ id 0 ] ]"), GmlError);
  EXPECT_THROW(parse_gml("graph [ \"unterminated"), GmlError);
  EXPECT_THROW(parse_gml("graph ["), GmlError);
  try {
    parse_gml("graph [\n\n  \"oops\" ]");
    FAIL() << "expected GmlError";
  } catch (const GmlError& e) {
    EXPECT_GE(e.line(), 1);
  }
}

TEST(Gml, RoundTrip) {
  const Topology original = att_topology();
  const Topology reparsed = parse_gml(to_gml(original));
  EXPECT_EQ(reparsed.name(), original.name());
  ASSERT_EQ(reparsed.node_count(), original.node_count());
  ASSERT_EQ(reparsed.link_count(), original.link_count());
  for (int i = 0; i < original.node_count(); ++i) {
    EXPECT_EQ(reparsed.node(i).label, original.node(i).label);
    EXPECT_NEAR(reparsed.node(i).latitude, original.node(i).latitude, 1e-6);
  }
  for (const auto& e : original.graph().edges()) {
    EXPECT_TRUE(reparsed.graph().has_edge(e.u, e.v));
    EXPECT_NEAR(reparsed.graph().edge_weight(e.u, e.v), e.weight, 1e-6);
  }
}

TEST(Gml, LoadMissingFileThrows) {
  EXPECT_THROW(load_gml_file("/nonexistent/path.gml"), std::runtime_error);
}

// ---------------------------------------------------------------------
// Embedded ATT backbone
// ---------------------------------------------------------------------

TEST(Att, DimensionsMatchPaper) {
  const Topology t = att_topology();
  EXPECT_EQ(t.node_count(), 25);   // "25 nodes"
  EXPECT_EQ(t.link_count(), 56u);  // "112 links" counted directionally
  EXPECT_TRUE(graph::is_connected(t.graph()));
}

TEST(Att, DomainsPartitionSwitchesAndContainControllers) {
  const auto domains = att_domains();
  EXPECT_EQ(domains.size(), 6u);
  std::set<graph::NodeId> seen;
  for (const auto& [controller, members] : domains) {
    bool has_controller = false;
    for (graph::NodeId s : members) {
      EXPECT_TRUE(seen.insert(s).second) << "switch in two domains";
      if (s == controller) has_controller = true;
    }
    EXPECT_TRUE(has_controller);
  }
  EXPECT_EQ(seen.size(), 25u);
}

TEST(Att, ControllerNodesMatchTable3) {
  const auto nodes = att_controller_nodes();
  EXPECT_EQ(nodes, (std::vector<graph::NodeId>{2, 5, 6, 13, 20, 22}));
  const auto domains = att_domains();
  for (graph::NodeId c : nodes) EXPECT_TRUE(domains.contains(c));
}

TEST(Att, PaperFlowCountsShape) {
  const auto counts = att_paper_flow_counts();
  ASSERT_EQ(counts.size(), 25u);
  // Table III: switch 13 is the hub with 213 flows, the maximum.
  EXPECT_EQ(counts[13], 213);
  EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), 213);
  // Total of Table III.
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 2055);
}

TEST(Att, EveryLinkLiesOnAShortCycle) {
  // Needed so flows between adjacent nodes can have beta = 1 at their
  // source under the bounded path-count policy (DESIGN.md).
  const Topology t = att_topology();
  for (const auto& e : t.graph().edges()) {
    const std::int64_t paths =
        graph::count_paths_bounded(t.graph(), e.u, e.v, 3);
    EXPECT_GE(paths, 2) << "edge {" << e.u << ", " << e.v
                        << "} has no detour within 3 hops";
  }
}

TEST(Att, CoordinatesAreUsCities) {
  const Topology t = att_topology();
  for (int i = 0; i < t.node_count(); ++i) {
    const Node& n = t.node(i);
    EXPECT_GT(n.latitude, 24.0) << n.label;
    EXPECT_LT(n.latitude, 50.0) << n.label;
    EXPECT_GT(n.longitude, -125.0) << n.label;
    EXPECT_LT(n.longitude, -66.0) << n.label;
    EXPECT_FALSE(n.label.empty());
  }
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(Generators, WaxmanConnectedAndDeterministic) {
  const Topology a = waxman(30, 0.6, 0.4, 42);
  const Topology b = waxman(30, 0.6, 0.4, 42);
  EXPECT_EQ(a.node_count(), 30);
  EXPECT_TRUE(graph::is_connected(a.graph()));
  EXPECT_EQ(a.link_count(), b.link_count());
  for (const auto& e : a.graph().edges()) {
    EXPECT_TRUE(b.graph().has_edge(e.u, e.v));
  }
  const Topology c = waxman(30, 0.6, 0.4, 43);
  // Different seed, (almost surely) different edge set.
  bool differs = c.link_count() != a.link_count();
  if (!differs) {
    for (const auto& e : a.graph().edges()) {
      if (!c.graph().has_edge(e.u, e.v)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, WaxmanDensityGrowsWithAlpha) {
  const Topology sparse = waxman(40, 0.1, 0.3, 7);
  const Topology dense = waxman(40, 0.9, 0.3, 7);
  EXPECT_GT(dense.link_count(), sparse.link_count());
}

TEST(Generators, GeometricRadiusControlsDensity) {
  const Topology near = random_geometric(40, 500.0, 7);
  const Topology far = random_geometric(40, 2000.0, 7);
  EXPECT_TRUE(graph::is_connected(near.graph()));
  EXPECT_GT(far.link_count(), near.link_count());
}

TEST(Generators, RingWithChords) {
  const Topology t = ring_with_chords(10, 3, 5);
  EXPECT_EQ(t.node_count(), 10);
  EXPECT_EQ(t.link_count(), 13u);
  EXPECT_TRUE(graph::is_connected(t.graph()));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.graph().has_edge(i, (i + 1) % 10));
  }
  EXPECT_THROW(ring_with_chords(2, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pm::topo
