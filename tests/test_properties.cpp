// Additional cross-cutting property tests that pin down behaviours the
// per-module suites touch only incidentally.
#include <gtest/gtest.h>

#include <random>

#include "core/fmssm.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "graph/path_count.hpp"
#include "graph/shortest_path.hpp"
#include "topo/generators.hpp"
#include "topo/gml.hpp"

namespace pm {
namespace {

// ---------------------------------------------------------------------
// Graph symmetry properties on undirected graphs
// ---------------------------------------------------------------------

TEST(GraphProperties, ShortestPathCountIsSymmetric) {
  // On an undirected graph the number of hop-shortest u->v paths equals
  // the number of v->u paths (reverse every path).
  const topo::Topology t = topo::waxman(20, 0.5, 0.3, 5);
  for (int u = 0; u < t.node_count(); ++u) {
    for (int v = u + 1; v < t.node_count(); ++v) {
      EXPECT_EQ(graph::count_shortest_paths(t.graph(), u, v),
                graph::count_shortest_paths(t.graph(), v, u))
          << u << "<->" << v;
    }
  }
}

TEST(GraphProperties, BoundedCountIsSymmetricAtEqualBudget) {
  const topo::Topology t = topo::ring_with_chords(12, 4, 9);
  const auto& g = t.graph();
  for (int u = 0; u < g.node_count(); ++u) {
    for (int v = u + 1; v < g.node_count(); ++v) {
      const int d = graph::hop_distances(g, v)[static_cast<std::size_t>(u)];
      ASSERT_GE(d, 0);
      EXPECT_EQ(graph::count_paths_bounded(g, u, v, d + 1),
                graph::count_paths_bounded(g, v, u, d + 1));
    }
  }
}

TEST(GraphProperties, DiversityNonDecreasingInBudget) {
  const topo::Topology t = topo::waxman(18, 0.5, 0.3, 6);
  const auto& g = t.graph();
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<int> pick(0, g.node_count() - 1);
  for (int trial = 0; trial < 40; ++trial) {
    const int u = pick(rng);
    const int v = pick(rng);
    if (u == v) continue;
    std::int64_t prev = 0;
    for (int budget = 1; budget <= 5; ++budget) {
      const std::int64_t c = graph::count_paths_bounded(g, u, v, budget);
      EXPECT_GE(c, prev);
      prev = c;
    }
  }
}

// ---------------------------------------------------------------------
// FMSSM model-level properties
// ---------------------------------------------------------------------

TEST(FmssmProperties, RUpperBoundEqualsWeakestFlow) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3, 4}});
  const core::FmssmProblem p = core::build_fmssm(state);
  double weakest = 1e18;
  for (sdwan::FlowId l : state.recoverable_flows()) {
    double best = 0.0;
    for (const auto& opp : state.opportunities(l)) {
      best += static_cast<double>(opp.p);
    }
    weakest = std::min(weakest, best);
  }
  EXPECT_DOUBLE_EQ(p.model.variable(p.r_var).upper, weakest);
}

TEST(FmssmProperties, LambdaOverrideRespected) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{4}});
  const core::FmssmProblem p =
      core::build_fmssm(state, {.lambda = 0.125, .delay_constraint = true});
  EXPECT_DOUBLE_EQ(p.lambda, 0.125);
  // Every w variable's objective coefficient is lambda * p.
  for (const auto& [key, var] : p.w_var) {
    const auto [sw, ctrl, flow] = key;
    (void)ctrl;
    EXPECT_DOUBLE_EQ(
        p.model.variable(var).objective,
        0.125 * static_cast<double>(net.diversity(flow, sw)));
  }
}

TEST(FmssmProperties, DelayConstraintPresenceControlsRowCount) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{4}});
  const auto with = core::build_fmssm(state, {.delay_constraint = true});
  const auto without = core::build_fmssm(state, {.delay_constraint = false});
  EXPECT_EQ(with.model.constraint_count(),
            without.model.constraint_count() + 1);
}

// ---------------------------------------------------------------------
// PM/PG internal consistency on the ATT scenario
// ---------------------------------------------------------------------

TEST(AlgorithmProperties, PmAssignmentsImplyOpportunities) {
  const sdwan::Network net = core::make_att_network();
  for (int k = 1; k <= 3; ++k) {
    for (const auto& sc : sdwan::enumerate_failures(net, k)) {
      const sdwan::FailureState st(net, sc);
      const auto plan = core::run_pm(st);
      for (const auto& [sw, flow] : plan.sdn_assignments) {
        const auto& opps = st.opportunities(flow);
        EXPECT_TRUE(std::any_of(opps.begin(), opps.end(),
                                [&](const auto& o) { return o.sw == sw; }))
            << sc.label(net) << " (" << sw << ", " << flow << ")";
      }
    }
  }
}

TEST(AlgorithmProperties, PgSlicesRespectPerControllerCapacity) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState st(net, {{3, 4, 5}});
  const auto plan = core::run_pg(st);
  const auto loads = core::controller_loads(st, plan);
  for (const auto& [j, load] : loads) {
    EXPECT_LE(load, st.rest_capacity(j) + 1e-9)
        << net.controller(j).name;
  }
  // Every assignment has an explicit per-pair controller.
  for (const auto& pair : plan.sdn_assignments) {
    EXPECT_TRUE(plan.assignment_controller.contains(pair));
  }
}

TEST(AlgorithmProperties, SolveTimesAreRecorded) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState st(net, {{2}});
  EXPECT_GT(core::run_pm(st).solve_seconds, 0.0);
  EXPECT_GT(core::run_pg(st).solve_seconds, 0.0);
  EXPECT_GT(core::run_retroflow(st).solve_seconds, 0.0);
}

// ---------------------------------------------------------------------
// ctrl protocol corner cases
// ---------------------------------------------------------------------

TEST(CtrlProperties, MessageKindsNamedDistinctly) {
  using namespace ctrl;
  Message m;
  m.body = Heartbeat{};
  EXPECT_EQ(message_kind(m), "heartbeat");
  m.body = RoleRequest{};
  EXPECT_EQ(message_kind(m), "role-request");
  m.body = RoleReply{};
  EXPECT_EQ(message_kind(m), "role-reply");
  m.body = FlowMod{};
  EXPECT_EQ(message_kind(m), "flow-mod");
  m.body = FlowModAck{};
  EXPECT_EQ(message_kind(m), "flow-mod-ack");
}

TEST(CtrlProperties, NonMasterFlowModIgnored) {
  const sdwan::Network net = core::make_att_network();
  sim::EventQueue queue;
  ctrl::ControlChannel channel(net, queue);
  sdwan::Dataplane dp(net.topology(), sdwan::RoutingMode::kHybrid);
  ctrl::SwitchAgent agent(5, dp.at(5), channel);
  agent.attach();
  // Two controller endpoints; only #0 becomes master.
  channel.attach(ctrl::controller_endpoint(net, 0),
                 net.controller(0).location, [](const ctrl::Message&) {});
  channel.attach(ctrl::controller_endpoint(net, 1),
                 net.controller(1).location, [](const ctrl::Message&) {});
  ctrl::Message role;
  role.from = ctrl::controller_endpoint(net, 0);
  role.to = 5;
  role.body = ctrl::RoleRequest{0};
  channel.send(role);
  queue.run();
  ASSERT_EQ(agent.master(), 0);

  // A flow-mod from the non-master must be ignored (no install, no ack).
  ctrl::Message rogue;
  rogue.from = ctrl::controller_endpoint(net, 1);
  rogue.to = 5;
  ctrl::FlowMod body;
  body.entry = {10, {0, 24}, 13};
  body.xid = 99;
  rogue.body = body;
  channel.send(rogue);
  queue.run();
  EXPECT_EQ(agent.flow_mods_applied(), 0u);
  EXPECT_EQ(dp.at(5).flow_table_size(), 0u);

  // The same mod from the master applies.
  ctrl::Message legit = rogue;
  legit.from = ctrl::controller_endpoint(net, 0);
  channel.send(legit);
  queue.run();
  EXPECT_EQ(agent.flow_mods_applied(), 1u);
  EXPECT_EQ(dp.at(5).flow_table_size(), 1u);
}

// ---------------------------------------------------------------------
// GML robustness on Topology-Zoo-like input
// ---------------------------------------------------------------------

TEST(GmlProperties, VendorKeysAndNestedBlocksIgnored) {
  const topo::Topology t = topo::parse_gml(R"(
    Creator "Topology Zoo Toolset"
    graph [
      label "Vendorish"
      Network "X"
      GeoLocation "Country"
      node [ id 0 label "A" Latitude 10.0 Longitude 20.0
             Internal 1 type "PoP" ]
      node [ id 5 label "B" Latitude 11.0 Longitude 21.0
             hyperedge 0 ]
      edge [ source 0 target 5 LinkLabel "OC-192"
             extra [ nested 1 deeper [ key "v" ] ] ]
    ]
  )");
  EXPECT_EQ(t.node_count(), 2);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.node(1).label, "B");
}

// ---------------------------------------------------------------------
// Transactional recovery properties
// ---------------------------------------------------------------------

TEST(CtrlProperties, ConvergenceImpliesDeliveryAndCleanAudit) {
  // Across 50 random channel-fault configurations (loss, jitter,
  // duplication, reordering — each seeded and reproducible), successive
  // controller failures either fail to converge within the horizon or
  // converge into a CONSISTENT state: every flow deliverable and the
  // post-run audit clean. There is no third outcome — "converged but
  // mixed/orphaned/overloaded" is exactly what the transaction layer
  // exists to rule out.
  const sdwan::Network net = core::make_att_network();
  int converged_runs = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    std::mt19937 rng(static_cast<unsigned>(i));
    std::uniform_real_distribution<double> u(0.0, 1.0);
    ctrl::ChannelFaultModel faults;
    faults.seed = i;
    faults.drop_probability = 0.15 * u(rng);
    faults.jitter_ms = 25.0 * u(rng);
    faults.duplicate_probability = 0.05 * u(rng);
    faults.reorder_probability = 0.02 * u(rng);

    ctrl::ControllerConfig config;
    config.suspicion_checks = 3;
    ctrl::ControlSimulation simulation(
        net,
        [](const sdwan::FailureState& state,
           const core::RecoveryPlan* previous) {
          core::PmOptions opts;
          opts.seed = previous;
          return core::run_pm(state, opts);
        },
        config);
    simulation.set_fault_model(faults);
    simulation.fail_controller_at(3, 500.0);
    simulation.fail_controller_at(4, 3000.0);
    const ctrl::SimulationReport report = simulation.run(15000.0);

    if (!report.converged_at.has_value()) continue;
    ++converged_runs;
    EXPECT_TRUE(report.all_flows_deliverable)
        << "config " << i << " converged but broke delivery";
    EXPECT_TRUE(report.audit_clean)
        << "config " << i << " converged with "
        << report.audit_violations << " audit violation(s)";
  }
  // The property is vacuous if nothing ever converges — most configs
  // must (loss tops out at 15% and the horizon is generous).
  EXPECT_GE(converged_runs, 40);
}

}  // namespace
}  // namespace pm
