// Tests for the observability layer (src/obs): metrics registry,
// deterministic tracer, wall-clock profiler, leveled logger — plus the
// report-as-view contract between ControlSimulation and its registry.
#include <gtest/gtest.h>

#include <sstream>

#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace pm::obs {
namespace {

// ---------------------------------------------------------------------
// metrics registry
// ---------------------------------------------------------------------

TEST(Metrics, CounterFindOrCreateIsStable) {
  MetricsRegistry m;
  Counter& c = m.counter("pm_x_total", "help text");
  c.inc();
  c.inc(4);
  EXPECT_EQ(m.counter("pm_x_total").value(), 5u);
  EXPECT_EQ(&m.counter("pm_x_total"), &c);
  EXPECT_EQ(m.counter_value("pm_x_total"), 5u);
  EXPECT_EQ(m.counter_value("missing"), 0u);
}

TEST(Metrics, LabelsDistinguishSeries) {
  MetricsRegistry m;
  m.counter("pm_msgs_total", "", {{"kind", "heartbeat"}}).inc(7);
  m.counter("pm_msgs_total", "", {{"kind", "flow-mod"}}).inc(2);
  EXPECT_EQ(m.counter_value("pm_msgs_total", {{"kind", "heartbeat"}}), 7u);
  EXPECT_EQ(m.counter_value("pm_msgs_total", {{"kind", "flow-mod"}}), 2u);
  const auto by_kind = m.counters_by_label("pm_msgs_total", "kind");
  ASSERT_EQ(by_kind.size(), 2u);
  EXPECT_EQ(by_kind.at("heartbeat"), 7u);
  EXPECT_EQ(by_kind.at("flow-mod"), 2u);
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry m;
  m.counter("pm_thing");
  EXPECT_THROW(m.gauge("pm_thing"), std::logic_error);
}

TEST(Metrics, GaugeOverwrites) {
  MetricsRegistry m;
  m.gauge("pm_level").set(3.5);
  m.gauge("pm_level").set(-1.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("pm_level"), -1.0);
}

TEST(Metrics, HistogramBucketsAndSum) {
  MetricsRegistry m;
  Histogram& h = m.histogram("pm_lat_ms", "", {1.0, 5.0, 10.0});
  for (double v : {0.5, 1.0, 2.0, 7.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);  // <= 1
  EXPECT_EQ(h.bucket_counts()[1], 1u);  // <= 5
  EXPECT_EQ(h.bucket_counts()[2], 1u);  // <= 10
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // +Inf
}

TEST(Metrics, PrometheusExportIsSortedAndCumulative) {
  MetricsRegistry m;
  // Register out of sorted order; export must sort by identity.
  m.gauge("pm_z_level", "a gauge").set(2.0);
  m.counter("pm_a_total", "a counter").inc(3);
  Histogram& h = m.histogram("pm_h_ms", "a histogram", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  std::ostringstream out;
  m.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_LT(text.find("pm_a_total"), text.find("pm_h_ms"));
  EXPECT_LT(text.find("pm_h_ms"), text.find("pm_z_level"));
  EXPECT_NE(text.find("# TYPE pm_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pm_h_ms histogram"), std::string::npos);
  // Cumulative buckets: le="10" covers both samples; +Inf as well.
  EXPECT_NE(text.find("pm_h_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("pm_h_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("pm_h_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("pm_h_ms_count 2"), std::string::npos);
}

TEST(Metrics, JsonExportParses) {
  MetricsRegistry m;
  m.counter("pm_a_total", "", {{"kind", "x"}}).inc(1);
  m.histogram("pm_h_ms", "", {2.0}).observe(1.0);
  const auto json = util::JsonValue::parse(m.to_json().to_string(2));
  ASSERT_EQ(json.size(), 2u);
  EXPECT_EQ(json.at(0).at("name").as_string(), "pm_a_total");
  EXPECT_EQ(json.at(0).at("labels").at("kind").as_string(), "x");
  EXPECT_EQ(json.at(1).at("type").as_string(), "histogram");
  EXPECT_EQ(json.at(1).at("count").as_int(), 1);
}

TEST(Metrics, FormatLabelsCanonical) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"a", "1"}, {"b", "two"}}), "{a=\"1\",b=\"two\"}");
}

// ---------------------------------------------------------------------
// tracer
// ---------------------------------------------------------------------

void record_canonical_events(Tracer& t) {
  t.set_track_name(1, "channel");
  t.set_track_name(10, "controller C0");
  t.instant(1.5, "channel", "send", 1, {{"kind", "heartbeat"}, {"seq", 7}});
  t.begin(2.0, "wave", "recovery", 10);
  t.instant(2.5, "channel", "recv", 1, {{"latency_ms", 0.75}});
  t.end(4.0, "wave", "recovery", 10);
  t.complete(2.0, 2.0, "wave", "wave", 3, {{"epoch", 1}});
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.instant(1.0, "c", "n", 1);
  t.begin(1.0, "c", "n", 1);
  t.end(2.0, "c", "n", 1);
  t.complete(1.0, 1.0, "c", "n", 1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, IdenticalEventSequencesExportByteIdentically) {
  Tracer a;
  Tracer b;
  a.set_enabled(true);
  b.set_enabled(true);
  record_canonical_events(a);
  record_canonical_events(b);
  std::ostringstream ca, cb, ja, jb;
  a.write_chrome_trace(ca);
  b.write_chrome_trace(cb);
  a.write_jsonl(ja);
  b.write_jsonl(jb);
  EXPECT_EQ(ca.str(), cb.str());
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(Tracer, ChromeTraceParsesAndCarriesMetadata) {
  Tracer t;
  t.set_enabled(true);
  record_canonical_events(t);
  std::ostringstream out;
  t.write_chrome_trace(out);
  const auto json = util::JsonValue::parse(out.str());
  ASSERT_TRUE(json.contains("traceEvents"));
  const auto& events = json.at("traceEvents");
  // 2 thread_name metadata records + 5 events.
  ASSERT_EQ(events.size(), 7u);
  // Metadata first, naming the tracks.
  EXPECT_EQ(events.at(0).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(0).at("name").as_string(), "thread_name");
  // The first real event: instant at ts = 1.5 ms = 1500 us.
  const auto& first = events.at(2);
  EXPECT_EQ(first.at("ph").as_string(), "i");
  EXPECT_DOUBLE_EQ(first.at("ts").as_number(), 1500.0);
  EXPECT_EQ(first.at("args").at("kind").as_string(), "heartbeat");
}

TEST(Tracer, JsonlLinesParseStandalone) {
  Tracer t;
  t.set_enabled(true);
  record_canonical_events(t);
  std::ostringstream out;
  t.write_jsonl(out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const auto json = util::JsonValue::parse(line);
    EXPECT_TRUE(json.contains("ts_ms"));
    EXPECT_TRUE(json.contains("ph"));
    EXPECT_TRUE(json.contains("name"));
    ++lines;
  }
  EXPECT_EQ(lines, t.size());
}

// ---------------------------------------------------------------------
// profiler
// ---------------------------------------------------------------------

TEST(Profiler, DisabledSpansCostNothingVisible) {
  Profiler& p = Profiler::global();
  p.set_enabled(false);
  p.reset();
  {
    OBS_SPAN("test.disabled");
  }
  EXPECT_TRUE(p.spans().empty());
}

TEST(Profiler, NestedSpansTrackDepth) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  p.reset();
  {
    OBS_SPAN("test.outer");
    EXPECT_EQ(p.current_depth(), 1);
    {
      OBS_SPAN("test.inner");
      EXPECT_EQ(p.current_depth(), 2);
    }
  }
  p.set_enabled(false);
  EXPECT_EQ(p.current_depth(), 0);
  ASSERT_EQ(p.spans().size(), 2u);
  const auto& outer = p.spans().at("test.outer");
  const auto& inner = p.spans().at("test.inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  EXPECT_EQ(outer.max_depth, 1);
  EXPECT_EQ(inner.max_depth, 2);
  // Outer wall time encloses inner.
  EXPECT_GE(outer.total_ms, inner.total_ms);
  const auto json = p.to_json();
  EXPECT_FALSE(json.at("deterministic").as_bool());
  p.reset();
}

// ---------------------------------------------------------------------
// logger
// ---------------------------------------------------------------------

TEST(Log, LevelsFilterAndFormat) {
  Logger& logger = log();
  std::ostringstream captured;
  logger.set_stream(&captured);
  logger.set_level(LogLevel::kWarn);
  logger.error("boom");
  logger.warn("careful");
  logger.info("ignored");
  logger.debug("ignored too");
  logger.set_stream(nullptr);
  logger.set_level(LogLevel::kInfo);
  EXPECT_EQ(captured.str(), "[error] boom\n[warn] careful\n");
}

TEST(Log, QuietSilencesEverything) {
  Logger& logger = log();
  std::ostringstream captured;
  logger.set_stream(&captured);
  logger.set_level(LogLevel::kQuiet);
  logger.error("nope");
  logger.set_stream(nullptr);
  logger.set_level(LogLevel::kInfo);
  EXPECT_EQ(captured.str(), "");
}

TEST(Log, ParseNamesAndAliases) {
  EXPECT_EQ(parse_log_level("quiet"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_FALSE(parse_log_level("shout").has_value());
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "info");
}

// ---------------------------------------------------------------------
// report-as-view + simulation tracing
// ---------------------------------------------------------------------

ctrl::RecoveryPolicy pm_policy() {
  return [](const sdwan::FailureState& state,
            const core::RecoveryPlan* previous) {
    core::PmOptions opts;
    opts.seed = previous;
    return core::run_pm(state, opts);
  };
}

TEST(ObsIntegration, ReportIsAViewOverTheRegistry) {
  const sdwan::Network net = core::make_att_network();
  ctrl::ControlSimulation sim(net, pm_policy());
  sim.fail_controller_at(3, 500.0);
  const ctrl::SimulationReport report = sim.run(5000.0);
  const MetricsRegistry& m = sim.observability().metrics;
  EXPECT_EQ(report.messages_sent, m.counter_value("pm_messages_sent_total"));
  EXPECT_EQ(report.recovery_waves,
            m.counter_value("pm_recovery_waves_total"));
  EXPECT_DOUBLE_EQ(report.detected_at.value_or(-1.0),
                   m.gauge_value("pm_detected_at_ms"));
  EXPECT_DOUBLE_EQ(report.converged_at.value_or(-1.0),
                   m.gauge_value("pm_converged_at_ms"));
  EXPECT_EQ(report.all_flows_deliverable,
            m.gauge_value("pm_all_flows_deliverable") != 0.0);
  EXPECT_EQ(report.messages_by_kind,
            m.counters_by_label("pm_messages_total", "kind"));
  // Sanity: the run actually did something.
  EXPECT_GT(report.messages_sent, 0u);
  EXPECT_GE(report.recovery_waves, 1u);
  EXPECT_TRUE(report.all_flows_deliverable);
}

TEST(ObsIntegration, TracedRunsAreDeterministic) {
  const sdwan::Network net = core::make_att_network();
  auto traced_run = [&] {
    ctrl::ControlSimulation sim(net, pm_policy());
    sim.observability().tracer.set_enabled(true);
    sim.observability().detailed_metrics = true;
    sim.fail_controller_at(3, 500.0);
    sim.fail_controller_at(4, 2000.0);
    sim.run(5000.0);
    std::ostringstream trace, metrics;
    sim.observability().tracer.write_chrome_trace(trace);
    sim.observability().metrics.write_prometheus(metrics);
    return std::pair{trace.str(), metrics.str()};
  };
  const auto [trace_a, metrics_a] = traced_run();
  const auto [trace_b, metrics_b] = traced_run();
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  // And the trace is real: it parses and contains protocol events.
  const auto json = util::JsonValue::parse(trace_a);
  EXPECT_GT(json.at("traceEvents").size(), 100u);
  // Detailed metrics recorded per-message latency.
  EXPECT_NE(metrics_a.find("pm_message_latency_ms_count"),
            std::string::npos);
  EXPECT_NE(metrics_a.find("pm_wave_convergence_ms_count"),
            std::string::npos);
}

TEST(ObsIntegration, UntracedRunRecordsNoEvents) {
  const sdwan::Network net = core::make_att_network();
  ctrl::ControlSimulation sim(net, pm_policy());
  sim.fail_controller_at(3, 500.0);
  sim.run(3000.0);
  EXPECT_EQ(sim.observability().tracer.size(), 0u);
  // Hot-path metrics stayed off; summary metrics still published.
  EXPECT_EQ(sim.observability().metrics.counter_value(
                "pm_message_latency_ms"),
            0u);
  EXPECT_GT(sim.observability().metrics.series_count(), 10u);
}

}  // namespace
}  // namespace pm::obs
