#include <gtest/gtest.h>

#include <cmath>

#include "core/pm_algorithm.hpp"
#include "core/pg.hpp"
#include "core/scenario.hpp"
#include "core/serialize.hpp"
#include "util/json.hpp"

namespace pm {
namespace {

using util::JsonError;
using util::JsonValue;

// ---------------------------------------------------------------------
// JSON value tree
// ---------------------------------------------------------------------

TEST(Json, ScalarsAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).as_bool());
  EXPECT_DOUBLE_EQ(JsonValue(2.5).as_number(), 2.5);
  EXPECT_EQ(JsonValue(42).as_int(), 42);
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  EXPECT_THROW(JsonValue(1.0).as_string(), std::logic_error);
  EXPECT_THROW(JsonValue("x").as_number(), std::logic_error);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj["zeta"] = JsonValue(1);
  obj["alpha"] = JsonValue(2);
  obj["mid"] = JsonValue(3);
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "zeta");
  EXPECT_EQ(obj.members()[2].first, "mid");
  EXPECT_TRUE(obj.contains("alpha"));
  EXPECT_FALSE(obj.contains("omega"));
  EXPECT_THROW(obj.at("omega"), std::out_of_range);
}

TEST(Json, WriterCompactAndPretty) {
  JsonValue obj = JsonValue::object();
  obj["n"] = JsonValue(3);
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(1));
  arr.push_back(JsonValue("two"));
  obj["items"] = std::move(arr);
  EXPECT_EQ(obj.to_string(), R"({"n":3,"items":[1,"two"]})");
  const std::string pretty = obj.to_string(2);
  EXPECT_NE(pretty.find("\n  \"n\": 3"), std::string::npos);
}

TEST(Json, StringEscaping) {
  JsonValue v(std::string("a\"b\\c\nd\x01"));
  EXPECT_EQ(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
  // Round-trip.
  EXPECT_EQ(JsonValue::parse(v.to_string()).as_string(), v.as_string());
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(JsonValue(42.0).to_string(), "42");
  EXPECT_EQ(JsonValue(-7).to_string(), "-7");
  EXPECT_EQ(JsonValue::parse("2.5e3").as_number(), 2500.0);
}

TEST(Json, ParserHandlesWhitespaceAndNesting) {
  const auto v = JsonValue::parse(R"(
    { "a" : [ 1 , { "b" : null } , true ],
      "c" : "x" }
  )");
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_TRUE(v.at("a").at(1).at("b").is_null());
  EXPECT_TRUE(v.at("a").at(2).as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), JsonError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
  EXPECT_THROW(JsonValue::parse("tru"), JsonError);
  EXPECT_THROW(JsonValue::parse("1 2"), JsonError);   // trailing garbage
  EXPECT_THROW(JsonValue::parse("{a:1}"), JsonError); // unquoted key
  EXPECT_THROW(JsonValue::parse("[1"), JsonError);
  EXPECT_THROW(JsonValue::parse("\"\\u12g4\""), JsonError);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  // U+00E9 (e-acute) -> two UTF-8 bytes.
  const auto s = JsonValue::parse("\"\\u00e9\"").as_string();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(s[0]), 0xC3u);
  EXPECT_EQ(static_cast<unsigned char>(s[1]), 0xA9u);
}

TEST(Json, NonFiniteNumbersWriteAsNull) {
  // JSON has no NaN/Inf literal; the svc wire protocol depends on every
  // writer output being parseable, so non-finite degrades to null.
  EXPECT_EQ(JsonValue(std::nan("")).to_string(), "null");
  EXPECT_EQ(JsonValue(HUGE_VAL).to_string(), "null");
  EXPECT_EQ(JsonValue(-HUGE_VAL).to_string(), "null");
  JsonValue obj = JsonValue::object();
  obj["bad"] = JsonValue(std::nan(""));
  obj["good"] = JsonValue(1.5);
  const std::string text = obj.to_string();
  EXPECT_EQ(text, R"({"bad":null,"good":1.5})");
  const JsonValue back = JsonValue::parse(text);
  EXPECT_TRUE(back.at("bad").is_null());
  EXPECT_DOUBLE_EQ(back.at("good").as_number(), 1.5);
}

TEST(Json, ControlCharacterSweepRoundTrips) {
  // Every control character (0x00-0x1F) must escape on write, parse
  // back to the same byte, and re-serialize identically.
  for (int c = 0; c < 0x20; ++c) {
    std::string s = "a";
    s += static_cast<char>(c);
    s += "b";
    const JsonValue v(s);
    const std::string once = v.to_string();
    const JsonValue back = JsonValue::parse(once);
    EXPECT_EQ(back.as_string(), s) << "control char " << c;
    EXPECT_EQ(back.to_string(), once) << "control char " << c;
  }
}

TEST(Json, MultiByteUtf8PassthroughAndEscapes) {
  // Raw UTF-8 passes through the writer byte-for-byte...
  const std::string snowman = "\xE2\x98\x83";       // U+2603
  const std::string e_acute = "\xC3\xA9";           // U+00E9
  const JsonValue v(snowman + " " + e_acute);
  const std::string text = v.to_string();
  EXPECT_EQ(text, "\"" + snowman + " " + e_acute + "\"");
  EXPECT_EQ(JsonValue::parse(text).as_string(), v.as_string());
  // ...and the equivalent \uXXXX escapes parse to the same bytes.
  EXPECT_EQ(JsonValue::parse("\"\\u2603 \\u00e9\"").as_string(),
            v.as_string());
  // Escaped + raw forms normalize to identical serialized output.
  EXPECT_EQ(JsonValue::parse("\"\\u2603 \\u00e9\"").to_string(), text);
}

TEST(Json, RoundTripDeepStructure) {
  JsonValue root = JsonValue::object();
  JsonValue inner = JsonValue::array();
  for (int i = 0; i < 10; ++i) {
    JsonValue item = JsonValue::object();
    item["i"] = JsonValue(i);
    item["sq"] = JsonValue(i * i);
    inner.push_back(std::move(item));
  }
  root["items"] = std::move(inner);
  root["flag"] = JsonValue(false);
  const JsonValue reparsed = JsonValue::parse(root.to_string(2));
  EXPECT_EQ(reparsed, root);
}

// ---------------------------------------------------------------------
// Plan serialization
// ---------------------------------------------------------------------

TEST(Serialize, PlanRoundTrip) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3, 4}});
  const core::RecoveryPlan plan = core::run_pm(state);

  const JsonValue json = core::plan_to_json(plan);
  const core::RecoveryPlan back =
      core::plan_from_json(JsonValue::parse(json.to_string(2)));
  EXPECT_EQ(back.algorithm, plan.algorithm);
  EXPECT_EQ(back.mapping, plan.mapping);
  EXPECT_EQ(back.sdn_assignments, plan.sdn_assignments);
  EXPECT_EQ(back.whole_switch_control, plan.whole_switch_control);
  EXPECT_DOUBLE_EQ(back.middle_layer_ms, plan.middle_layer_ms);
  // The deserialized plan still validates against the failure state.
  EXPECT_TRUE(core::validate_plan(state, back).empty());
}

TEST(Serialize, PgPlanKeepsPerPairControllers) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3}});
  const core::RecoveryPlan plan = core::run_pg(state);
  const core::RecoveryPlan back = core::plan_from_json(
      JsonValue::parse(core::plan_to_json(plan).to_string()));
  EXPECT_EQ(back.assignment_controller, plan.assignment_controller);
}

TEST(Serialize, MalformedPlanRejected) {
  EXPECT_THROW(core::plan_from_json(JsonValue::parse("{}")),
               std::runtime_error);
  EXPECT_THROW(core::plan_from_json(JsonValue::parse(
                   R"({"algorithm": 7})")),
               std::runtime_error);
}

TEST(Serialize, MetricsExportCompletes) {
  const sdwan::Network net = core::make_att_network();
  const sdwan::FailureState state(net, {{3}});
  const core::RecoveryPlan plan = core::run_pm(state);
  const auto metrics = core::evaluate_plan(state, plan);
  const JsonValue json = core::case_report_to_json("(13)", plan, metrics);
  EXPECT_EQ(json.at("case").as_string(), "(13)");
  EXPECT_EQ(json.at("metrics").at("algorithm").as_string(), "PM");
  EXPECT_EQ(json.at("metrics").at("total_programmability").as_int(),
            metrics.total_programmability);
  // Parses back as valid JSON.
  EXPECT_NO_THROW(JsonValue::parse(json.to_string(2)));
}

}  // namespace
}  // namespace pm
