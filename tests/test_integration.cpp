// Cross-module integration tests on the full ATT evaluation scenario:
// the paper's qualitative claims, end-to-end, at the real problem size
// (Optimal excluded here for runtime; its equivalence is certified on
// small instances in test_core and exercised at scale by the benches).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "sdwan/dataplane.hpp"
#include "sim/control_plane.hpp"
#include "topo/att.hpp"

namespace pm::core {
namespace {

using sdwan::FailureScenario;
using sdwan::FailureState;
using sdwan::FlowId;
using sdwan::Network;
using sdwan::SwitchId;

const Network& att() {
  static const Network net = make_att_network();
  return net;
}

FailureScenario by_nodes(const Network& net, std::set<int> nodes) {
  FailureScenario sc;
  for (int j = 0; j < net.controller_count(); ++j) {
    if (nodes.contains(net.controller(j).location)) sc.failed.push_back(j);
  }
  return sc;
}

// ---------------------------------------------------------------------
// Scenario-level sanity (Sec. VI-A)
// ---------------------------------------------------------------------

TEST(AttScenario, SixHundredFlows) {
  EXPECT_EQ(att().flow_count(), 600);  // 25 * 24 directed pairs
  EXPECT_EQ(att().controller_count(), 6);
}

TEST(AttScenario, NormalLoadFitsCapacity) {
  for (int j = 0; j < att().controller_count(); ++j) {
    EXPECT_LE(att().normal_load(j), att().controller(j).capacity)
        << att().controller(j).name;
  }
}

TEST(AttScenario, Switch13IsTheHub) {
  int max_gamma = 0;
  SwitchId hub = -1;
  for (int s = 0; s < att().switch_count(); ++s) {
    if (att().flow_count_at(s) > max_gamma) {
      max_gamma = att().flow_count_at(s);
      hub = s;
    }
  }
  EXPECT_EQ(hub, 13);
}

TEST(AttScenario, HubExceedsEveryRestCapacityUnder1320) {
  // The pivotal property behind the paper's 315% headline (Sec. VI-C-2).
  const FailureState st(att(), by_nodes(att(), {13, 20}));
  for (sdwan::ControllerId j : st.active_controllers()) {
    EXPECT_GT(st.gamma(13), st.rest_capacity(j))
        << "switch 13 must not fit on " << att().controller(j).name;
  }
}

// ---------------------------------------------------------------------
// One-controller failures: Fig. 4's claims
// ---------------------------------------------------------------------

class OneFailure : public ::testing::TestWithParam<int> {};

TEST_P(OneFailure, AllPerFlowAlgorithmsRecoverEverything) {
  const FailureScenario sc{{GetParam()}};
  RunnerOptions opts;
  opts.run_optimal = false;
  const CaseResult r = run_case(att(), sc, opts);
  for (const auto& [name, v] : r.violations) {
    EXPECT_TRUE(v.empty()) << name << ": " << v.front();
  }
  // Fig. 4(c): under one failure there is ample capacity — PM and PG
  // recover 100% of recoverable flows with identical totals (Fig. 4(a,b)).
  EXPECT_DOUBLE_EQ(r.metrics.at("PM").recovered_flow_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.metrics.at("PG").recovered_flow_fraction, 1.0);
  EXPECT_EQ(r.metrics.at("PM").total_programmability,
            r.metrics.at("PG").total_programmability);
  // Fig. 4(d): PG pays the middle layer on every message.
  EXPECT_GT(r.metrics.at("PG").per_flow_overhead_ms,
            r.metrics.at("PM").per_flow_overhead_ms);
}

INSTANTIATE_TEST_SUITE_P(AllSix, OneFailure, ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// The (13, 20) headline case: Fig. 5's claims
// ---------------------------------------------------------------------

class Headline : public ::testing::Test {
 protected:
  static const CaseResult& result() {
    static const CaseResult r = [] {
      RunnerOptions opts;
      opts.run_optimal = false;
      return run_case(att(), by_nodes(att(), {13, 20}), opts);
    }();
    return r;
  }
};

TEST_F(Headline, RetroFlowStrandsTheHub) {
  const FailureState st(att(), by_nodes(att(), {13, 20}));
  const RecoveryPlan plan = run_retroflow(st);
  EXPECT_FALSE(plan.mapping.contains(13));
  EXPECT_LT(result().metrics.at("RetroFlow").recovered_flow_fraction, 1.0);
  EXPECT_EQ(result().metrics.at("RetroFlow").least_programmability, 0);
}

TEST_F(Headline, PmRecoversTheHubFineGrained) {
  const FailureState st(att(), by_nodes(att(), {13, 20}));
  const RecoveryPlan plan = run_pm(st);
  EXPECT_TRUE(plan.mapping.contains(13));
  // Fine granularity: PM controls only part of s13's flows there.
  std::size_t at_13 = 0;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    (void)flow;
    if (sw == 13) ++at_13;
  }
  EXPECT_GT(at_13, 0u);
  EXPECT_LT(at_13, static_cast<std::size_t>(st.gamma(13)));
}

TEST_F(Headline, PmDoublesRetroFlowTotalProgrammability) {
  const auto& m = result().metrics;
  EXPECT_GE(m.at("PM").total_programmability,
            2 * m.at("RetroFlow").total_programmability)
      << "the paper reports up to 315% for this case";
  EXPECT_DOUBLE_EQ(m.at("PM").recovered_flow_fraction, 1.0);
  EXPECT_GE(m.at("PM").least_programmability, 2);
}

TEST_F(Headline, BalancedProgrammability) {
  // Fig. 5(a): PM/PG keep min programmability at 2 while RetroFlow's is 0.
  const auto& m = result().metrics;
  EXPECT_GE(m.at("PM").least_programmability, 2);
  EXPECT_GE(m.at("PG").least_programmability, 2);
  EXPECT_EQ(m.at("RetroFlow").least_programmability, 0);
}

TEST_F(Headline, RetroFlowWastesControlResource) {
  // Fig. 5(e) reading per Sec. VI-C-2: RetroFlow "recovers a small number
  // of offline flows with much higher control resource" — whole-switch
  // adoption pays gamma_i units (including beta = 0 entries) per switch,
  // so its capacity cost per recovered flow far exceeds PM's.
  const auto& m = result().metrics;
  const auto per_flow = [](const RecoveryMetrics& x) {
    return x.used_control_resource /
           std::max<double>(1.0, static_cast<double>(x.recovered_flow_count));
  };
  EXPECT_GT(per_flow(m.at("RetroFlow")), 1.2 * per_flow(m.at("PM")));
}

// ---------------------------------------------------------------------
// Whole two-failure sweep: orderings that must hold everywhere
// ---------------------------------------------------------------------

TEST(TwoFailureSweep, OrderingsHoldInEveryCase) {
  RunnerOptions opts;
  opts.run_optimal = false;
  const auto results = run_failure_sweep(att(), 2, opts);
  ASSERT_EQ(results.size(), 15u);
  for (const auto& r : results) {
    const auto& m = r.metrics;
    for (const auto& [name, v] : r.violations) {
      EXPECT_TRUE(v.empty()) << r.label << "/" << name;
    }
    // PG relaxes PM's constraints; both dominate RetroFlow.
    EXPECT_GE(m.at("PG").total_programmability,
              m.at("PM").total_programmability)
        << r.label;
    EXPECT_GE(m.at("PM").total_programmability,
              m.at("RetroFlow").total_programmability)
        << r.label;
    EXPECT_GE(m.at("PM").least_programmability,
              m.at("RetroFlow").least_programmability)
        << r.label;
    EXPECT_GE(m.at("PM").recovered_flow_fraction,
              m.at("RetroFlow").recovered_flow_fraction)
        << r.label;
    // PG's overhead premium (middle layer) holds per case.
    EXPECT_GT(m.at("PG").per_flow_overhead_ms,
              m.at("PM").per_flow_overhead_ms)
        << r.label;
  }
}

// ---------------------------------------------------------------------
// Plan -> dataplane: recovered flows can actually be rerouted
// ---------------------------------------------------------------------

TEST(DataplaneIntegration, RecoveredFlowsForwardAndRerouteable) {
  const FailureState st(att(), by_nodes(att(), {13}));
  const RecoveryPlan plan = run_pm(st);

  // Build the hybrid data plane: every switch in hybrid mode with OSPF
  // legacy tables; recovered flows get explicit entries along their path.
  sdwan::Dataplane dp(att().topology(), sdwan::RoutingMode::kHybrid);
  std::set<FlowId> recovered;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    (void)sw;
    recovered.insert(flow);
  }
  for (FlowId l : recovered) {
    const auto& f = att().flow(l);
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i) {
      dp.at(f.path[i]).install({10, {f.src, f.dst}, f.path[i + 1]});
    }
  }
  // Every flow (recovered or legacy) must still be delivered.
  int checked = 0;
  for (const auto& f : att().flows()) {
    const auto trace = dp.trace(f.src, {f.src, f.dst});
    ASSERT_TRUE(trace.delivered)
        << "flow " << f.src << "->" << f.dst << ": "
        << trace.failure_reason;
    EXPECT_EQ(trace.hops, f.path);
    ++checked;
  }
  EXPECT_EQ(checked, 600);

  // A recovered flow can be rerouted at an SDN switch: pick one
  // assignment and divert to a different viable next hop.
  ASSERT_FALSE(plan.sdn_assignments.empty());
  bool rerouted = false;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    const auto& f = att().flow(flow);
    // Find an alternative next hop with a path to the destination that
    // avoids coming straight back.
    for (const auto& arc : att().topology().graph().neighbors(sw)) {
      // Skip the current next hop on the path.
      const auto it = std::find(f.path.begin(), f.path.end(), sw);
      ASSERT_NE(it, f.path.end());
      if (it + 1 != f.path.end() && arc.to == *(it + 1)) continue;
      // Route the diverted packet by legacy from there: it must reach
      // the destination (legacy tables are complete).
      dp.at(sw).install({20, {f.src, f.dst}, arc.to});
      const auto trace = dp.trace(f.src, {f.src, f.dst});
      if (trace.delivered) {
        rerouted = true;
        break;
      }
      dp.at(sw).remove({f.src, f.dst});
    }
    if (rerouted) break;
  }
  EXPECT_TRUE(rerouted) << "no recovered flow could change its path";
}

// ---------------------------------------------------------------------
// Plan -> temporal replay
// ---------------------------------------------------------------------

TEST(SimIntegration, FullRecoveryWithinASecondOfDetection) {
  const FailureState st(att(), by_nodes(att(), {13, 20}));
  const RecoveryPlan plan = run_pm(st);
  sim::ControlPlaneConfig cfg;
  cfg.plan_compute_ms = plan.solve_seconds * 1000.0;
  const auto timeline = sim::simulate_recovery(st, plan, cfg);
  // Heuristic computation is sub-ms and propagation is tens of ms; the
  // whole recovery must complete well within a second after detection.
  EXPECT_LT(timeline.completed_at - timeline.detected_at, 1000.0);
  EXPECT_EQ(timeline.flow_recovered_at.size(),
            evaluate_plan(st, plan).recovered_flow_count);
}

}  // namespace
}  // namespace pm::core
