#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/shortest_path.hpp"

#include "core/scenario.hpp"
#include "sdwan/dataplane.hpp"
#include "sdwan/failure.hpp"
#include "sdwan/hybrid_switch.hpp"
#include "sdwan/network.hpp"
#include "sdwan/ospf.hpp"
#include "topo/att.hpp"
#include "topo/generators.hpp"

namespace pm::sdwan {
namespace {

/// A 5-node topology mimicking the paper's Fig. 1 domain D2: a quad with a
/// chord, two controllers.
topo::Topology tiny_topology() {
  topo::Topology t("tiny");
  // Coordinates chosen so delays are small but distinct.
  t.add_node({"s0", 40.0, -100.0});
  t.add_node({"s1", 40.5, -100.0});
  t.add_node({"s2", 40.0, -99.0});
  t.add_node({"s3", 40.5, -99.0});
  t.add_node({"s4", 40.25, -98.5});
  t.add_link(0, 1);
  t.add_link(0, 2);
  t.add_link(1, 3);
  t.add_link(2, 3);
  t.add_link(2, 4);
  t.add_link(3, 4);
  return t;
}

Network tiny_network(double capacity = 100.0) {
  NetworkConfig cfg;
  cfg.controller_capacity = capacity;
  return Network(tiny_topology(), {{0, {0, 1}}, {4, {2, 3, 4}}}, cfg);
}

// ---------------------------------------------------------------------
// Network construction and invariants
// ---------------------------------------------------------------------

TEST(Network, RejectsBadDomains) {
  NetworkConfig cfg;
  // Switch in two domains.
  EXPECT_THROW(Network(tiny_topology(), {{0, {0, 1, 2}}, {4, {2, 3, 4}}},
                       cfg),
               std::invalid_argument);
  // Switch in no domain.
  EXPECT_THROW(Network(tiny_topology(), {{0, {0, 1}}, {4, {3, 4}}}, cfg),
               std::invalid_argument);
  // Controller outside its own domain.
  EXPECT_THROW(Network(tiny_topology(), {{0, {1, 2}}, {4, {0, 3, 4}}}, cfg),
               std::invalid_argument);
  // No domains at all.
  EXPECT_THROW(Network(tiny_topology(), {}, cfg), std::invalid_argument);
}

TEST(Network, RejectsDisconnectedTopology) {
  topo::Topology t;
  t.add_node({"a", 0, 0});
  t.add_node({"b", 1, 1});
  EXPECT_THROW(Network(std::move(t), {{0, {0, 1}}}, {}),
               std::invalid_argument);
}

TEST(Network, AllPairsFlows) {
  const Network net = tiny_network();
  EXPECT_EQ(net.flow_count(), 5 * 4);
  std::set<std::pair<SwitchId, SwitchId>> pairs;
  for (const Flow& f : net.flows()) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_EQ(f.path.front(), f.src);
    EXPECT_EQ(f.path.back(), f.dst);
    EXPECT_TRUE(pairs.insert({f.src, f.dst}).second);
    // Path edges must exist.
    for (std::size_t i = 1; i < f.path.size(); ++i) {
      EXPECT_TRUE(net.topology().graph().has_edge(f.path[i - 1], f.path[i]));
    }
  }
}

TEST(Network, GammaConsistency) {
  const Network net = tiny_network();
  // Sum of per-switch flow counts == sum of path node counts.
  int gamma_total = 0;
  for (int s = 0; s < net.switch_count(); ++s) {
    gamma_total += net.flow_count_at(s);
  }
  int path_nodes = 0;
  for (const Flow& f : net.flows()) {
    path_nodes += static_cast<int>(f.path.size());
  }
  EXPECT_EQ(gamma_total, path_nodes);
  // Every switch sees at least its own 2*(n-1) endpoint flows.
  for (int s = 0; s < net.switch_count(); ++s) {
    EXPECT_GE(net.flow_count_at(s), 2 * (net.switch_count() - 1));
  }
}

TEST(Network, ControllerBookkeeping) {
  const Network net = tiny_network(123.0);
  EXPECT_EQ(net.controller_count(), 2);
  EXPECT_EQ(net.controller(0).location, 0);
  EXPECT_EQ(net.controller(1).location, 4);
  EXPECT_EQ(net.controller(0).name, "C0");
  EXPECT_DOUBLE_EQ(net.controller(1).capacity, 123.0);
  EXPECT_EQ(net.controller_of(1), 0);
  EXPECT_EQ(net.controller_of(3), 1);
  EXPECT_THROW(net.controller(5), std::out_of_range);
}

TEST(Network, NormalLoadSumsDomainGammas) {
  const Network net = tiny_network();
  double expected = 0.0;
  for (SwitchId s : net.controller(0).domain) {
    expected += net.flow_count_at(s);
  }
  EXPECT_DOUBLE_EQ(net.normal_load(0), expected);
}

TEST(Network, DelayMatrixMatchesShortestPaths) {
  const Network net = tiny_network();
  // Controller 0 sits at node 0: delay from node 0 is 0.
  EXPECT_DOUBLE_EQ(net.delay_ms(0, 0), 0.0);
  // Delay is positive elsewhere and finite everywhere.
  for (int s = 0; s < net.switch_count(); ++s) {
    for (int j = 0; j < net.controller_count(); ++j) {
      const double d = net.delay_ms(s, j);
      EXPECT_GE(d, 0.0);
      EXPECT_TRUE(std::isfinite(d));
    }
  }
}

TEST(Network, DiversityAndBeta) {
  const Network net = tiny_network();
  for (const Flow& f : net.flows()) {
    // Destination never has forwarding diversity.
    EXPECT_EQ(net.diversity(f.id, f.dst), 0);
    EXPECT_FALSE(net.beta(f.id, f.dst));
    // Off-path switches have zero diversity.
    for (int s = 0; s < net.switch_count(); ++s) {
      const bool on_path =
          std::find(f.path.begin(), f.path.end(), s) != f.path.end();
      if (!on_path) {
        EXPECT_EQ(net.diversity(f.id, s), 0);
      }
    }
    // beta <=> diversity >= 2; programmable_switches consistent.
    std::int64_t max_pro = 0;
    for (SwitchId s : f.path) {
      if (net.beta(f.id, s)) {
        EXPECT_GE(net.diversity(f.id, s), 2);
        max_pro += net.diversity(f.id, s);
      }
    }
    EXPECT_EQ(net.max_programmability(f.id), max_pro);
    for (SwitchId s : net.programmable_switches(f.id)) {
      EXPECT_TRUE(net.beta(f.id, s));
    }
  }
}

// ---------------------------------------------------------------------
// Failure scenarios
// ---------------------------------------------------------------------

TEST(Failure, EnumerationCountsMatchPaper) {
  const auto net = core::make_att_network();
  EXPECT_EQ(enumerate_failures(net, 1).size(), 6u);    // Fig. 4
  EXPECT_EQ(enumerate_failures(net, 2).size(), 15u);   // Fig. 5
  EXPECT_EQ(enumerate_failures(net, 3).size(), 20u);   // Fig. 6
  EXPECT_EQ(enumerate_failures(net, 0).size(), 1u);
  EXPECT_EQ(enumerate_failures(net, 6).size(), 1u);
  EXPECT_THROW(enumerate_failures(net, 7), std::invalid_argument);
}

TEST(Failure, ScenariosAreDistinctAndSorted) {
  const auto net = core::make_att_network();
  const auto scenarios = enumerate_failures(net, 2);
  std::set<std::vector<ControllerId>> seen;
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.failed.size(), 2u);
    EXPECT_LT(s.failed[0], s.failed[1]);
    EXPECT_TRUE(seen.insert(s.failed).second);
  }
}

TEST(Failure, StateDerivesOfflineSets) {
  const Network net = tiny_network();
  FailureState st(net, {{0}});
  EXPECT_EQ(st.active_controllers(), std::vector<ControllerId>{1});
  EXPECT_EQ(st.offline_switches(), (std::vector<SwitchId>{0, 1}));
  EXPECT_TRUE(st.is_offline_switch(0));
  EXPECT_FALSE(st.is_offline_switch(3));
  EXPECT_FALSE(st.is_active_controller(0));
  EXPECT_TRUE(st.is_active_controller(1));
  // Offline flows: those traversing switch 0 or 1.
  for (FlowId l : st.offline_flows()) {
    const Flow& f = net.flow(l);
    const bool crosses =
        std::find(f.path.begin(), f.path.end(), 0) != f.path.end() ||
        std::find(f.path.begin(), f.path.end(), 1) != f.path.end();
    EXPECT_TRUE(crosses);
  }
}

TEST(Failure, RestCapacityClampedAndLabeled) {
  const Network net = tiny_network(10.0);  // capacity below normal load
  FailureState st(net, {{0}});
  EXPECT_DOUBLE_EQ(st.rest_capacity(1), 0.0);  // clamped at zero
  EXPECT_THROW(st.rest_capacity(0), std::invalid_argument);
  EXPECT_EQ(st.scenario().label(net), "(0)");
}

TEST(Failure, RejectsBadScenarios) {
  const Network net = tiny_network();
  EXPECT_THROW(FailureState(net, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(FailureState(net, {{7}}), std::invalid_argument);
  EXPECT_THROW(FailureState(net, {{0, 1}}), std::invalid_argument);  // all
}

TEST(Failure, RecoverableSubsetOfOffline) {
  const auto net = core::make_att_network();
  for (const auto& sc : enumerate_failures(net, 2)) {
    FailureState st(net, sc);
    std::set<FlowId> offline(st.offline_flows().begin(),
                             st.offline_flows().end());
    for (FlowId l : st.recoverable_flows()) {
      EXPECT_TRUE(offline.contains(l));
      EXPECT_FALSE(st.opportunities(l).empty());
      for (const auto& opp : st.opportunities(l)) {
        EXPECT_TRUE(st.is_offline_switch(opp.sw));
        EXPECT_GE(opp.p, 2);
        EXPECT_EQ(opp.p, net.diversity(l, opp.sw));
      }
    }
  }
}

TEST(Failure, ControllersByDelaySorted) {
  const auto net = core::make_att_network();
  FailureState st(net, {{3}});  // controller of node 13
  for (SwitchId s : st.offline_switches()) {
    const auto order = st.controllers_by_delay(s);
    EXPECT_EQ(order.size(), st.active_controllers().size());
    for (std::size_t k = 1; k < order.size(); ++k) {
      EXPECT_LE(net.delay_ms(s, order[k - 1]), net.delay_ms(s, order[k]));
    }
    EXPECT_EQ(order.front(), st.nearest_active_controller(s));
  }
}

TEST(Failure, IdealDelayMatchesDefinition) {
  const auto net = core::make_att_network();
  FailureState st(net, {{3, 4}});
  double expected = 0.0;
  for (SwitchId i : st.offline_switches()) {
    expected += st.gamma(i) *
                net.delay_ms(i, st.nearest_active_controller(i));
  }
  EXPECT_DOUBLE_EQ(st.ideal_total_delay(), expected);
}

TEST(Failure, TotalIterationsBoundsOfflinePathLength) {
  const auto net = core::make_att_network();
  FailureState st(net, {{3}});
  int expected = 0;
  for (FlowId l : st.offline_flows()) {
    int count = 0;
    for (SwitchId s : net.flow(l).path) {
      if (st.is_offline_switch(s)) ++count;
    }
    expected = std::max(expected, count);
  }
  EXPECT_EQ(st.max_offline_switches_on_path(), expected);
  EXPECT_GE(expected, 1);
}

// ---------------------------------------------------------------------
// OSPF legacy tables
// ---------------------------------------------------------------------

TEST(Ospf, NextHopsFollowShortestPaths) {
  const auto topo = tiny_topology();
  const auto tables = compute_legacy_tables(topo.graph());
  ASSERT_EQ(tables.size(), 5u);
  for (SwitchId s = 0; s < 5; ++s) {
    EXPECT_EQ(tables[static_cast<std::size_t>(s)].self(), s);
    EXPECT_EQ(tables[static_cast<std::size_t>(s)].next_hop(s), -1);
    for (SwitchId d = 0; d < 5; ++d) {
      if (d == s) continue;
      const auto path = graph::shortest_path(topo.graph(), s, d);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(tables[static_cast<std::size_t>(s)].next_hop(d), path[1]);
    }
  }
}

TEST(Ospf, SetRouteAndBounds) {
  const auto topo = tiny_topology();
  auto tables = compute_legacy_tables(topo.graph());
  tables[0].set_route(4, 1);
  EXPECT_EQ(tables[0].next_hop(4), 1);
  EXPECT_THROW(tables[0].next_hop(9), std::out_of_range);
  EXPECT_THROW(tables[0].set_route(-1, 0), std::out_of_range);
}

// ---------------------------------------------------------------------
// Hybrid switch pipeline (Fig. 2)
// ---------------------------------------------------------------------

class HybridSwitchTest : public ::testing::Test {
 protected:
  HybridSwitchTest()
      : sw_(2, RoutingMode::kHybrid,
            compute_legacy_tables(tiny_topology().graph())[2]) {}
  HybridSwitch sw_;
};

TEST_F(HybridSwitchTest, SdnModeDropsOnMiss) {
  sw_.set_mode(RoutingMode::kSdn);
  const auto r = sw_.lookup({0, 4});
  EXPECT_FALSE(r.next_hop.has_value());
  EXPECT_FALSE(r.matched_flow_table);
}

TEST_F(HybridSwitchTest, SdnModeUsesFlowTable) {
  sw_.set_mode(RoutingMode::kSdn);
  sw_.install({10, {0, 4}, 3});
  const auto r = sw_.lookup({0, 4});
  ASSERT_TRUE(r.next_hop.has_value());
  EXPECT_EQ(*r.next_hop, 3);
  EXPECT_TRUE(r.matched_flow_table);
}

TEST_F(HybridSwitchTest, LegacyModeIgnoresFlowTable) {
  sw_.set_mode(RoutingMode::kLegacy);
  sw_.install({10, {0, 4}, 3});
  const auto r = sw_.lookup({0, 4});
  ASSERT_TRUE(r.next_hop.has_value());
  EXPECT_EQ(*r.next_hop, 4);  // legacy shortest-path next hop 2 -> 4
  EXPECT_FALSE(r.matched_flow_table);
}

TEST_F(HybridSwitchTest, HybridFallsThroughOnMiss) {
  const auto r = sw_.lookup({0, 4});
  ASSERT_TRUE(r.next_hop.has_value());
  EXPECT_EQ(*r.next_hop, 4);
  EXPECT_FALSE(r.matched_flow_table);
  // After installing a specific entry the flow table wins.
  sw_.install({10, {0, 4}, 3});
  const auto r2 = sw_.lookup({0, 4});
  EXPECT_EQ(*r2.next_hop, 3);
  EXPECT_TRUE(r2.matched_flow_table);
}

TEST_F(HybridSwitchTest, PriorityAndInstallOrder) {
  sw_.install({5, {0, 4}, 1});
  sw_.install({10, {0, 4}, 3});
  EXPECT_EQ(*sw_.lookup({0, 4}).next_hop, 3);  // higher priority wins
  sw_.install({10, {0, 4}, 0});
  EXPECT_EQ(*sw_.lookup({0, 4}).next_hop, 3);  // first-installed wins tie
}

TEST_F(HybridSwitchTest, WildcardsMatch) {
  sw_.install({7, {kAnyField, 4}, 3});
  EXPECT_EQ(*sw_.lookup({1, 4}).next_hop, 3);
  EXPECT_EQ(*sw_.lookup({0, 4}).next_hop, 3);
  // Non-matching destination falls to legacy.
  const auto r = sw_.lookup({4, 0});
  EXPECT_FALSE(r.matched_flow_table);
}

TEST_F(HybridSwitchTest, RemoveEntries) {
  sw_.install({10, {0, 4}, 3});
  sw_.install({11, {0, 4}, 1});
  EXPECT_EQ(sw_.flow_table_size(), 2u);
  EXPECT_EQ(sw_.remove({0, 4}), 2u);
  EXPECT_EQ(sw_.flow_table_size(), 0u);
  EXPECT_FALSE(sw_.lookup({0, 4}).matched_flow_table);
}

// ---------------------------------------------------------------------
// Dataplane tracing
// ---------------------------------------------------------------------

TEST(Dataplane, LegacyForwardingFollowsOspf) {
  const auto topo = tiny_topology();
  Dataplane dp(topo, RoutingMode::kLegacy);
  for (int s = 0; s < 5; ++s) {
    for (int d = 0; d < 5; ++d) {
      if (s == d) continue;
      const auto trace = dp.trace(s, {s, d});
      EXPECT_TRUE(trace.delivered) << trace.failure_reason;
      EXPECT_EQ(trace.hops, graph::shortest_path(topo.graph(), s, d));
    }
  }
}

TEST(Dataplane, SdnRerouteViaFlowEntries) {
  const auto topo = tiny_topology();
  Dataplane dp(topo, RoutingMode::kHybrid);
  // Divert 0 -> 4 along 0-1-3-4 instead of the shortest 0-2-4.
  dp.at(0).install({10, {0, 4}, 1});
  dp.at(1).install({10, {0, 4}, 3});
  dp.at(3).install({10, {0, 4}, 4});
  const auto trace = dp.trace(0, {0, 4});
  ASSERT_TRUE(trace.delivered);
  EXPECT_EQ(trace.hops, (std::vector<SwitchId>{0, 1, 3, 4}));
}

TEST(Dataplane, DetectsDropsAndLoops) {
  const auto topo = tiny_topology();
  Dataplane dp(topo, RoutingMode::kSdn);  // empty tables: drop everywhere
  const auto trace = dp.trace(0, {0, 4});
  EXPECT_FALSE(trace.delivered);
  EXPECT_NE(trace.failure_reason.find("dropped"), std::string::npos);

  Dataplane loopy(topo, RoutingMode::kHybrid);
  loopy.at(0).install({10, {0, 4}, 1});
  loopy.at(1).install({10, {0, 4}, 0});
  const auto loop = loopy.trace(0, {0, 4});
  EXPECT_FALSE(loop.delivered);
  EXPECT_NE(loop.failure_reason.find("loop"), std::string::npos);
}

}  // namespace
}  // namespace pm::sdwan
