#include "svc/plan_cache.hpp"

namespace pm::svc {

PlanCache::PlanCache(std::size_t byte_budget, obs::MetricsRegistry* metrics)
    : byte_budget_(byte_budget),
      hits_(metrics != nullptr
                ? metrics->counter("svc_cache_hits_total",
                                   "plan cache lookups served from cache")
                : own_hits_),
      misses_(metrics != nullptr
                  ? metrics->counter("svc_cache_misses_total",
                                     "plan cache lookups that missed")
                  : own_misses_),
      evictions_(metrics != nullptr
                     ? metrics->counter("svc_cache_evictions_total",
                                        "entries evicted by the LRU budget")
                     : own_evictions_),
      oversize_(metrics != nullptr
                    ? metrics->counter(
                          "svc_cache_oversize_total",
                          "payloads larger than the whole cache budget")
                    : own_oversize_),
      bytes_gauge_(metrics != nullptr
                       ? metrics->gauge("svc_cache_bytes",
                                        "resident cache size in bytes")
                       : own_bytes_) {}

std::optional<std::string> PlanCache::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.inc();
  return it->second->second;
}

std::optional<std::string> PlanCache::peek(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.inc();
  return it->second->second;
}

void PlanCache::put(const std::string& key, std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cost(key, payload) > byte_budget_) {
    oversize_.inc();
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: recharge the (possibly different) payload size.
    bytes_ -= cost(key, it->second->second);
    it->second->second = std::move(payload);
    bytes_ += cost(key, it->second->second);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, std::move(payload));
    index_[key] = lru_.begin();
    bytes_ += cost(key, lru_.front().second);
  }
  evict_until_fits_locked();
  bytes_gauge_.set(static_cast<double>(bytes_));
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  bytes_gauge_.set(0.0);
}

std::size_t PlanCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t PlanCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void PlanCache::evict_until_fits_locked() {
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto& [key, payload] = lru_.back();
    bytes_ -= cost(key, payload);
    index_.erase(key);
    lru_.pop_back();
    evictions_.inc();
  }
}

}  // namespace pm::svc
