// JSONL-over-loopback-TCP front end of the recovery service.
//
// Threading model:
//   * an acceptor thread polls the listening socket (100 ms tick, so
//     stop() and SIGINT are honored promptly) and spawns one thread per
//     connection;
//   * connection threads read newline-delimited requests, answer
//     `health`/`metrics` inline, and push `solve` requests through
//     admission control into a bounded queue;
//   * one dispatcher thread pops queued requests in arrival order — up
//     to batch_max at a time — and runs them as a single
//     Engine::solve_batch, so concurrent clients fill the engine's
//     TaskPool instead of queueing behind one solve.
//
// Admission control contract (DESIGN.md "Recovery service"): a cache
// hit is answered inline on the connection thread before admission —
// warm requests never consume a queue slot, stay fast under backlog,
// and cannot be shed. A solve that needs compute and arrives while the
// queue holds max_queue requests is shed immediately with a structured
// `overloaded` error — the server never queues unboundedly and never
// blocks a client to create backpressure it cannot see. Deadlines are
// stamped at admission, so time spent queued counts against them; an
// expired request is answered `deadline_exceeded` without computing.
// Malformed lines are answered `bad_request` and the connection stays
// open — one bad client line never takes the server down.
//
// Shutdown: stop() (or run_until_shutdown() observing
// util::shutdown_requested()) closes the listening socket, completes
// every already-queued request, answers in-flight connections, then
// joins all threads — a graceful drain, not an abort.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "svc/engine.hpp"

namespace pm::svc {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  int port = 0;
  /// Bounded queue depth; a solve arriving on a full queue is shed with
  /// an `overloaded` error.
  int max_queue = 64;
  /// Max requests the dispatcher hands to one Engine::solve_batch.
  int batch_max = 16;
  /// Deadline applied to solve requests that carry none; <= 0 = none.
  double default_deadline_ms = 0.0;
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(Engine& engine, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1, listens, spawns the acceptor and dispatcher.
  /// Throws std::runtime_error when the socket cannot be set up.
  void start();

  /// The bound port (resolves config.port == 0 after start()).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Graceful drain; idempotent. Completes queued requests, then joins
  /// every thread.
  void stop();

  /// start() if needed, then block until stop() is called from another
  /// thread or util::shutdown_requested() turns true (SIGINT/SIGTERM).
  void run_until_shutdown();

 private:
  struct PendingSolve {
    SolveJob job;
    std::promise<SolveOutcome> promise;
  };
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptor_loop();
  void dispatcher_loop();
  void connection_loop(Connection* connection);
  /// Handles one request line; returns the response line (no newline).
  std::string handle_line(const std::string& line);
  std::string handle_solve(const Request& request);
  /// Joins connection threads that have finished (called on the
  /// acceptor's tick so idle servers do not accumulate dead threads).
  void reap_finished_connections();

  Engine& engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;

  std::thread acceptor_;
  std::thread dispatcher_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingSolve>> queue_;

  obs::Counter& requests_solve_;
  obs::Counter& requests_health_;
  obs::Counter& requests_metrics_;
  obs::Counter& bad_requests_;
  obs::Counter& shed_;
  obs::Gauge& queue_depth_;
  obs::Gauge& connections_gauge_;
};

}  // namespace pm::svc
