#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/log.hpp"
#include "util/shutdown.hpp"

namespace pm::svc {

namespace {

/// Hard cap on one request line; a client exceeding it is answered
/// bad_request and disconnected (it is not speaking the protocol).
constexpr std::size_t kMaxLineBytes = 1u << 20;

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string line) {
  line += '\n';
  return send_all(fd, line);
}

/// Splices the deterministic payload verbatim into the response line so
/// cached and recomputed answers stay byte-identical end to end.
std::string solve_response_line(const util::JsonValue& id,
                                const SolveOutcome& outcome) {
  if (!outcome.ok) {
    return error_response(id, outcome.error_code, outcome.error_message)
        .to_string(0);
  }
  util::JsonValue head = util::JsonValue::object();
  if (!id.is_null()) head["id"] = id;
  head["ok"] = util::JsonValue(true);
  head["cached"] = util::JsonValue(outcome.cache_hit);
  head["key"] = util::JsonValue(outcome.key);
  head["solve_ms"] = util::JsonValue(outcome.solve_ms);
  std::string line = head.to_string(0);
  line.pop_back();  // strip '}' to splice the result member in
  line += ",\"result\":";
  line += outcome.payload;
  line += '}';
  return line;
}

}  // namespace

Server::Server(Engine& engine, ServerConfig config)
    : engine_(engine),
      config_(config),
      requests_solve_(engine.metrics().counter(
          "svc_requests_total", "requests received by verb",
          {{"verb", "solve"}})),
      requests_health_(engine.metrics().counter(
          "svc_requests_total", "requests received by verb",
          {{"verb", "health"}})),
      requests_metrics_(engine.metrics().counter(
          "svc_requests_total", "requests received by verb",
          {{"verb", "metrics"}})),
      bad_requests_(engine.metrics().counter(
          "svc_bad_requests_total",
          "lines answered with a bad_request error")),
      shed_(engine.metrics().counter(
          "svc_shed_total",
          "solve requests shed by admission control (queue full)")),
      queue_depth_(engine.metrics().gauge("svc_queue_depth",
                                          "solve requests waiting")),
      connections_gauge_(engine.metrics().gauge("svc_connections",
                                                "open client connections")) {
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    throw std::runtime_error("svc::Server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error(
        "svc::Server: cannot listen on 127.0.0.1:" +
        std::to_string(config_.port) + " (" + std::strerror(errno) + ")");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  obs::log().info("svc: listening on 127.0.0.1:" + std::to_string(port_));
}

void Server::stop() {
  // Serialized: destructor, run_until_shutdown() and explicit callers
  // may all reach here; the first does the drain, the rest wait on the
  // mutex and find running_ false.
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!running_.load()) return;
  stopping_.store(true);
  // Stop accepting; the acceptor notices stopping_ on its next tick.
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock connection reads; their loops answer what they already hold
  // and exit.
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& c : connections_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& c : connections_) {
      if (c->thread.joinable()) c->thread.join();
    }
    connections_.clear();
  }
  // Dispatcher drains the remaining queue, then exits.
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  running_.store(false);
  obs::log().info("svc: server stopped");
}

void Server::run_until_shutdown() {
  if (!running_.load()) start();
  while (!stopping_.load() && !util::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop();
}

void Server::acceptor_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    reap_finished_connections();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
    connections_gauge_.set(static_cast<double>(connections_.size()));
  }
}

void Server::reap_finished_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  connections_gauge_.set(static_cast<double>(connections_.size()));
}

void Server::connection_loop(Connection* connection) {
  const int fd = connection->fd;
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!write_line(fd, handle_line(line))) {
        alive = false;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      bad_requests_.inc();
      write_line(fd, error_response(util::JsonValue(), kErrBadRequest,
                                    "request line exceeds 1 MiB")
                         .to_string(0));
      break;
    }
  }
  ::close(fd);
  connection->done.store(true);
}

std::string Server::handle_line(const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ProtocolError& e) {
    bad_requests_.inc();
    return error_response(util::JsonValue(), e.code(), e.what())
        .to_string(0);
  }

  switch (request.verb) {
    case Verb::kHealth: {
      requests_health_.inc();
      util::JsonValue head = util::JsonValue::object();
      if (!request.id.is_null()) head["id"] = request.id;
      head["ok"] = util::JsonValue(true);
      util::JsonValue result = util::JsonValue::object();
      result["status"] = util::JsonValue("ok");
      result["switches"] = util::JsonValue(engine_.network().switch_count());
      result["controllers"] =
          util::JsonValue(engine_.network().controller_count());
      result["flows"] = util::JsonValue(engine_.network().flow_count());
      result["ospf_tables"] = util::JsonValue(
          static_cast<std::int64_t>(engine_.legacy_tables().size()));
      result["diameter_hops"] = util::JsonValue(engine_.diameter_hops());
      result["cache_entries"] = util::JsonValue(
          static_cast<std::int64_t>(engine_.cache().entries()));
      result["cache_bytes"] = util::JsonValue(
          static_cast<std::int64_t>(engine_.cache().bytes()));
      {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        result["queue_depth"] =
            util::JsonValue(static_cast<std::int64_t>(queue_.size()));
      }
      head["result"] = std::move(result);
      return head.to_string(0);
    }
    case Verb::kMetrics: {
      requests_metrics_.inc();
      util::JsonValue head = util::JsonValue::object();
      if (!request.id.is_null()) head["id"] = request.id;
      head["ok"] = util::JsonValue(true);
      head["result"] = engine_.metrics().to_json();
      return head.to_string(0);
    }
    case Verb::kSolve:
      requests_solve_.inc();
      return handle_solve(request);
  }
  return error_response(request.id, kErrInternal, "unhandled verb")
      .to_string(0);
}

std::string Server::handle_solve(const Request& request) {
  // Fast path: cache hits are answered inline on the connection thread,
  // skipping the queue -> dispatcher -> pool round trip entirely. They
  // never consume a queue slot, so admission control and deadlines
  // govern only requests that actually compute.
  if (auto cached = engine_.try_cached(request.solve)) {
    return solve_response_line(request.id, *cached);
  }
  auto pending = std::make_unique<PendingSolve>();
  pending->job.params = request.solve;
  double deadline_ms = request.solve.deadline_ms;
  if (deadline_ms <= 0.0) deadline_ms = config_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    // Stamped at admission: queueing time counts against the budget.
    pending->job.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }
  std::future<SolveOutcome> future = pending->promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_.load()) {
      return error_response(request.id, kErrShuttingDown,
                            "server is shutting down")
          .to_string(0);
    }
    if (queue_.size() >= static_cast<std::size_t>(config_.max_queue)) {
      shed_.inc();
      return error_response(
                 request.id, kErrOverloaded,
                 "request queue full (" +
                     std::to_string(config_.max_queue) +
                     " pending); retry later")
          .to_string(0);
    }
    queue_.push_back(std::move(pending));
    queue_depth_.set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return solve_response_line(request.id, future.get());
}

void Server::dispatcher_loop() {
  while (true) {
    std::vector<std::unique_ptr<PendingSolve>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load();
      });
      if (queue_.empty() && stopping_.load()) return;
      const std::size_t n = std::min(
          queue_.size(), static_cast<std::size_t>(config_.batch_max));
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_.set(static_cast<double>(queue_.size()));
    }
    std::vector<SolveJob> jobs;
    jobs.reserve(batch.size());
    for (const auto& p : batch) jobs.push_back(p->job);
    const std::vector<SolveOutcome> outcomes = engine_.solve_batch(jobs);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i]->promise.set_value(outcomes[i]);
    }
  }
}

}  // namespace pm::svc
