// Thin blocking client for the JSONL recovery service: one TCP
// connection, one request line out, one response line back. Used by
// examples/pm_client, bench/service_load and the in-process server
// tests; anything that can write a line of JSON to a socket (netcat,
// a five-line Python script) speaks the same protocol.
#pragma once

#include <string>

#include "util/json.hpp"

namespace pm::svc {

class Client {
 public:
  /// Connects immediately. Throws std::runtime_error when the server is
  /// unreachable.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one raw line (newline appended) and returns the raw response
  /// line (newline stripped). Throws std::runtime_error when the
  /// connection drops mid-exchange.
  std::string roundtrip_line(const std::string& line);

  /// Serializes `request` compactly, exchanges it, parses the response.
  util::JsonValue request(const util::JsonValue& request_doc);

  /// Convenience verbs.
  util::JsonValue health();
  util::JsonValue metrics();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Bytes past the last returned line.
};

}  // namespace pm::svc
