#include "svc/protocol.hpp"

#include <algorithm>
#include <cmath>

namespace pm::svc {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError(kErrBadRequest, message);
}

std::vector<sdwan::ControllerId> parse_failed(const util::JsonValue& doc) {
  if (!doc.contains("failed")) return {};
  const util::JsonValue& arr = doc.at("failed");
  if (arr.type() != util::JsonValue::Type::kArray) {
    bad("'failed' must be an array of controller ids");
  }
  std::vector<sdwan::ControllerId> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const util::JsonValue& v = arr.at(i);
    if (v.type() != util::JsonValue::Type::kNumber ||
        v.as_number() != std::floor(v.as_number())) {
      bad("'failed' entries must be integer controller ids");
    }
    out.push_back(static_cast<sdwan::ControllerId>(v.as_int()));
  }
  return out;
}

}  // namespace

const std::vector<std::string>& known_algorithms() {
  static const std::vector<std::string> algorithms = {"pm", "naive",
                                                      "retroflow", "pg"};
  return algorithms;
}

Request parse_request(const std::string& line) {
  util::JsonValue doc;
  try {
    doc = util::JsonValue::parse(line);
  } catch (const util::JsonError& e) {
    bad(std::string("malformed JSON: ") + e.what());
  }
  if (doc.type() != util::JsonValue::Type::kObject) {
    bad("request must be a JSON object");
  }

  Request request;
  if (doc.contains("id")) request.id = doc.at("id");

  if (!doc.contains("verb")) bad("missing 'verb'");
  const util::JsonValue& verb = doc.at("verb");
  if (verb.type() != util::JsonValue::Type::kString) {
    bad("'verb' must be a string");
  }
  try {
    if (verb.as_string() == "health") {
      request.verb = Verb::kHealth;
    } else if (verb.as_string() == "metrics") {
      request.verb = Verb::kMetrics;
    } else if (verb.as_string() == "solve") {
      request.verb = Verb::kSolve;
      SolveParams& p = request.solve;
      p.failed = parse_failed(doc);
      if (doc.contains("algorithm")) {
        p.algorithm = doc.at("algorithm").as_string();
      }
      const auto& known = known_algorithms();
      if (std::find(known.begin(), known.end(), p.algorithm) ==
          known.end()) {
        bad("unknown algorithm '" + p.algorithm + "'");
      }
      if (doc.contains("retroflow_candidates")) {
        p.retroflow_candidates =
            static_cast<int>(doc.at("retroflow_candidates").as_int());
        if (p.retroflow_candidates < 1) {
          bad("'retroflow_candidates' must be >= 1");
        }
      }
      if (doc.contains("deadline_ms")) {
        p.deadline_ms = doc.at("deadline_ms").as_number();
      }
    } else {
      bad("unknown verb '" + verb.as_string() + "'");
    }
  } catch (const std::logic_error& e) {
    // Wrong field type or missing key inside a known verb.
    bad(std::string("invalid request field: ") + e.what());
  }
  return request;
}

std::string canonical_key(const SolveParams& params) {
  std::vector<sdwan::ControllerId> failed = params.failed;
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());

  std::string key = "algo=" + params.algorithm + "|failed=";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(failed[i]);
  }
  // Only knobs that change the resulting plan take part in the address.
  if (params.algorithm == "retroflow") {
    key += "|rfc=" + std::to_string(params.retroflow_candidates);
  }
  return key;
}

util::JsonValue error_response(const util::JsonValue& id,
                               const std::string& code,
                               const std::string& message) {
  util::JsonValue out = util::JsonValue::object();
  if (!id.is_null()) out["id"] = id;
  out["ok"] = util::JsonValue(false);
  util::JsonValue error = util::JsonValue::object();
  error["code"] = util::JsonValue(code);
  error["message"] = util::JsonValue(message);
  out["error"] = std::move(error);
  return out;
}

}  // namespace pm::svc
