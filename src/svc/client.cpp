#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace pm::svc {

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("svc::Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("svc::Client: bad host address '" + host +
                             "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("svc::Client: cannot connect to " + host +
                             ":" + std::to_string(port) + " (" + error +
                             ")");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip_line(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("svc::Client: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error(
          "svc::Client: connection closed before a response line");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::JsonValue Client::request(const util::JsonValue& request_doc) {
  return util::JsonValue::parse(
      roundtrip_line(request_doc.to_string(0)));
}

util::JsonValue Client::health() {
  util::JsonValue req = util::JsonValue::object();
  req["verb"] = util::JsonValue("health");
  return request(req);
}

util::JsonValue Client::metrics() {
  util::JsonValue req = util::JsonValue::object();
  req["verb"] = util::JsonValue("metrics");
  return request(req);
}

}  // namespace pm::svc
