// Content-addressed cache of serialized recovery plans.
//
// Keys are the canonical request strings of protocol.hpp
// (canonical_key), values the deterministic JSON payloads the Engine
// serializes — the same bytes that go onto the wire and that a repeat
// request must reproduce exactly. Because payloads are deterministic
// (timing fields are zeroed before serialization), a hit is
// indistinguishable from a recompute except for latency.
//
// Eviction is strict LRU under a byte budget: every entry is charged
// key.size() + payload.size(), inserts evict least-recently-used
// entries until the total fits, and an entry larger than the whole
// budget is simply not stored (counted, never cached). Hit/miss/
// eviction counters and the resident-bytes gauge live in the
// obs::MetricsRegistry handed to the constructor, so the service's
// `metrics` verb exposes cache effectiveness without extra plumbing.
//
// Thread-safe: one mutex around the index; pool workers solving a batch
// probe and fill it concurrently.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"

namespace pm::svc {

class PlanCache {
 public:
  /// `metrics` may be null (tests); counters then stay internal-only.
  explicit PlanCache(std::size_t byte_budget,
                     obs::MetricsRegistry* metrics = nullptr);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the payload and refreshes recency, or nullopt on a miss.
  std::optional<std::string> get(const std::string& key);

  /// Like get(), but a miss is not counted — for front-end fast paths
  /// that fall back to the full solve path (which counts the miss when
  /// it probes again). A present entry still counts as a hit and is
  /// refreshed.
  std::optional<std::string> peek(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting LRU entries until the
  /// budget holds. Oversized payloads are dropped, not cached.
  void put(const std::string& key, std::string payload);

  /// Drops every entry (keeps the counters).
  void clear();

  std::size_t byte_budget() const { return byte_budget_; }
  std::size_t bytes() const;
  std::size_t entries() const;
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t evictions() const { return evictions_.value(); }

 private:
  /// Charged size of one entry.
  static std::size_t cost(const std::string& key,
                          const std::string& payload) {
    return key.size() + payload.size();
  }
  void evict_until_fits_locked();

  const std::size_t byte_budget_;

  mutable std::mutex mutex_;
  /// MRU at the front; each node owns (key, payload).
  std::list<std::pair<std::string, std::string>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  std::size_t bytes_ = 0;

  /// Own the counters when no registry is provided, else borrow its.
  obs::Counter own_hits_, own_misses_, own_evictions_, own_oversize_;
  obs::Gauge own_bytes_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& oversize_;
  obs::Gauge& bytes_gauge_;
};

}  // namespace pm::svc
