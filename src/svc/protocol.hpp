// Wire protocol of the recovery service: JSONL over loopback TCP.
//
// One request per line, one response per line, both complete JSON
// objects. Requests name a verb:
//
//   {"verb":"solve","failed":[3,4],"algorithm":"pm","deadline_ms":250,
//    "id":"req-1"}
//   {"verb":"metrics"}
//   {"verb":"health"}
//
// Responses echo the request id (when one was given) and either carry a
// result or a structured error:
//
//   {"id":"req-1","ok":true,"cached":false,"key":"...","solve_ms":3.1,
//    "result":{...}}
//   {"id":"req-1","ok":false,
//    "error":{"code":"overloaded","message":"..."}}
//
// Error codes are part of the admission-control contract (DESIGN.md
// "Recovery service"): `bad_request` (malformed line, unknown verb or
// algorithm, invalid failure set), `overloaded` (the bounded request
// queue is full — resend later), `deadline_exceeded` (the request's
// deadline passed before a worker picked it up), `shutting_down`
// (server stopped while the request was queued), `internal` (bug guard;
// the failing request is reported, the server stays up).
#pragma once

#include <string>
#include <vector>

#include "sdwan/types.hpp"
#include "util/json.hpp"

namespace pm::svc {

inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal";

/// Malformed request; `code` is one of the wire error codes above.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

enum class Verb { kSolve, kMetrics, kHealth };

/// Parameters of a solve request. `failed` is kept as received;
/// canonical_key() (and the Engine) sort and dedup it, so permuted
/// failure sets are one cache entry.
struct SolveParams {
  std::vector<sdwan::ControllerId> failed;
  std::string algorithm = "pm";  ///< pm | naive | retroflow | pg.
  int retroflow_candidates = 2;  ///< RetroFlow's mapping-candidate knob.
  /// Wall-clock budget from admission to dispatch; <= 0 means none.
  double deadline_ms = 0.0;
};

struct Request {
  Verb verb = Verb::kHealth;
  /// Echoed verbatim in the response; null when the request had none.
  util::JsonValue id;
  SolveParams solve;  ///< Only meaningful when verb == kSolve.
};

/// Algorithm names a solve request may carry, in wire spelling.
const std::vector<std::string>& known_algorithms();

/// Parses one request line. Throws ProtocolError (code bad_request) on
/// malformed JSON, a non-object document, an unknown verb or algorithm,
/// or a failure set that is not an array of integers.
Request parse_request(const std::string& line);

/// Canonical content-address of a solve request: the sorted, deduped
/// failure set plus every knob that changes the plan, rendered as a
/// stable string (e.g. "algo=pm|failed=3,4|rfc=2"). Requests that differ
/// only in failure-set order or duplicates share a key; deadline_ms is
/// excluded — it shapes scheduling, never the plan.
std::string canonical_key(const SolveParams& params);

/// {"id":...,"ok":false,"error":{"code":...,"message":...}} — `id` is
/// omitted when null.
util::JsonValue error_response(const util::JsonValue& id,
                               const std::string& code,
                               const std::string& message);

}  // namespace pm::svc
