// The resident recovery engine behind the service.
//
// Every batch binary in this repo rebuilds the network model — all-pairs
// flows, OSPF tables, beta/p programmability — before answering a single
// "what if these controllers die" question. The Engine inverts that
// shape for online serving: it pays model construction once, keeps the
// sdwan::Network, the legacy (OSPF) routing tables and a
// graph::DiversityCache resident, and then answers a stream of solve
// requests over that state:
//
//   request --> canonical key --> PlanCache hit?  --> cached payload
//                               \-> FailureState LRU --> algorithm -->
//                                   deterministic payload --> cache fill
//
// Determinism: timing fields (solve_seconds) are zeroed before
// serialization, so a given canonical request always produces the same
// payload bytes — which is what lets a cache hit be byte-identical to a
// recompute, and what the CI smoke and bench/service_load assert.
//
// Concurrency: solve() is thread-safe (the Network and every cached
// FailureState are immutable after construction; the plan/state caches
// lock internally), and solve_batch() fans a batch across the Engine's
// util::TaskPool — the server's dispatcher pops queued requests and
// dispatches them as one batch, so service throughput scales with
// --jobs like the offline sweeps do.
#pragma once

#include <chrono>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/diversity_cache.hpp"
#include "obs/metrics.hpp"
#include "sdwan/failure.hpp"
#include "sdwan/network.hpp"
#include "sdwan/ospf.hpp"
#include "svc/plan_cache.hpp"
#include "svc/protocol.hpp"
#include "util/task_pool.hpp"

namespace pm::svc {

struct EngineConfig {
  /// TaskPool size for solve_batch (1 = serial, zero extra threads).
  int jobs = 1;
  /// PlanCache byte budget.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// FailureState LRU depth — overlapping requests (same failure set,
  /// different algorithm) reuse the derived state instead of rebuilding
  /// offline sets, residual capacities and opportunity lists.
  std::size_t state_cache_entries = 16;
};

/// Outcome of one solve. On success `payload` holds the deterministic
/// case report ({"case","plan","metrics"}) as compact JSON; on failure
/// `error_code` is one of the wire error codes of protocol.hpp.
struct SolveOutcome {
  bool ok = false;
  std::string error_code;
  std::string error_message;
  bool cache_hit = false;
  std::string key;
  std::string payload;
  double solve_ms = 0.0;  ///< Wall clock spent inside the engine.
};

/// A solve with its scheduling deadline (absolute; nullopt = none).
/// The server stamps the deadline at admission so queueing time counts
/// against it.
struct SolveJob {
  SolveParams params;
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

class Engine {
 public:
  explicit Engine(sdwan::Network network, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const sdwan::Network& network() const { return network_; }
  const EngineConfig& config() const { return config_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  PlanCache& cache() { return cache_; }

  /// The resident legacy routing substrate (one table per switch).
  const std::vector<sdwan::LegacyRoutingTable>& legacy_tables() const {
    return legacy_tables_;
  }
  /// Topology diameter in hops, answered from the resident
  /// graph::DiversityCache (health-verb payload).
  int diameter_hops() const { return diameter_hops_; }

  /// Thread-safe. Checks the deadline, probes the plan cache, else
  /// computes: canonicalized failure set -> FailureState (LRU) ->
  /// algorithm -> deterministic payload -> cache fill.
  SolveOutcome solve(const SolveJob& job);

  /// Cache-only probe: returns the completed outcome when the canonical
  /// request is resident (cache_hit = true), nullopt otherwise. A miss
  /// is not counted — the caller falls back to solve(), which counts
  /// it. This is the server's fast path: hits are answered inline on
  /// the connection thread and never consume a queue slot, so admission
  /// control and deadlines govern only requests that actually compute.
  /// Invalid failure sets simply miss (they are never cached) and get
  /// their bad_request verdict from the fallback solve().
  std::optional<SolveOutcome> try_cached(const SolveParams& params);

  /// Convenience: derives the absolute deadline from params.deadline_ms
  /// relative to now (the in-process path; the server stamps admission
  /// time itself).
  SolveOutcome solve(const SolveParams& params);

  /// Fans the batch across the Engine's TaskPool; results in submission
  /// order. Exactly equivalent to calling solve() per job.
  std::vector<SolveOutcome> solve_batch(const std::vector<SolveJob>& jobs);

 private:
  /// Sorted/deduped failure set, validated against the network. Throws
  /// ProtocolError(bad_request) on out-of-range ids or when no
  /// controller survives.
  std::vector<sdwan::ControllerId> canonical_failed(
      const std::vector<sdwan::ControllerId>& failed) const;

  std::shared_ptr<const sdwan::FailureState> state_for(
      const std::vector<sdwan::ControllerId>& failed);

  sdwan::Network network_;
  EngineConfig config_;
  obs::MetricsRegistry metrics_;
  PlanCache cache_;
  util::TaskPool pool_;
  std::vector<sdwan::LegacyRoutingTable> legacy_tables_;
  graph::DiversityCache diversity_cache_;
  int diameter_hops_ = 0;

  std::mutex state_mutex_;
  /// MRU-first LRU of derived failure states, keyed by the canonical
  /// failed-set rendering ("3,4").
  std::list<std::pair<std::string,
                      std::shared_ptr<const sdwan::FailureState>>>
      state_lru_;

  obs::Counter& solves_;
  obs::Counter& errors_;
  obs::Counter& deadline_expired_;
  obs::Counter& state_hits_;
  obs::Counter& state_misses_;
};

}  // namespace pm::svc
