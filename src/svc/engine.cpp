#include "svc/engine.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "core/naive.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "core/serialize.hpp"

namespace pm::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string failed_set_key(const std::vector<sdwan::ControllerId>& failed) {
  std::string key;
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(failed[i]);
  }
  return key;
}

core::RecoveryPlan run_algorithm(const SolveParams& params,
                                 const sdwan::FailureState& state) {
  if (params.algorithm == "pm") return core::run_pm(state);
  if (params.algorithm == "naive") return core::run_naive_nearest(state);
  if (params.algorithm == "retroflow") {
    core::RetroFlowOptions options;
    options.controller_candidates = params.retroflow_candidates;
    return core::run_retroflow(state, options);
  }
  if (params.algorithm == "pg") return core::run_pg(state);
  throw ProtocolError(kErrBadRequest,
                      "unknown algorithm '" + params.algorithm + "'");
}

}  // namespace

Engine::Engine(sdwan::Network network, EngineConfig config)
    : network_(std::move(network)),
      config_(config),
      cache_(config.cache_bytes, &metrics_),
      pool_(config.jobs),
      legacy_tables_(
          sdwan::compute_legacy_tables(network_.topology().graph())),
      diversity_cache_(network_.config().path_count),
      solves_(metrics_.counter("svc_solves_total",
                               "solve requests computed (cache misses)")),
      errors_(metrics_.counter("svc_errors_total",
                               "solve requests that returned an error")),
      deadline_expired_(
          metrics_.counter("svc_deadline_expired_total",
                           "requests whose deadline passed in the queue")),
      state_hits_(metrics_.counter(
          "svc_state_cache_hits_total",
          "failure states reused across overlapping requests")),
      state_misses_(metrics_.counter("svc_state_cache_misses_total",
                                     "failure states built from scratch")) {
  // Warm the resident diversity cache with every per-destination
  // distance vector and record the diameter for the health payload.
  const graph::Graph& g = network_.topology().graph();
  for (graph::NodeId dst = 0; dst < g.node_count(); ++dst) {
    for (const int hops : diversity_cache_.distances(g, dst)) {
      diameter_hops_ = std::max(diameter_hops_, hops);
    }
  }
}

std::vector<sdwan::ControllerId> Engine::canonical_failed(
    const std::vector<sdwan::ControllerId>& failed) const {
  std::vector<sdwan::ControllerId> out = failed;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (const sdwan::ControllerId j : out) {
    if (j < 0 || j >= network_.controller_count()) {
      throw ProtocolError(kErrBadRequest,
                          "controller id " + std::to_string(j) +
                              " out of range [0, " +
                              std::to_string(network_.controller_count()) +
                              ")");
    }
  }
  if (static_cast<int>(out.size()) >= network_.controller_count()) {
    throw ProtocolError(kErrBadRequest,
                        "failure set leaves no surviving controller");
  }
  return out;
}

std::shared_ptr<const sdwan::FailureState> Engine::state_for(
    const std::vector<sdwan::ControllerId>& failed) {
  const std::string key = failed_set_key(failed);
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    for (auto it = state_lru_.begin(); it != state_lru_.end(); ++it) {
      if (it->first == key) {
        state_lru_.splice(state_lru_.begin(), state_lru_, it);
        state_hits_.inc();
        return state_lru_.front().second;
      }
    }
  }
  // Build outside the lock — construction walks every flow and is the
  // expensive part overlapping requests want to share. Two threads may
  // race on the same key; both states are identical, last insert wins.
  state_misses_.inc();
  sdwan::FailureScenario scenario;
  scenario.failed = failed;
  auto state = std::make_shared<const sdwan::FailureState>(
      network_, std::move(scenario));
  const std::lock_guard<std::mutex> lock(state_mutex_);
  state_lru_.emplace_front(key, state);
  while (state_lru_.size() > config_.state_cache_entries) {
    state_lru_.pop_back();
  }
  return state;
}

SolveOutcome Engine::solve(const SolveJob& job) {
  const Clock::time_point start = Clock::now();
  SolveOutcome outcome;
  outcome.key = canonical_key(job.params);

  if (job.deadline && Clock::now() > *job.deadline) {
    deadline_expired_.inc();
    errors_.inc();
    outcome.error_code = kErrDeadlineExceeded;
    outcome.error_message = "deadline passed before dispatch";
    outcome.solve_ms = ms_since(start);
    return outcome;
  }

  if (auto cached = cache_.get(outcome.key)) {
    outcome.ok = true;
    outcome.cache_hit = true;
    outcome.payload = std::move(*cached);
    outcome.solve_ms = ms_since(start);
    return outcome;
  }

  try {
    const auto failed = canonical_failed(job.params.failed);
    const auto state = state_for(failed);

    core::RecoveryPlan plan = run_algorithm(job.params, *state);
    core::RecoveryMetrics metrics = core::evaluate_plan(*state, plan);
    // Zero the wall-clock fields: the payload must be a pure function of
    // the canonical request so cached and recomputed responses are
    // byte-identical. Timing is reported out-of-band in solve_ms.
    plan.solve_seconds = 0.0;
    metrics.solve_seconds = 0.0;

    outcome.payload =
        core::case_report_to_json(state->scenario().label(network_), plan,
                                  metrics)
            .to_string(0);
    outcome.ok = true;
    cache_.put(outcome.key, outcome.payload);
    solves_.inc();
  } catch (const ProtocolError& e) {
    errors_.inc();
    outcome.error_code = e.code();
    outcome.error_message = e.what();
  } catch (const std::exception& e) {
    errors_.inc();
    outcome.error_code = kErrInternal;
    outcome.error_message = e.what();
  }
  outcome.solve_ms = ms_since(start);
  return outcome;
}

std::optional<SolveOutcome> Engine::try_cached(const SolveParams& params) {
  const Clock::time_point start = Clock::now();
  SolveOutcome outcome;
  outcome.key = canonical_key(params);
  auto cached = cache_.peek(outcome.key);
  if (!cached) return std::nullopt;
  outcome.ok = true;
  outcome.cache_hit = true;
  outcome.payload = std::move(*cached);
  outcome.solve_ms = ms_since(start);
  return outcome;
}

SolveOutcome Engine::solve(const SolveParams& params) {
  SolveJob job;
  job.params = params;
  if (params.deadline_ms > 0.0) {
    job.deadline = Clock::now() + std::chrono::duration_cast<
                                      Clock::duration>(
                                      std::chrono::duration<double,
                                                            std::milli>(
                                          params.deadline_ms));
  }
  return solve(job);
}

std::vector<SolveOutcome> Engine::solve_batch(
    const std::vector<SolveJob>& jobs) {
  return pool_.parallel_map(
      jobs, [&](std::size_t, const SolveJob& job) { return solve(job); });
}

}  // namespace pm::svc
