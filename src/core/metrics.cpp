#include "core/metrics.hpp"

#include <algorithm>
#include <limits>

namespace pm::core {

RecoveryMetrics evaluate_plan(const sdwan::FailureState& state,
                              const RecoveryPlan& plan) {
  RecoveryMetrics m;
  m.algorithm = plan.algorithm;
  m.solve_seconds = plan.solve_seconds;
  m.offline_switch_count = state.offline_switches().size();
  m.recoverable_flow_count = state.recoverable_flows().size();
  m.ideal_total_delay_ms = state.ideal_total_delay();

  const auto h = flow_programmability(state, plan);
  std::vector<double> recovered_h;
  recovered_h.reserve(h.size());
  m.least_programmability = std::numeric_limits<std::int64_t>::max();
  for (sdwan::FlowId l : state.recoverable_flows()) {
    const auto it = h.find(l);
    const std::int64_t hl = it == h.end() ? 0 : it->second;
    m.least_programmability = std::min(m.least_programmability, hl);
    if (hl > 0) {
      recovered_h.push_back(static_cast<double>(hl));
      m.total_programmability += hl;
      ++m.recovered_flow_count;
    }
  }
  if (state.recoverable_flows().empty()) m.least_programmability = 0;
  m.programmability = util::box_stats(recovered_h);
  m.recovered_flow_fraction =
      m.recoverable_flow_count == 0
          ? 1.0
          : static_cast<double>(m.recovered_flow_count) /
                static_cast<double>(m.recoverable_flow_count);

  // Switches in actual use (prune semantics: mapped + >= 1 assignment).
  std::set<sdwan::SwitchId> used;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    (void)flow;
    used.insert(sw);
  }
  m.recovered_switch_count = used.size();

  for (sdwan::ControllerId j : state.active_controllers()) {
    m.available_control_resource += state.rest_capacity(j);
  }
  m.controller_load = controller_loads(state, plan);
  for (const auto& [j, load] : m.controller_load) {
    (void)j;
    m.used_control_resource += load;
  }
  m.total_overhead_ms = total_control_overhead_ms(state, plan);
  m.per_flow_overhead_ms = m.recovered_flow_count == 0
                               ? 0.0
                               : m.total_overhead_ms /
                                     static_cast<double>(
                                         m.recovered_flow_count);
  return m;
}

}  // namespace pm::core
