// RetroFlow baseline [6] (IWQoS'19) — switch-level recovery with hybrid
// *switch* modes, reimplemented from the descriptions in Secs. II-B-1 and
// VI-B-2 of the PM paper.
//
// RetroFlow partitions the offline switches into a recovered set (whole
// switch remapped to an active controller, every flow there in SDN mode,
// costing the switch's full gamma_i) and a legacy set (pure OSPF, no
// controller, no programmability). The coarse granularity is the point of
// comparison: a switch whose gamma_i exceeds every controller's residual
// capacity — like the ATT hub s13 — cannot be recovered at all, and any
// flow that traverses only legacy switches stays offline.
//
// Mapping policy: each offline switch is considered for its
// `controller_candidates` nearest active controllers (RetroFlow minimizes
// control-traffic overhead, so it does not shop a switch around the whole
// control plane) and stays in legacy mode when none has gamma_i units
// free. The default of 2 candidates reproduces the paper's behaviour on
// both ends: under single failures everything is recovered (Fig. 4),
// while under multiple failures the coarse per-switch cost stops matching
// the nearby controllers' residual capacity and large residual capacity
// is left stranded (Figs. 5(e)/6(e)) — most prominently hub switch 13 in
// the (13, 20) case. The ablation bench sweeps the candidate count to
// show how much of PM's advantage is fine granularity vs. merely smarter
// packing.
#pragma once

#include "core/recovery_plan.hpp"

namespace pm::core {

struct RetroFlowOptions {
  /// How many nearest controllers a switch may be mapped to (>= 1).
  int controller_candidates = 2;
};

RecoveryPlan run_retroflow(const sdwan::FailureState& state,
                           RetroFlowOptions options = {});

}  // namespace pm::core
