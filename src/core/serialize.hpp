// JSON serialization of recovery plans and metrics — lets operators
// persist a computed plan, audit or diff it, and replay it later (the
// examples expose this via --json flags).
#pragma once

#include "core/metrics.hpp"
#include "core/recovery_plan.hpp"
#include "util/json.hpp"

namespace pm::core {

util::JsonValue plan_to_json(const RecoveryPlan& plan);

/// Rebuilds a plan from JSON. Throws std::runtime_error on malformed or
/// incomplete documents (missing keys, wrong types).
RecoveryPlan plan_from_json(const util::JsonValue& json);

util::JsonValue metrics_to_json(const RecoveryMetrics& metrics);

/// One self-contained case report: scenario label, plan and metrics.
util::JsonValue case_report_to_json(const std::string& label,
                                    const RecoveryPlan& plan,
                                    const RecoveryMetrics& metrics);

}  // namespace pm::core
