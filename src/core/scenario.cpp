#include "core/scenario.hpp"

#include "topo/att.hpp"

namespace pm::core {

sdwan::Network make_att_network(sdwan::NetworkConfig config) {
  if (config.controller_capacity <= 0.0) {
    config.controller_capacity = kAttControllerCapacity;
  }
  return sdwan::Network(topo::att_topology(), topo::att_domains(), config);
}

}  // namespace pm::core
