// The "Optimal" comparison algorithm (Sec. VI-B-1): the FMSSM IP solved by
// a MILP engine — the paper uses GUROBI; this repository uses its own
// branch-and-bound (DESIGN.md, substitution 2).
//
// The solver is warm-started with PM's heuristic solution when that
// solution fits the delay budget (standard MIP practice; guarantees
// Optimal >= PM whenever the budget admits PM's plan). A time or node
// limit may stop the search before optimality is proven — the returned
// plan then carries proven_optimal = false, mirroring the paper's Fig. 6
// where Optimal produces results in only 12 of 20 three-failure cases.
#pragma once

#include <optional>

#include "core/fmssm.hpp"
#include "core/recovery_plan.hpp"
#include "milp/branch_bound.hpp"

namespace pm::core {

struct OptimalOptions {
  FmssmOptions fmssm;
  double time_limit_seconds = 60.0;
  long node_limit = 10000;
  /// Warm-start with PM's plan (dropped automatically if it violates the
  /// delay budget).
  bool warm_start_with_pm = true;
};

struct OptimalOutcome {
  /// Present when the solver found any incumbent.
  std::optional<RecoveryPlan> plan;
  milp::MipStatus status = milp::MipStatus::kNoSolutionFound;
  double best_bound = 0.0;
  long nodes_explored = 0;
  double seconds = 0.0;
};

OptimalOutcome run_optimal(const sdwan::FailureState& state,
                           OptimalOptions options = {});

}  // namespace pm::core
