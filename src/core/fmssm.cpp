#include "core/fmssm.hpp"

#include <algorithm>
#include <string>

namespace pm::core {

namespace {
using sdwan::ControllerId;
using sdwan::FlowId;
using sdwan::SwitchId;

std::string id(SwitchId i) { return std::to_string(i); }
}  // namespace

FmssmProblem build_fmssm(const sdwan::FailureState& state,
                         FmssmOptions options) {
  FmssmProblem p;
  const sdwan::Network& net = state.network();

  // Automatic two-stage-equivalent lambda.
  if (options.lambda <= 0.0) {
    double total_max = 0.0;
    for (FlowId l : state.recoverable_flows()) {
      for (const auto& opp : state.opportunities(l)) {
        total_max += static_cast<double>(opp.p);
      }
    }
    options.lambda = 1.0 / (1.0 + total_max);
  }
  p.lambda = options.lambda;

  p.model.set_objective_sense(milp::Objective::kMaximize);
  // r is bounded by the least flow's best achievable programmability —
  // a valid tightening, and it keeps the model bounded when no flow is
  // recoverable at all (r is then forced to 0).
  double r_cap = 0.0;
  bool first_flow = true;
  for (FlowId l : state.recoverable_flows()) {
    double flow_max = 0.0;
    for (const auto& opp : state.opportunities(l)) {
      flow_max += static_cast<double>(opp.p);
    }
    r_cap = first_flow ? flow_max : std::min(r_cap, flow_max);
    first_flow = false;
  }
  p.r_var = p.model.add_continuous("r", 0.0, r_cap, 1.0);

  // x_ij.
  for (SwitchId i : state.offline_switches()) {
    for (ControllerId j : state.active_controllers()) {
      p.x_var[{i, j}] = p.model.add_binary(
          "x_" + id(i) + "_" + id(j), 0.0);
    }
  }

  // w_ij^l for beta = 1 pairs, with objective lambda * p.
  // Also collect the per-switch opportunity-flow lists for (9').
  std::map<SwitchId, std::vector<std::pair<FlowId, std::int64_t>>> at_switch;
  for (SwitchId i : state.offline_switches()) at_switch[i] = {};
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      at_switch[opp.sw].emplace_back(l, opp.p);
      for (ControllerId j : state.active_controllers()) {
        p.w_var[{opp.sw, j, l}] = p.model.add_binary(
            "w_" + id(opp.sw) + "_" + id(j) + "_" + id(l),
            options.lambda * static_cast<double>(opp.p));
      }
    }
  }

  // (2): each switch to at most one controller.
  for (SwitchId i : state.offline_switches()) {
    std::vector<milp::Term> terms;
    for (ControllerId j : state.active_controllers()) {
      terms.push_back({p.x_var.at({i, j}), 1.0});
    }
    p.model.add_constraint("map_" + id(i), std::move(terms),
                           milp::Sense::kLe, 1.0);
  }

  // (9') aggregated activation: sum_l w_ij^l - B_i x_ij <= 0.
  for (const auto& [i, flows] : at_switch) {
    if (flows.empty()) continue;
    for (ControllerId j : state.active_controllers()) {
      std::vector<milp::Term> terms;
      for (const auto& [l, pr] : flows) {
        (void)pr;
        terms.push_back({p.w_var.at({i, j, l}), 1.0});
      }
      terms.push_back(
          {p.x_var.at({i, j}), -static_cast<double>(flows.size())});
      p.model.add_constraint("act_" + id(i) + "_" + id(j),
                             std::move(terms), milp::Sense::kLe, 0.0);
    }
  }

  // pair: sum_j w_ij^l <= 1.
  for (const auto& [i, flows] : at_switch) {
    for (const auto& [l, pr] : flows) {
      (void)pr;
      std::vector<milp::Term> terms;
      for (ControllerId j : state.active_controllers()) {
        terms.push_back({p.w_var.at({i, j, l}), 1.0});
      }
      p.model.add_constraint("pair_" + id(i) + "_" + id(l),
                             std::move(terms), milp::Sense::kLe, 1.0);
    }
  }

  // (12): controller capacity.
  for (ControllerId j : state.active_controllers()) {
    std::vector<milp::Term> terms;
    for (const auto& [key, var] : p.w_var) {
      if (std::get<1>(key) == j) terms.push_back({var, 1.0});
    }
    p.model.add_constraint("cap_" + net.controller(j).name,
                           std::move(terms), milp::Sense::kLe,
                           state.rest_capacity(j));
  }

  // (13): per-flow programmability >= r.
  for (FlowId l : state.recoverable_flows()) {
    std::vector<milp::Term> terms;
    for (const auto& opp : state.opportunities(l)) {
      for (ControllerId j : state.active_controllers()) {
        terms.push_back(
            {p.w_var.at({opp.sw, j, l}), static_cast<double>(opp.p)});
      }
    }
    terms.push_back({p.r_var, -1.0});
    p.model.add_constraint("pro_" + id(l), std::move(terms),
                           milp::Sense::kGe, 0.0);
  }

  // (14): delay budget.
  if (options.delay_constraint) {
    std::vector<milp::Term> terms;
    for (const auto& [key, var] : p.w_var) {
      const auto& [i, j, l] = key;
      (void)l;
      terms.push_back({var, net.delay_ms(i, j)});
    }
    p.model.add_constraint("delay", std::move(terms), milp::Sense::kLe,
                           state.ideal_total_delay());
  }

  return p;
}

RecoveryPlan FmssmProblem::decode(const std::vector<double>& solution) const {
  RecoveryPlan plan;
  plan.algorithm = "Optimal";
  for (const auto& [key, var] : x_var) {
    if (solution[static_cast<std::size_t>(var)] > 0.5) {
      plan.mapping[key.first] = key.second;
    }
  }
  for (const auto& [key, var] : w_var) {
    if (solution[static_cast<std::size_t>(var)] > 0.5) {
      plan.sdn_assignments.insert({std::get<0>(key), std::get<2>(key)});
    }
  }
  prune_unused_mappings(plan);
  return plan;
}

std::vector<double> FmssmProblem::encode(const sdwan::FailureState& state,
                                         const RecoveryPlan& plan) const {
  std::vector<double> x(static_cast<std::size_t>(model.variable_count()),
                        0.0);
  for (const auto& [sw, ctrl] : plan.mapping) {
    const auto it = x_var.find({sw, ctrl});
    if (it != x_var.end()) x[static_cast<std::size_t>(it->second)] = 1.0;
  }
  std::int64_t min_h = 0;
  const auto h = flow_programmability(state, plan);
  bool first = true;
  for (FlowId l : state.recoverable_flows()) {
    const auto it = h.find(l);
    const std::int64_t hl = it == h.end() ? 0 : it->second;
    min_h = first ? hl : std::min(min_h, hl);
    first = false;
  }
  x[static_cast<std::size_t>(r_var)] = static_cast<double>(min_h);
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    const ControllerId j = plan.controller_of_assignment(sw, flow);
    const auto it = w_var.find({sw, j, flow});
    if (it != w_var.end()) x[static_cast<std::size_t>(it->second)] = 1.0;
  }
  return x;
}

}  // namespace pm::core
