#include "core/naive.hpp"

#include <chrono>

namespace pm::core {

RecoveryPlan run_naive_nearest(const sdwan::FailureState& state) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryPlan plan;
  plan.algorithm = "NaiveNearest";
  plan.whole_switch_control = true;

  for (sdwan::SwitchId s : state.offline_switches()) {
    plan.mapping[s] = state.nearest_active_controller(s);
  }
  for (sdwan::FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      plan.sdn_assignments.insert({opp.sw, l});
    }
  }
  // Note: no prune — the naive takeover adopts every offline switch,
  // including ones with nothing recoverable (that is the point).
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace pm::core
