// NaiveNearest — the default OpenFlow failover strawman (Sec. II-B-1):
// every offline switch is adopted, whole-switch, by its nearest active
// controller, with NO capacity check. This is what a plain master/slave
// controller list does, and it is the behaviour whose overloads the paper
// cites as the trigger of cascading controller failures [8].
//
// The returned plan deliberately may violate the capacity constraint —
// validate_plan() reports it, and sim::simulate_cascade() uses it to
// show the cascade PM avoids.
#pragma once

#include "core/recovery_plan.hpp"

namespace pm::core {

RecoveryPlan run_naive_nearest(const sdwan::FailureState& state);

}  // namespace pm::core
