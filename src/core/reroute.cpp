#include "core/reroute.hpp"

#include <algorithm>
#include <set>

#include "graph/shortest_path.hpp"

namespace pm::core {

namespace {
using sdwan::FlowId;
using sdwan::LinkId;
using sdwan::SwitchId;
}  // namespace

std::vector<SwitchId> reroutable_switches(const sdwan::FailureState& state,
                                          const RecoveryPlan& plan,
                                          FlowId flow) {
  const sdwan::Network& net = state.network();
  std::vector<SwitchId> out;
  const auto& f = net.flow(flow);
  for (SwitchId s : f.path) {
    if (s == f.dst) continue;
    if (net.diversity(flow, s) < 2) continue;  // no real choice there
    if (state.is_offline_switch(s)) {
      if (plan.sdn_assignments.contains({s, flow})) out.push_back(s);
    } else {
      out.push_back(s);  // its domain controller is alive
    }
  }
  return out;
}

std::vector<std::vector<SwitchId>> candidate_paths(const sdwan::Network& net,
                                                   FlowId flow,
                                                   SwitchId at) {
  const auto& f = net.flow(flow);
  const auto it = std::find(f.path.begin(), f.path.end(), at);
  if (it == f.path.end() || at == f.dst) return {};
  const std::vector<SwitchId> prefix(f.path.begin(), it + 1);
  std::set<SwitchId> seen(prefix.begin(), prefix.end());

  std::vector<std::vector<SwitchId>> out;
  for (const auto& arc : net.topology().graph().neighbors(at)) {
    // Next hop + OSPF tail (the deterministic shortest path).
    const auto tail = graph::shortest_path(net.topology().graph(), arc.to,
                                           f.dst);
    if (tail.empty()) continue;
    // Loop-free against the prefix and within itself (shortest paths are
    // simple; just check the prefix).
    bool clean = true;
    for (SwitchId s : tail) {
      if (seen.contains(s)) {
        clean = false;
        break;
      }
    }
    if (!clean) continue;
    std::vector<SwitchId> path = prefix;
    path.insert(path.end(), tail.begin(), tail.end());
    if (path != f.path) out.push_back(std::move(path));
  }
  return out;
}

RerouteResult minimize_congestion(const sdwan::FailureState& state,
                                  const RecoveryPlan& plan,
                                  const sdwan::TrafficMatrix& tm,
                                  const RerouteOptions& options) {
  const sdwan::Network& net = state.network();
  RerouteResult result;

  auto loads = sdwan::compute_link_loads(net, tm,
                                         options.link_capacity_mbps);
  result.initial_mlu = loads.max_utilization;

  // Current path of each flow (default unless moved).
  std::map<FlowId, std::vector<SwitchId>> current;

  auto path_of = [&](FlowId l) -> const std::vector<SwitchId>& {
    const auto it = current.find(l);
    return it == current.end() ? net.flow(l).path : it->second;
  };

  auto add_path = [&](const std::vector<SwitchId>& path, double rate,
                      std::map<LinkId, double>& load) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      load.at(sdwan::make_link(path[i - 1], path[i])) += rate;
    }
  };

  // Lexicographic congestion score: primary = MLU, secondary = mean of
  // squared utilizations. The secondary term lets the greedy keep making
  // progress across MLU plateaus (several links tied at the top), which a
  // plain max-only objective stalls on.
  struct Score {
    double mlu = 0.0;
    double sum_sq = 0.0;
    bool better_than(const Score& o, double min_gain) const {
      if (mlu < o.mlu - min_gain) return true;
      if (mlu > o.mlu + min_gain) return false;
      return sum_sq < o.sum_sq - 1e-12;
    }
  };
  auto score_of = [&](const std::map<LinkId, double>& load) {
    Score s;
    for (const auto& [link, l] : load) {
      (void)link;
      const double u = l / options.link_capacity_mbps;
      s.mlu = std::max(s.mlu, u);
      s.sum_sq += u * u;
    }
    return s;
  };

  // Precompute reroutable switches per flow once (plan is fixed).
  std::map<FlowId, std::vector<SwitchId>> reroute_points;
  for (const auto& f : net.flows()) {
    if (tm.of(f.id) <= 0.0) continue;
    auto pts = reroutable_switches(state, plan, f.id);
    if (!pts.empty()) reroute_points[f.id] = std::move(pts);
  }

  Score score = score_of(loads.load_mbps);
  for (int move = 0; move < options.max_moves; ++move) {
    // Find the busiest link.
    LinkId busiest{-1, -1};
    double top = 0.0;
    for (const auto& [link, l] : loads.load_mbps) {
      if (l > top) {
        top = l;
        busiest = link;
      }
    }
    if (busiest.first < 0) break;

    // Try to move one flow off that link.
    Score best_score = score;
    bool found = false;
    FlowId best_flow = -1;
    std::vector<SwitchId> best_path;
    std::map<LinkId, double> best_loads;

    for (const auto& [l, points] : reroute_points) {
      // One move per flow: candidate tails are derived from the flow's
      // original prefix, so a second move would discard the first.
      if (current.contains(l)) continue;
      const auto& path = path_of(l);
      // Does the flow cross the busiest link?
      bool crosses = false;
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (sdwan::make_link(path[i - 1], path[i]) == busiest) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      const double rate = tm.of(l);
      for (SwitchId at : points) {
        // Reroute point must still be on the *current* path.
        if (std::find(path.begin(), path.end(), at) == path.end()) continue;
        for (auto& candidate : candidate_paths(net, l, at)) {
          // Tentative loads: remove old, add new.
          std::map<LinkId, double> tentative = loads.load_mbps;
          for (std::size_t i = 1; i < path.size(); ++i) {
            tentative.at(sdwan::make_link(path[i - 1], path[i])) -= rate;
          }
          add_path(candidate, rate, tentative);
          const Score new_score = score_of(tentative);
          if (new_score.better_than(best_score, options.min_gain)) {
            best_score = new_score;
            found = true;
            best_flow = l;
            best_path = candidate;
            best_loads = std::move(tentative);
          }
        }
      }
    }
    if (!found) break;  // no improving move
    loads.load_mbps = std::move(best_loads);
    current[best_flow] = best_path;
    result.new_paths[best_flow] = std::move(best_path);
    score = best_score;
    ++result.moves;
  }

  result.final_mlu = score.mlu;
  return result;
}

}  // namespace pm::core
