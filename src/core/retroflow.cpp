#include "core/retroflow.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <vector>

namespace pm::core {

namespace {
using sdwan::ControllerId;
using sdwan::FlowId;
using sdwan::SwitchId;
}  // namespace

RecoveryPlan run_retroflow(const sdwan::FailureState& state,
                           RetroFlowOptions options) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryPlan plan;
  plan.algorithm = "RetroFlow";
  plan.whole_switch_control = true;

  // Programmability each switch would recover if remapped wholesale.
  std::map<SwitchId, std::int64_t> switch_value;
  std::map<SwitchId, std::vector<FlowId>> switch_flows;
  for (SwitchId s : state.offline_switches()) {
    switch_value[s] = 0;
    switch_flows[s] = {};
  }
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      switch_value[opp.sw] += opp.p;
      switch_flows[opp.sw].push_back(l);
    }
  }

  std::map<ControllerId, double> rest;
  for (ControllerId j : state.active_controllers()) {
    rest[j] = state.rest_capacity(j);
  }

  // Switches in ascending id (deterministic); each may go only to its
  // nearest `controller_candidates` controllers.
  const int candidates = std::max(1, options.controller_candidates);
  for (SwitchId s : state.offline_switches()) {
    if (switch_value.at(s) == 0) continue;  // nothing to recover there
    const double cost = static_cast<double>(state.gamma(s));
    ControllerId chosen = -1;
    const auto by_delay = state.controllers_by_delay(s);
    const int tries =
        std::min<int>(candidates, static_cast<int>(by_delay.size()));
    for (int k = 0; k < tries; ++k) {
      if (rest.at(by_delay[static_cast<std::size_t>(k)]) >= cost) {
        chosen = by_delay[static_cast<std::size_t>(k)];
        break;
      }
    }
    if (chosen < 0) continue;  // stays in legacy mode — unrecovered
    rest.at(chosen) -= cost;
    plan.mapping[s] = chosen;
    // Whole-switch SDN mode: every programmable flow there is recovered.
    for (FlowId l : switch_flows.at(s)) {
      plan.sdn_assignments.insert({s, l});
    }
  }

  prune_unused_mappings(plan);
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace pm::core
