#include "core/pm_algorithm.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "obs/profile.hpp"

namespace pm::core {

namespace {

using sdwan::ControllerId;
using sdwan::FlowId;
using sdwan::SwitchId;

/// Dense working state of Algorithm 1. Switch, controller and flow ids are
/// small dense integers, so every map the balancing loop used to consult is
/// a vector indexed by id (or by offline-switch slot): the inner sweeps
/// touch contiguous memory and never pay a tree lookup.
struct WorkingState {
  /// slot_of[i] = position of offline switch i in offline_switches(),
  /// -1 for online switches.
  std::vector<int> slot_of;
  /// Flows with beta = 1 at each offline switch (by slot), with the
  /// programmability gained there. Ascending flow id (recoverable_flows()
  /// order), which makes seed adoption a binary search.
  std::vector<std::vector<std::pair<FlowId, std::int64_t>>> by_switch;
  /// assigned[slot][k] = 1 iff by_switch[slot][k] is already in SDN mode
  /// (mirrors plan.sdn_assignments for O(1) membership).
  std::vector<std::vector<char>> assigned;
  /// Residual capacity per controller id (active entries only are read).
  std::vector<double> rest;
  /// H per flow id; valid only where recoverable[l] != 0.
  std::vector<char> recoverable;
  std::vector<std::int64_t> h;
  /// Controller each offline switch is mapped to so far; -1 = unmapped.
  /// Mirrors plan.mapping.
  std::vector<ControllerId> mapped_to;
};

WorkingState build_working_state(const sdwan::FailureState& state) {
  const sdwan::Network& net = state.network();
  WorkingState w;
  const auto& offline = state.offline_switches();
  w.slot_of.assign(static_cast<std::size_t>(net.switch_count()), -1);
  for (std::size_t k = 0; k < offline.size(); ++k) {
    w.slot_of[static_cast<std::size_t>(offline[k])] = static_cast<int>(k);
  }
  w.by_switch.resize(offline.size());
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      const int slot = w.slot_of[static_cast<std::size_t>(opp.sw)];
      w.by_switch[static_cast<std::size_t>(slot)].emplace_back(l, opp.p);
    }
  }
  w.assigned.resize(offline.size());
  for (std::size_t k = 0; k < offline.size(); ++k) {
    w.assigned[k].assign(w.by_switch[k].size(), 0);
  }
  w.rest.assign(static_cast<std::size_t>(net.controller_count()), 0.0);
  for (ControllerId j : state.active_controllers()) {
    w.rest[static_cast<std::size_t>(j)] = state.rest_capacity(j);
  }
  w.recoverable.assign(static_cast<std::size_t>(net.flow_count()), 0);
  w.h.assign(static_cast<std::size_t>(net.flow_count()), 0);
  for (FlowId l : state.recoverable_flows()) {
    w.recoverable[static_cast<std::size_t>(l)] = 1;
  }
  w.mapped_to.assign(static_cast<std::size_t>(net.switch_count()), -1);
  return w;
}

}  // namespace

RecoveryPlan run_pm(const sdwan::FailureState& state, PmOptions options) {
  OBS_SPAN("pm.run");
  const auto start = std::chrono::steady_clock::now();
  RecoveryPlan plan;
  plan.algorithm = "PM";

  WorkingState w = build_working_state(state);
  const auto& recoverable_flows = state.recoverable_flows();

  const int total_iterations =
      options.total_iterations > 0 ? options.total_iterations
                                   : state.max_offline_switches_on_path();

  // Incremental mode: adopt the still-valid parts of a previous plan
  // before the balancing loop (the loop then treats the adopted switches
  // as already mapped, exactly like its own line-18 path).
  if (options.seed != nullptr) {
    for (const auto& [sw, ctrl] : options.seed->mapping) {
      if (state.is_offline_switch(sw) && state.is_active_controller(ctrl)) {
        plan.mapping[sw] = ctrl;
        w.mapped_to[static_cast<std::size_t>(sw)] = ctrl;
      }
    }
    for (const auto& [sw, flow] : options.seed->sdn_assignments) {
      const ControllerId j =
          (sw >= 0 && sw < state.network().switch_count())
              ? w.mapped_to[static_cast<std::size_t>(sw)]
              : plan.controller_of(sw);
      if (j < 0) continue;
      if (flow < 0 || flow >= state.network().flow_count() ||
          !w.recoverable[static_cast<std::size_t>(flow)]) {
        continue;
      }
      // by_switch rows are ascending in flow id, so the old linear
      // find_if is a binary search.
      const auto slot = static_cast<std::size_t>(
          w.slot_of[static_cast<std::size_t>(sw)]);
      auto& flows = w.by_switch[slot];
      const auto it = std::lower_bound(
          flows.begin(), flows.end(), flow,
          [](const auto& fl, FlowId f) { return fl.first < f; });
      if (it == flows.end() || it->first != flow ||
          w.rest[static_cast<std::size_t>(j)] < 1.0) {
        continue;
      }
      w.rest[static_cast<std::size_t>(j)] -= 1.0;
      w.h[static_cast<std::size_t>(flow)] += it->second;
      w.assigned[slot][static_cast<std::size_t>(it - flows.begin())] = 1;
      plan.sdn_assignments.insert({sw, flow});
    }
  }

  // Line 1: X = Y = empty, S* = S, sigma = 0, test_count = 0.
  std::vector<SwitchId> untested = state.offline_switches();
  std::int64_t sigma = 0;
  int test_count = 0;

  auto restart_sweep = [&] {
    untested = state.offline_switches();
    ++test_count;
    // sigma = min(H) — the water level rises to the new minimum.
    std::int64_t min_h = std::numeric_limits<std::int64_t>::max();
    for (FlowId l : recoverable_flows) {
      min_h = std::min(min_h, w.h[static_cast<std::size_t>(l)]);
    }
    if (!recoverable_flows.empty()) sigma = min_h;
  };

  // Lines 2-40: the balancing loop.
  {
    OBS_SPAN("pm.balancing");
    while (test_count < total_iterations && !recoverable_flows.empty()) {
      // Lines 5-15: find the switch with the most least-programmability
      // flows. `untested` is kept ascending, so ties pick the lowest id.
      std::size_t delta = 0;
      SwitchId i0 = -1;
      for (SwitchId s : untested) {
        const auto& flows =
            w.by_switch[static_cast<std::size_t>(
                w.slot_of[static_cast<std::size_t>(s)])];
        std::size_t count = 0;
        for (const auto& [l, p] : flows) {
          (void)p;
          if (w.h[static_cast<std::size_t>(l)] == sigma) ++count;
        }
        if (count > delta) {
          delta = count;
          i0 = s;
          if (!options.greedy_switch_selection) break;  // first viable switch
        }
      }
      if (i0 < 0) {
        // No untested switch hosts a least-programmability flow: nothing in
        // this sweep can raise the minimum, so start the next sweep.
        restart_sweep();
        continue;
      }

      // Lines 17-28: map switch i0 to a controller j0.
      ControllerId j0 = w.mapped_to[static_cast<std::size_t>(i0)];
      if (j0 < 0) {
        for (ControllerId j : state.controllers_by_delay(i0)) {
          if (w.rest[static_cast<std::size_t>(j)] >=
              static_cast<double>(state.gamma(i0))) {
            j0 = j;
            break;  // nearest capable controller
          }
        }
        if (j0 < 0) {
          // Line 26: fall back to the controller with maximum residual
          // capacity.
          double best = -1.0;
          for (ControllerId j : state.active_controllers()) {
            if (w.rest[static_cast<std::size_t>(j)] > best) {
              best = w.rest[static_cast<std::size_t>(j)];
              j0 = j;
            }
          }
        }
        plan.mapping[i0] = j0;  // line 29: X <- X + (i0, j0)
        w.mapped_to[static_cast<std::size_t>(i0)] = j0;
      }
      std::erase(untested, i0);  // line 29: S* <- S* \ s_i0

      // Lines 31-36: put least-programmability flows at i0 into SDN mode.
      const auto slot = static_cast<std::size_t>(
          w.slot_of[static_cast<std::size_t>(i0)]);
      const auto& flows = w.by_switch[slot];
      auto& flags = w.assigned[slot];
      for (std::size_t k = 0; k < flows.size(); ++k) {
        const auto& [l0, p] = flows[k];
        // An assignment costs one whole control unit, so a fractional
        // residual below 1 cannot host it.
        if (w.h[static_cast<std::size_t>(l0)] <= sigma && !flags[k] &&
            w.rest[static_cast<std::size_t>(j0)] >= 1.0) {
          w.rest[static_cast<std::size_t>(j0)] -= 1.0;
          w.h[static_cast<std::size_t>(l0)] += p;
          flags[k] = 1;
          plan.sdn_assignments.insert({i0, l0});
        }
      }

      // Lines 37-39: sweep finished — raise the water level.
      if (untested.empty()) restart_sweep();
    }
  }

  // Lines 42-50: utilization pass — spend leftover capacity.
  if (!options.skip_utilization_pass) {
    OBS_SPAN("pm.utilization");
    // offline_switches() ascends, so switches are visited in the same
    // order the map-keyed working state used.
    const auto& offline = state.offline_switches();
    for (std::size_t slot = 0; slot < offline.size(); ++slot) {
      const SwitchId i0 = offline[slot];
      const ControllerId j0 = w.mapped_to[static_cast<std::size_t>(i0)];
      if (j0 < 0) continue;
      const auto& flows = w.by_switch[slot];
      auto& flags = w.assigned[slot];
      for (std::size_t k = 0; k < flows.size(); ++k) {
        if (w.rest[static_cast<std::size_t>(j0)] >= 1.0 && !flags[k]) {
          w.rest[static_cast<std::size_t>(j0)] -= 1.0;
          flags[k] = 1;
          plan.sdn_assignments.insert({i0, flows[k].first});
        }
      }
    }
  }

  prune_unused_mappings(plan);
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace pm::core
