#include "core/pm_algorithm.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/profile.hpp"

namespace pm::core {

namespace {

using sdwan::ControllerId;
using sdwan::FlowId;
using sdwan::SwitchId;

/// Flows with beta = 1 at each offline switch, precomputed once: the inner
/// loops of Algorithm 1 iterate "l in {beta_i^l = 1}" repeatedly.
std::map<SwitchId, std::vector<std::pair<FlowId, std::int64_t>>>
flows_by_switch(const sdwan::FailureState& state) {
  std::map<SwitchId, std::vector<std::pair<FlowId, std::int64_t>>> by_switch;
  for (SwitchId s : state.offline_switches()) by_switch[s] = {};
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      by_switch[opp.sw].emplace_back(l, opp.p);
    }
  }
  return by_switch;
}

}  // namespace

RecoveryPlan run_pm(const sdwan::FailureState& state, PmOptions options) {
  OBS_SPAN("pm.run");
  const auto start = std::chrono::steady_clock::now();
  RecoveryPlan plan;
  plan.algorithm = "PM";

  const auto by_switch = flows_by_switch(state);

  // Working copies of A^rest and the per-flow programmability H.
  std::map<ControllerId, double> rest;
  for (ControllerId j : state.active_controllers()) {
    rest[j] = state.rest_capacity(j);
  }
  std::map<FlowId, std::int64_t> h;
  for (FlowId l : state.recoverable_flows()) h[l] = 0;

  const int total_iterations =
      options.total_iterations > 0 ? options.total_iterations
                                   : state.max_offline_switches_on_path();

  // Incremental mode: adopt the still-valid parts of a previous plan
  // before the balancing loop (the loop then treats the adopted switches
  // as already mapped, exactly like its own line-18 path).
  if (options.seed != nullptr) {
    for (const auto& [sw, ctrl] : options.seed->mapping) {
      if (state.is_offline_switch(sw) && state.is_active_controller(ctrl)) {
        plan.mapping[sw] = ctrl;
      }
    }
    for (const auto& [sw, flow] : options.seed->sdn_assignments) {
      const ControllerId j = plan.controller_of(sw);
      if (j < 0 || !h.contains(flow)) continue;
      const auto& flows = by_switch.at(sw);
      const auto it = std::find_if(
          flows.begin(), flows.end(),
          [&](const auto& fl) { return fl.first == flow; });
      if (it == flows.end() || rest.at(j) < 1.0) continue;
      rest.at(j) -= 1.0;
      h.at(flow) += it->second;
      plan.sdn_assignments.insert({sw, flow});
    }
  }

  // Line 1: X = Y = empty, S* = S, sigma = 0, test_count = 0.
  std::vector<SwitchId> untested = state.offline_switches();
  std::int64_t sigma = 0;
  int test_count = 0;

  auto restart_sweep = [&] {
    untested = state.offline_switches();
    ++test_count;
    // sigma = min(H) — the water level rises to the new minimum.
    std::int64_t min_h = std::numeric_limits<std::int64_t>::max();
    for (const auto& [l, hl] : h) min_h = std::min(min_h, hl);
    if (!h.empty()) sigma = min_h;
  };

  // Lines 2-40: the balancing loop.
  {
    OBS_SPAN("pm.balancing");
    while (test_count < total_iterations && !h.empty()) {
      // Lines 5-15: find the switch with the most least-programmability
      // flows. `untested` is kept ascending, so ties pick the lowest id.
      std::size_t delta = 0;
      SwitchId i0 = -1;
      for (SwitchId s : untested) {
        std::size_t count = 0;
        for (const auto& [l, p] : by_switch.at(s)) {
          (void)p;
          if (h.at(l) == sigma) ++count;
        }
        if (count > delta) {
          delta = count;
          i0 = s;
          if (!options.greedy_switch_selection) break;  // first viable switch
        }
      }
      if (i0 < 0) {
        // No untested switch hosts a least-programmability flow: nothing in
        // this sweep can raise the minimum, so start the next sweep.
        restart_sweep();
        continue;
      }

      // Lines 17-28: map switch i0 to a controller j0.
      ControllerId j0 = plan.controller_of(i0);
      if (j0 < 0) {
        for (ControllerId j : state.controllers_by_delay(i0)) {
          if (rest.at(j) >= static_cast<double>(state.gamma(i0))) {
            j0 = j;
            break;  // nearest capable controller
          }
        }
        if (j0 < 0) {
          // Line 26: fall back to the controller with maximum residual
          // capacity.
          double best = -1.0;
          for (ControllerId j : state.active_controllers()) {
            if (rest.at(j) > best) {
              best = rest.at(j);
              j0 = j;
            }
          }
        }
        plan.mapping[i0] = j0;  // line 29: X <- X + (i0, j0)
      }
      std::erase(untested, i0);  // line 29: S* <- S* \ s_i0

      // Lines 31-36: put least-programmability flows at i0 into SDN mode.
      for (const auto& [l0, p] : by_switch.at(i0)) {
        // An assignment costs one whole control unit, so a fractional
        // residual below 1 cannot host it.
        if (h.at(l0) <= sigma &&
            !plan.sdn_assignments.contains({i0, l0}) &&
            rest.at(j0) >= 1.0) {
          rest.at(j0) -= 1.0;
          h.at(l0) += p;
          plan.sdn_assignments.insert({i0, l0});
        }
      }

      // Lines 37-39: sweep finished — raise the water level.
      if (untested.empty()) restart_sweep();
    }
  }

  // Lines 42-50: utilization pass — spend leftover capacity.
  if (!options.skip_utilization_pass) {
    OBS_SPAN("pm.utilization");
    for (const auto& [i0, flows] : by_switch) {
      const ControllerId j0 = plan.controller_of(i0);
      if (j0 < 0) continue;
      for (const auto& [l0, p] : flows) {
        (void)p;
        if (rest.at(j0) >= 1.0 &&
            !plan.sdn_assignments.contains({i0, l0})) {
          rest.at(j0) -= 1.0;
          plan.sdn_assignments.insert({i0, l0});
        }
      }
    }
  }

  prune_unused_mappings(plan);
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace pm::core
