#include "core/serialize.hpp"

namespace pm::core {

using util::JsonValue;

JsonValue plan_to_json(const RecoveryPlan& plan) {
  JsonValue out = JsonValue::object();
  out["algorithm"] = JsonValue(plan.algorithm);
  out["whole_switch_control"] = JsonValue(plan.whole_switch_control);
  out["middle_layer_ms"] = JsonValue(plan.middle_layer_ms);
  out["solve_seconds"] = JsonValue(plan.solve_seconds);
  out["proven_optimal"] = JsonValue(plan.proven_optimal);
  if (!plan.note.empty()) out["note"] = JsonValue(plan.note);

  JsonValue mapping = JsonValue::array();
  for (const auto& [sw, ctrl] : plan.mapping) {
    JsonValue entry = JsonValue::object();
    entry["switch"] = JsonValue(sw);
    entry["controller"] = JsonValue(ctrl);
    mapping.push_back(std::move(entry));
  }
  out["mapping"] = std::move(mapping);

  JsonValue assignments = JsonValue::array();
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    JsonValue entry = JsonValue::object();
    entry["switch"] = JsonValue(sw);
    entry["flow"] = JsonValue(flow);
    const auto it = plan.assignment_controller.find({sw, flow});
    if (it != plan.assignment_controller.end()) {
      entry["controller"] = JsonValue(it->second);
    }
    assignments.push_back(std::move(entry));
  }
  out["sdn_assignments"] = std::move(assignments);
  return out;
}

RecoveryPlan plan_from_json(const util::JsonValue& json) {
  try {
    RecoveryPlan plan;
    plan.algorithm = json.at("algorithm").as_string();
    plan.whole_switch_control = json.at("whole_switch_control").as_bool();
    plan.middle_layer_ms = json.at("middle_layer_ms").as_number();
    plan.solve_seconds = json.at("solve_seconds").as_number();
    plan.proven_optimal = json.at("proven_optimal").as_bool();
    if (json.contains("note")) plan.note = json.at("note").as_string();
    const JsonValue& mapping = json.at("mapping");
    for (std::size_t i = 0; i < mapping.size(); ++i) {
      const JsonValue& entry = mapping.at(i);
      plan.mapping[static_cast<sdwan::SwitchId>(
          entry.at("switch").as_int())] =
          static_cast<sdwan::ControllerId>(entry.at("controller").as_int());
    }
    const JsonValue& assignments = json.at("sdn_assignments");
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      const JsonValue& entry = assignments.at(i);
      const auto sw =
          static_cast<sdwan::SwitchId>(entry.at("switch").as_int());
      const auto flow =
          static_cast<sdwan::FlowId>(entry.at("flow").as_int());
      plan.sdn_assignments.insert({sw, flow});
      if (entry.contains("controller")) {
        plan.assignment_controller[{sw, flow}] =
            static_cast<sdwan::ControllerId>(
                entry.at("controller").as_int());
      }
    }
    return plan;
  } catch (const std::logic_error& e) {
    // Covers both type mismatches and std::out_of_range (missing keys).
    throw std::runtime_error(std::string("malformed plan JSON: ") +
                             e.what());
  }
}

JsonValue metrics_to_json(const RecoveryMetrics& m) {
  JsonValue out = JsonValue::object();
  out["algorithm"] = JsonValue(m.algorithm);
  out["least_programmability"] = JsonValue(m.least_programmability);
  out["total_programmability"] = JsonValue(m.total_programmability);
  out["recoverable_flows"] =
      JsonValue(static_cast<std::int64_t>(m.recoverable_flow_count));
  out["recovered_flows"] =
      JsonValue(static_cast<std::int64_t>(m.recovered_flow_count));
  out["recovered_fraction"] = JsonValue(m.recovered_flow_fraction);
  out["offline_switches"] =
      JsonValue(static_cast<std::int64_t>(m.offline_switch_count));
  out["recovered_switches"] =
      JsonValue(static_cast<std::int64_t>(m.recovered_switch_count));
  out["used_control_resource"] = JsonValue(m.used_control_resource);
  out["available_control_resource"] =
      JsonValue(m.available_control_resource);
  out["total_overhead_ms"] = JsonValue(m.total_overhead_ms);
  out["per_flow_overhead_ms"] = JsonValue(m.per_flow_overhead_ms);
  out["ideal_total_delay_ms"] = JsonValue(m.ideal_total_delay_ms);
  out["solve_seconds"] = JsonValue(m.solve_seconds);

  JsonValue box = JsonValue::object();
  box["min"] = JsonValue(m.programmability.min);
  box["q1"] = JsonValue(m.programmability.q1);
  box["median"] = JsonValue(m.programmability.median);
  box["q3"] = JsonValue(m.programmability.q3);
  box["max"] = JsonValue(m.programmability.max);
  box["mean"] = JsonValue(m.programmability.mean);
  box["count"] = JsonValue(static_cast<std::int64_t>(
      m.programmability.count));
  out["programmability"] = std::move(box);

  JsonValue loads = JsonValue::object();
  for (const auto& [j, load] : m.controller_load) {
    loads[std::to_string(j)] = JsonValue(load);
  }
  out["controller_load"] = std::move(loads);
  return out;
}

JsonValue case_report_to_json(const std::string& label,
                              const RecoveryPlan& plan,
                              const RecoveryMetrics& metrics) {
  JsonValue out = JsonValue::object();
  out["case"] = JsonValue(label);
  out["plan"] = plan_to_json(plan);
  out["metrics"] = metrics_to_json(metrics);
  return out;
}

}  // namespace pm::core
