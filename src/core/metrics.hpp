// Evaluation metrics — one field per series the paper's figures plot.
//
//   Fig. 4(a)/5(a)/6(a): programmability box stats over recovered flows.
//   Fig. 4(b)/5(b)/6(b): total programmability (benches normalize to
//                        RetroFlow).
//   Fig. 4(c)/5(c)/6(c): % recovered flows (of the recoverable offline
//                        flows; see FailureState::recoverable_flows).
//   Fig. 5(d)/6(d):      number of recovered offline switches.
//   Fig. 5(e)/6(e):      control resource used per active controller.
//   Fig. 4(d)/5(f)/6(f): per-flow communication overhead in ms.
//   Fig. 7:              computation time (plan.solve_seconds).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/recovery_plan.hpp"
#include "util/stats.hpp"

namespace pm::core {

struct RecoveryMetrics {
  std::string algorithm;

  /// Box stats of per-flow programmability over *recovered* flows
  /// (flows with at least one SDN assignment).
  util::BoxStats programmability;

  /// Least programmability over ALL recoverable offline flows — the
  /// objective obj_1 = r (0 when some recoverable flow stays offline).
  std::int64_t least_programmability = 0;

  /// obj_2: total programmability over recovered flows.
  std::int64_t total_programmability = 0;

  std::size_t recoverable_flow_count = 0;
  std::size_t recovered_flow_count = 0;
  double recovered_flow_fraction = 0.0;  ///< recovered / recoverable.

  std::size_t offline_switch_count = 0;
  std::size_t recovered_switch_count = 0;  ///< mapped switches in use.

  /// Capacity units consumed per active controller, keyed by controller
  /// id, plus the totals.
  std::map<sdwan::ControllerId, double> controller_load;
  double used_control_resource = 0.0;
  double available_control_resource = 0.0;

  /// Control-channel propagation (plus any middle-layer processing) summed
  /// over all SDN assignments, and the same divided by recovered flows.
  double total_overhead_ms = 0.0;
  double per_flow_overhead_ms = 0.0;

  /// The delay budget G of Eq. (6), for comparison with total_overhead_ms.
  double ideal_total_delay_ms = 0.0;

  double solve_seconds = 0.0;
};

/// Computes every metric for `plan` under `state`.
RecoveryMetrics evaluate_plan(const sdwan::FailureState& state,
                              const RecoveryPlan& plan);

}  // namespace pm::core
