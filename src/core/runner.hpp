// Scenario runner: enumerates k-controller-failure cases, runs every
// algorithm, validates the plans and collects the metrics — the engine
// behind benches fig4/fig5/fig6/fig7.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"

namespace pm::core {

struct CaseResult {
  sdwan::FailureScenario scenario;
  std::string label;  ///< e.g. "(13, 20)".

  /// Metrics per algorithm name ("PM", "RetroFlow", "PG", "Optimal").
  /// "Optimal" is absent when the solver found no incumbent in budget.
  std::map<std::string, RecoveryMetrics> metrics;

  /// Constraint violations per algorithm (expected empty; kept so benches
  /// can fail loudly instead of reporting invalid plans).
  std::map<std::string, std::vector<std::string>> violations;

  /// Optimal bookkeeping (Fig. 6 omits unproven cases; Fig. 7 uses time).
  bool optimal_available = false;
  bool optimal_proven = false;
  double optimal_seconds = 0.0;
  double pm_seconds = 0.0;
};

struct RunnerOptions {
  bool run_optimal = true;
  OptimalOptions optimal;
  /// Scenario-level parallelism for run_failure_sweep (the --jobs flag).
  /// 1 keeps the historical single-threaded path; any value produces
  /// byte-identical results — cases are independent and results are
  /// collected in scenario order.
  int jobs = 1;
};

/// Runs one failure case.
CaseResult run_case(const sdwan::Network& net,
                    const sdwan::FailureScenario& scenario,
                    const RunnerOptions& options = {});

/// Runs all C(M, k) cases with exactly k failed controllers.
std::vector<CaseResult> run_failure_sweep(const sdwan::Network& net, int k,
                                          const RunnerOptions& options = {});

}  // namespace pm::core
