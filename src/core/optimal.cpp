#include "core/optimal.hpp"

#include <algorithm>
#include <vector>

#include "core/pm_algorithm.hpp"

namespace pm::core {

namespace {

/// Makes PM's plan satisfy the delay budget of Eq. (14) by dropping the
/// most expensive assignments first — preferring flows whose
/// programmability is well above the minimum, so the balanced level r
/// survives the trim whenever possible. The result is a feasible (if
/// conservative) incumbent for the branch-and-bound.
RecoveryPlan trim_to_delay_budget(const sdwan::FailureState& state,
                                  RecoveryPlan plan) {
  const sdwan::Network& net = state.network();
  const double budget = state.ideal_total_delay();
  double total = 0.0;
  struct Item {
    sdwan::SwitchId sw;
    sdwan::FlowId flow;
    double delay;
  };
  std::vector<Item> items;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    const sdwan::ControllerId j = plan.controller_of_assignment(sw, flow);
    const double d = net.delay_ms(sw, j);
    items.push_back({sw, flow, d});
    total += d;
  }
  if (total <= budget) return plan;

  auto h = flow_programmability(state, plan);
  std::int64_t level = std::numeric_limits<std::int64_t>::max();
  for (sdwan::FlowId l : state.recoverable_flows()) {
    const auto it = h.find(l);
    level = std::min(level, it == h.end() ? 0 : it->second);
  }

  // Drop the most expensive assignment whose removal keeps its flow at or
  // above the balance level; when none qualifies, lower the bar to "keeps
  // the flow recovered", and only then sacrifice flows outright.
  while (total > budget && !items.empty()) {
    auto qualifies = [&](const Item& it, std::int64_t floor) {
      return h.at(it.flow) - net.diversity(it.flow, it.sw) >= floor;
    };
    std::size_t pick = items.size();
    for (const std::int64_t floor : {level, std::int64_t{1},
                                     std::int64_t{0}}) {
      double best_delay = -1.0;
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (qualifies(items[k], floor) && items[k].delay > best_delay) {
          best_delay = items[k].delay;
          pick = k;
        }
      }
      if (pick < items.size()) break;
    }
    if (pick >= items.size()) break;
    const Item it = items[pick];
    items.erase(items.begin() + static_cast<long>(pick));
    plan.sdn_assignments.erase({it.sw, it.flow});
    plan.assignment_controller.erase({it.sw, it.flow});
    h.at(it.flow) -= net.diversity(it.flow, it.sw);
    total -= it.delay;
  }
  prune_unused_mappings(plan);
  return plan;
}

}  // namespace

OptimalOutcome run_optimal(const sdwan::FailureState& state,
                           OptimalOptions options) {
  OptimalOutcome outcome;
  FmssmProblem problem = build_fmssm(state, options.fmssm);

  milp::MipOptions mip;
  mip.time_limit_seconds = options.time_limit_seconds;
  mip.node_limit = options.node_limit;
  if (options.warm_start_with_pm) {
    const RecoveryPlan pm_plan = run_pm(state);
    auto encoded = problem.encode(state, pm_plan);
    if (!problem.model.is_feasible(encoded)) {
      encoded =
          problem.encode(state, trim_to_delay_budget(state, pm_plan));
    }
    if (problem.model.is_feasible(encoded)) {
      mip.warm_start = encoded;
    }
  }

  const milp::MipResult result = milp::solve_mip(problem.model, mip);
  outcome.status = result.status;
  outcome.best_bound = result.best_bound;
  outcome.nodes_explored = result.nodes_explored;
  outcome.seconds = result.seconds;
  if (result.has_solution()) {
    RecoveryPlan plan = problem.decode(result.x);
    plan.solve_seconds = result.seconds;
    plan.proven_optimal = result.status == milp::MipStatus::kOptimal;
    plan.note = milp::to_string(result.status);
    outcome.plan = std::move(plan);
  }
  return outcome;
}

}  // namespace pm::core
