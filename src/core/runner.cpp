#include "core/runner.hpp"

#include "obs/profile.hpp"
#include "util/task_pool.hpp"

namespace pm::core {

CaseResult run_case(const sdwan::Network& net,
                    const sdwan::FailureScenario& scenario,
                    const RunnerOptions& options) {
  CaseResult result;
  result.scenario = scenario;
  result.label = scenario.label(net);
  const sdwan::FailureState state(net, scenario);

  auto record = [&](const RecoveryPlan& plan) {
    result.metrics[plan.algorithm] = evaluate_plan(state, plan);
    result.violations[plan.algorithm] = validate_plan(state, plan);
  };

  {
    OBS_SPAN("runner.pm");
    const RecoveryPlan pm_plan = run_pm(state);
    result.pm_seconds = pm_plan.solve_seconds;
    record(pm_plan);
  }
  {
    OBS_SPAN("runner.retroflow");
    record(run_retroflow(state));
  }
  {
    OBS_SPAN("runner.pg");
    record(run_pg(state));
  }

  if (options.run_optimal) {
    OBS_SPAN("runner.optimal");
    const OptimalOutcome opt = run_optimal(state, options.optimal);
    result.optimal_seconds = opt.seconds;
    if (opt.plan) {
      result.optimal_available = true;
      result.optimal_proven = opt.plan->proven_optimal;
      record(*opt.plan);
    }
  }
  return result;
}

std::vector<CaseResult> run_failure_sweep(const sdwan::Network& net, int k,
                                          const RunnerOptions& options) {
  const auto scenarios = sdwan::enumerate_failures(net, k);
  util::TaskPool pool(options.jobs);
  return pool.parallel_map(scenarios, [&](std::size_t,
                                          const sdwan::FailureScenario& s) {
    return run_case(net, s, options);
  });
}

}  // namespace pm::core
