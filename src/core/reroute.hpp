// Congestion-aware rerouting on top of recovered programmability — the
// payoff the paper motivates with SWAN/B4 (Sec. I): when traffic surges,
// programmable flows can move off hot links; offline flows cannot.
//
// Mechanism-faithful rerouting: a flow can change its path only at a
// switch where it is programmable —
//   * at an ONLINE switch on its path (its domain controller still runs),
//   * at an offline switch only if the recovery plan put the flow in SDN
//     mode there ((i, l) in Y).
// At such a switch the controller may pick any neighbor as the new next
// hop; the packet then follows the legacy (OSPF) tables from that
// neighbor, per the hybrid pipeline of Fig. 2. Candidate paths are
// therefore "prefix + neighbor + OSPF tail", checked loop-free.
//
// The engine greedily moves flows off the most-utilized link while the
// maximum link utilization (MLU) improves. Comparing the reachable MLU
// under PM's plan vs RetroFlow's quantifies what recovered
// programmability is worth to traffic engineering.
#pragma once

#include <map>
#include <vector>

#include "core/recovery_plan.hpp"
#include "sdwan/traffic.hpp"

namespace pm::core {

struct RerouteOptions {
  double link_capacity_mbps = 1000.0;
  /// Stop after this many flow moves (safety valve).
  int max_moves = 500;
  /// Minimum MLU improvement to keep going.
  double min_gain = 1e-6;
};

struct RerouteResult {
  /// Flows moved off their default path, with their new paths.
  std::map<sdwan::FlowId, std::vector<sdwan::SwitchId>> new_paths;
  double initial_mlu = 0.0;
  double final_mlu = 0.0;
  int moves = 0;
};

/// Switches on `flow`'s current path where it can change next hop, given
/// the failure state and recovery plan (see file comment).
std::vector<sdwan::SwitchId> reroutable_switches(
    const sdwan::FailureState& state, const RecoveryPlan& plan,
    sdwan::FlowId flow);

/// Loop-free candidate paths for `flow` obtained by changing the next hop
/// at `at` and continuing over the legacy tables.
std::vector<std::vector<sdwan::SwitchId>> candidate_paths(
    const sdwan::Network& net, sdwan::FlowId flow, sdwan::SwitchId at);

/// Greedy MLU minimization. `tm` is the offered traffic.
RerouteResult minimize_congestion(const sdwan::FailureState& state,
                                  const RecoveryPlan& plan,
                                  const sdwan::TrafficMatrix& tm,
                                  const RerouteOptions& options = {});

}  // namespace pm::core
