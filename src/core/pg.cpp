#include "core/pg.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>

namespace pm::core {

namespace {
using sdwan::ControllerId;
using sdwan::FlowId;
using sdwan::SwitchId;
}  // namespace

RecoveryPlan run_pg(const sdwan::FailureState& state) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryPlan plan;
  plan.algorithm = "PG";
  plan.middle_layer_ms = kFlowVisorLatencyMs * kMessagesPerTransaction;

  // The middle layer makes every (switch, flow) pair independently
  // assignable; track which controller serves each pair so capacity and
  // overhead are attributable. A switch may be sliced among several
  // controllers, so plan.mapping cannot express PG's state — we pick, for
  // reporting, the controller that serves the most pairs of the switch.
  std::map<ControllerId, double> rest;
  for (ControllerId j : state.active_controllers()) {
    rest[j] = state.rest_capacity(j);
  }
  std::map<FlowId, std::int64_t> h;
  for (FlowId l : state.recoverable_flows()) h[l] = 0;

  // pair -> controller chosen by the layer.
  std::map<std::pair<SwitchId, FlowId>, ControllerId> pair_controller;

  auto nearest_with_capacity = [&](SwitchId s) -> ControllerId {
    for (ControllerId j : state.controllers_by_delay(s)) {
      if (rest.at(j) >= 1.0) return j;
    }
    return -1;
  };

  // Phase 1 — balance: raise the minimum programmability level by level,
  // giving each least-programmability flow one more SDN switch per round.
  bool progress = true;
  while (progress) {
    progress = false;
    std::int64_t sigma = std::numeric_limits<std::int64_t>::max();
    for (const auto& [l, hl] : h) sigma = std::min(sigma, hl);
    if (h.empty()) break;
    for (FlowId l : state.recoverable_flows()) {
      if (h.at(l) != sigma) continue;
      // Best unused opportunity: maximum programmability gain, ties to
      // the lowest-delay assignable controller.
      const sdwan::FailureState::Opportunity* best = nullptr;
      ControllerId best_ctrl = -1;
      for (const auto& opp : state.opportunities(l)) {
        if (pair_controller.contains({opp.sw, l})) continue;
        const ControllerId j = nearest_with_capacity(opp.sw);
        if (j < 0) continue;
        if (best == nullptr || opp.p > best->p) {
          best = &opp;
          best_ctrl = j;
        }
      }
      if (best == nullptr) continue;
      rest.at(best_ctrl) -= 1.0;
      h.at(l) += best->p;
      pair_controller[{best->sw, l}] = best_ctrl;
      progress = true;
    }
  }

  // Phase 2 — utilize: spend leftover capacity on any remaining pairs.
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      if (pair_controller.contains({opp.sw, l})) continue;
      const ControllerId j = nearest_with_capacity(opp.sw);
      if (j < 0) continue;
      rest.at(j) -= 1.0;
      pair_controller[{opp.sw, l}] = j;
    }
  }

  // Record the exact per-pair controllers (capacity/overhead accounting
  // uses these), plus a majority-vote mapping per switch for display.
  plan.assignment_controller = pair_controller;
  std::map<SwitchId, std::map<ControllerId, int>> votes;
  for (const auto& [pair, j] : pair_controller) {
    votes[pair.first][j]++;
    plan.sdn_assignments.insert(pair);
  }
  for (const auto& [sw, ballot] : votes) {
    ControllerId winner = -1;
    int best_count = -1;
    for (const auto& [j, count] : ballot) {
      if (count > best_count) {
        best_count = count;
        winner = j;
      }
    }
    plan.mapping[sw] = winner;
  }

  prune_unused_mappings(plan);
  plan.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return plan;
}

}  // namespace pm::core
