// The FMSSM problem (Sec. IV) as a mixed-integer program.
//
// Variables (problem P' after linearization):
//   r        >= 0            — least programmability over the L flows,
//   x_ij     in {0,1}        — offline switch i mapped to controller j,
//   w_ij^l   in {0,1}        — flow l in SDN mode at switch i under
//                              controller j (the linearized x*y product).
//
// Objective:  max  r + lambda * sum p_i^l w_ij^l          (Eqs. 7, 8)
//
// Constraints (numbers follow the paper):
//   (2)   sum_j x_ij <= 1                                  per switch
//   (9')  sum_l w_ij^l <= B_i * x_ij                       per (i, j)
//   pair  sum_j w_ij^l <= 1                                per (i, l)
//   (12)  sum_{i,l} w_ij^l <= A_j^rest                     per controller
//   (13)  sum_{i,j} p_i^l w_ij^l >= r                      per flow
//   (14)  sum w_ij^l D_ij <= G                             delay budget
//
// (9') aggregates the paper's per-triple linearization rows (9)-(11) —
// integer-equivalent (proved in tests against brute force) with a weaker
// LP bound but far fewer rows; y is eliminated because a solution with
// y=1, w=0 is value-equivalent to y=0 (DESIGN.md).
#pragma once

#include <map>
#include <utility>

#include "core/recovery_plan.hpp"
#include "milp/model.hpp"

namespace pm::core {

struct FmssmOptions {
  /// Weight of the total-programmability objective. <= 0 selects the
  /// paper's two-stage-equivalent weight automatically:
  /// lambda = 1 / (1 + sum of all flows' maximum programmability), which
  /// makes any gain in r dominate every possible gain in obj_2.
  double lambda = 0.0;
  /// Include the delay-budget constraint (14). The ablation bench turns
  /// it off to measure its effect on overhead.
  bool delay_constraint = true;
};

/// The built model plus the index maps needed to decode solutions.
struct FmssmProblem {
  milp::Model model;
  int r_var = -1;
  std::map<std::pair<sdwan::SwitchId, sdwan::ControllerId>, int> x_var;
  std::map<std::tuple<sdwan::SwitchId, sdwan::ControllerId, sdwan::FlowId>,
           int>
      w_var;
  double lambda = 0.0;

  /// Translates a solver assignment into a RecoveryPlan.
  RecoveryPlan decode(const std::vector<double>& solution) const;

  /// Translates a plan into a variable assignment (for warm starts).
  /// The returned vector satisfies the model iff the plan satisfies every
  /// hard constraint *and* the delay budget.
  std::vector<double> encode(const sdwan::FailureState& state,
                             const RecoveryPlan& plan) const;
};

FmssmProblem build_fmssm(const sdwan::FailureState& state,
                         FmssmOptions options = {});

}  // namespace pm::core
