// The paper's evaluation scenario (Sec. VI-A): the ATT backbone with six
// controllers and a flow between every ordered node pair.
#pragma once

#include "sdwan/network.hpp"

namespace pm::core {

/// Controller capacity used on the embedded ATT-like backbone.
///
/// The paper uses 500 for a topology whose domain loads peak at 473
/// (Table III). Our synthesized backbone routes slightly more flow-switch
/// pairs (load peaks at 536), so 550 keeps the same normal-operation
/// tightness — and preserves the paper's pivotal property that hub switch
/// 13's control cost exceeds every controller's residual capacity under
/// the (13, 20) double failure (EXPERIMENTS.md).
inline constexpr double kAttControllerCapacity = 550.0;

/// Builds the evaluation network on the embedded backbone. `config`
/// defaults are overridden with the ATT capacity above; pass a non-zero
/// capacity to override.
sdwan::Network make_att_network(sdwan::NetworkConfig config = {
    .controller_capacity = 0.0, .path_count = {}});

}  // namespace pm::core
