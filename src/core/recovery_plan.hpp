// The output every recovery algorithm produces, mirroring the decision
// variables of the FMSSM problem (Sec. IV):
//   mapping          — X: offline switch -> active controller (x_ij),
//   sdn_assignments  — Y: (offline switch, flow) pairs routed in SDN mode
//                      there (y_i^l = 1); all other flows at that switch
//                      fall back to the legacy table (hybrid mode).
//
// A plan is *valid* when it respects the constraints of problem (P):
// one controller per switch, assignments only at mapped switches with
// beta = 1, and no controller above its residual capacity. The delay
// budget (Eq. 14) is reported as a metric rather than enforced, because
// the PM heuristic treats it as a soft preference (Sec. VI-C-2(3)).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sdwan/failure.hpp"

namespace pm::core {

struct RecoveryPlan {
  std::string algorithm;

  /// X: offline switch -> active controller.
  std::map<sdwan::SwitchId, sdwan::ControllerId> mapping;

  /// Y: SDN-mode selections, (offline switch, flow).
  std::set<std::pair<sdwan::SwitchId, sdwan::FlowId>> sdn_assignments;

  /// Flow-level solutions (PG) may slice one switch across several
  /// controllers through the middle layer; such plans record the exact
  /// controller per assignment here, overriding `mapping` for capacity
  /// and overhead accounting. Switch-controller solutions leave it empty.
  std::map<std::pair<sdwan::SwitchId, sdwan::FlowId>, sdwan::ControllerId>
      assignment_controller;

  /// Extra per-control-message processing latency in ms (nonzero only for
  /// PG, whose FlowVisor-style middle layer handles every message).
  double middle_layer_ms = 0.0;

  /// True for switch-level solutions (RetroFlow): a mapped switch costs
  /// its full gamma_i control units — the controller manages every flow
  /// entry there, not just the beta = 1 ones. Per-flow solutions leave
  /// this false and pay one unit per SDN assignment.
  bool whole_switch_control = false;

  /// Wall-clock time the algorithm took to produce the plan.
  double solve_seconds = 0.0;

  /// For solver-backed algorithms: true when the solution is proven
  /// optimal. Heuristics leave it false.
  bool proven_optimal = false;

  /// Free-form status note (e.g. the MIP status for Optimal).
  std::string note;

  /// Controller that switch `i` is mapped to, or -1.
  sdwan::ControllerId controller_of(sdwan::SwitchId i) const;

  /// Controller serving a specific assignment: the per-pair override if
  /// present, otherwise the switch's mapping. -1 if neither exists.
  sdwan::ControllerId controller_of_assignment(sdwan::SwitchId i,
                                               sdwan::FlowId l) const;
};

/// Capacity units the plan consumes per active controller, honoring the
/// plan's load model (per assignment, or per whole switch for RetroFlow).
std::map<sdwan::ControllerId, double> controller_loads(
    const sdwan::FailureState& state, const RecoveryPlan& plan);

/// Total control-channel cost in ms: every consumed control unit pays the
/// switch-controller propagation delay plus the plan's middle-layer
/// processing latency.
double total_control_overhead_ms(const sdwan::FailureState& state,
                                 const RecoveryPlan& plan);

/// Violations of the hard FMSSM constraints; empty means the plan is valid
/// for `state`. Each entry is a human-readable description.
std::vector<std::string> validate_plan(const sdwan::FailureState& state,
                                       const RecoveryPlan& plan);

/// h^l for every flow: the recovered path programmability
/// sum_{(i,l) in Y} p_i^l. Flows without assignments map to 0.
std::map<sdwan::FlowId, std::int64_t> flow_programmability(
    const sdwan::FailureState& state, const RecoveryPlan& plan);

/// Drops mapped switches that carry no SDN assignment (they would consume
/// a control channel without controlling anything). All algorithms call
/// this before returning.
void prune_unused_mappings(RecoveryPlan& plan);

/// Reconfiguration cost of replacing `before` with `after`: how many
/// switch-controller sessions change and how many flow entries must be
/// installed/removed. Used to evaluate incremental recovery under
/// successive failures.
struct PlanChurn {
  std::size_t mappings_changed = 0;  ///< switches whose controller differs
  std::size_t entries_added = 0;
  std::size_t entries_removed = 0;

  std::size_t total() const {
    return mappings_changed + entries_added + entries_removed;
  }
};

PlanChurn plan_churn(const RecoveryPlan& before, const RecoveryPlan& after);

}  // namespace pm::core
