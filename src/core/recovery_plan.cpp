#include "core/recovery_plan.hpp"

#include <algorithm>

namespace pm::core {

sdwan::ControllerId RecoveryPlan::controller_of(sdwan::SwitchId i) const {
  const auto it = mapping.find(i);
  return it == mapping.end() ? -1 : it->second;
}

sdwan::ControllerId RecoveryPlan::controller_of_assignment(
    sdwan::SwitchId i, sdwan::FlowId l) const {
  const auto it = assignment_controller.find({i, l});
  if (it != assignment_controller.end()) return it->second;
  return controller_of(i);
}

std::map<sdwan::ControllerId, double> controller_loads(
    const sdwan::FailureState& state, const RecoveryPlan& plan) {
  std::map<sdwan::ControllerId, double> loads;
  for (sdwan::ControllerId j : state.active_controllers()) loads[j] = 0.0;
  if (plan.whole_switch_control) {
    for (const auto& [sw, ctrl] : plan.mapping) {
      loads[ctrl] += static_cast<double>(state.gamma(sw));
    }
  } else {
    for (const auto& [sw, flow] : plan.sdn_assignments) {
      const sdwan::ControllerId j = plan.controller_of_assignment(sw, flow);
      if (j >= 0) loads[j] += 1.0;
    }
  }
  return loads;
}

double total_control_overhead_ms(const sdwan::FailureState& state,
                                 const RecoveryPlan& plan) {
  const sdwan::Network& net = state.network();
  double total = 0.0;
  if (plan.whole_switch_control) {
    for (const auto& [sw, ctrl] : plan.mapping) {
      total += static_cast<double>(state.gamma(sw)) *
               (net.delay_ms(sw, ctrl) + plan.middle_layer_ms);
    }
  } else {
    for (const auto& [sw, flow] : plan.sdn_assignments) {
      const sdwan::ControllerId j = plan.controller_of_assignment(sw, flow);
      if (j >= 0) total += net.delay_ms(sw, j) + plan.middle_layer_ms;
    }
  }
  return total;
}

std::vector<std::string> validate_plan(const sdwan::FailureState& state,
                                       const RecoveryPlan& plan) {
  std::vector<std::string> problems;
  const sdwan::Network& net = state.network();

  for (const auto& [sw, ctrl] : plan.mapping) {
    if (!state.is_offline_switch(sw)) {
      problems.push_back("switch " + std::to_string(sw) +
                         " is mapped but not offline");
    }
    if (!state.is_active_controller(ctrl)) {
      problems.push_back("switch " + std::to_string(sw) +
                         " mapped to non-active controller " +
                         std::to_string(ctrl));
    }
  }

  for (const auto& [sw, flow] : plan.sdn_assignments) {
    if (!plan.mapping.contains(sw)) {
      problems.push_back("assignment (" + std::to_string(sw) + ", " +
                         std::to_string(flow) + ") at unmapped switch");
      continue;
    }
    if (!net.beta(flow, sw)) {
      problems.push_back("assignment (" + std::to_string(sw) + ", " +
                         std::to_string(flow) + ") where beta = 0");
    }
  }

  for (const auto& [j, load] : controller_loads(state, plan)) {
    if (load > state.rest_capacity(j) + 1e-9) {
      problems.push_back("controller " + net.controller(j).name +
                         " overloaded: " + std::to_string(load) + " > " +
                         std::to_string(state.rest_capacity(j)));
    }
  }
  return problems;
}

std::map<sdwan::FlowId, std::int64_t> flow_programmability(
    const sdwan::FailureState& state, const RecoveryPlan& plan) {
  std::map<sdwan::FlowId, std::int64_t> h;
  const sdwan::Network& net = state.network();
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    h[flow] += net.diversity(flow, sw);
  }
  return h;
}

PlanChurn plan_churn(const RecoveryPlan& before, const RecoveryPlan& after) {
  PlanChurn churn;
  std::set<sdwan::SwitchId> switches;
  for (const auto& [sw, j] : before.mapping) {
    (void)j;
    switches.insert(sw);
  }
  for (const auto& [sw, j] : after.mapping) {
    (void)j;
    switches.insert(sw);
  }
  for (sdwan::SwitchId sw : switches) {
    if (before.controller_of(sw) != after.controller_of(sw)) {
      ++churn.mappings_changed;
    }
  }
  for (const auto& pair : after.sdn_assignments) {
    if (!before.sdn_assignments.contains(pair)) ++churn.entries_added;
  }
  for (const auto& pair : before.sdn_assignments) {
    if (!after.sdn_assignments.contains(pair)) ++churn.entries_removed;
  }
  return churn;
}

void prune_unused_mappings(RecoveryPlan& plan) {
  std::set<sdwan::SwitchId> used;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    (void)flow;
    used.insert(sw);
  }
  std::erase_if(plan.mapping,
                [&](const auto& kv) { return !used.contains(kv.first); });
}

}  // namespace pm::core
