// ProgrammabilityMedic — the paper's Algorithm 1.
//
// A faithful implementation of the heuristic of Sec. V, in two stages:
//
//  1. Balancing loop (lines 2-40): repeatedly pick the offline switch with
//     the most least-programmability flows, map it to the nearest active
//     controller with enough headroom (falling back to the
//     largest-residual-capacity controller), and put the
//     least-programmability flows there into SDN mode while capacity
//     lasts. After every full sweep of the switch set, the "water level"
//     sigma rises to the new minimum programmability. The loop runs
//     TOTAL_ITERATIONS = max offline switches on any offline flow's path
//     times, after which the minimum cannot improve further.
//  2. Utilization pass (lines 42-50): spend any remaining controller
//     capacity on arbitrary feasible (switch, flow) SDN selections to
//     maximize total programmability (the paper's third design goal).
//
// Listing ambiguities resolved (documented in DESIGN.md):
//  * lines 20-24 scan controllers in ascending delay order; we stop at the
//    FIRST controller with enough capacity (the listing as printed would
//    keep overwriting j0 and select the farthest, contradicting the
//    stated intent of testing "following the ascending order").
//  * if no switch in S* has a least-programmability flow (delta stays 0,
//    i0 = NULL), the sweep is restarted immediately — the listing would
//    dereference NULL.
//  * switches that end up mapped but carry no SDN assignment are pruned.
#pragma once

#include "core/recovery_plan.hpp"

namespace pm::core {

struct PmOptions {
  /// Override for TOTAL_ITERATIONS; <= 0 means use the paper's value
  /// (max offline switches on an offline flow's path).
  int total_iterations = 0;
  /// Incremental mode for successive failures (Sec. I: "several
  /// controllers may fail simultaneously or fail successively"): still-
  /// valid mappings and SDN selections of a previous plan are kept, and
  /// Algorithm 1 continues from them — minimizing reconfiguration churn
  /// when another controller dies. Must outlive the call; nullptr = cold
  /// start.
  const RecoveryPlan* seed = nullptr;
  /// Skip stage 2 (utilization pass) — used by the ablation bench to
  /// quantify the paper's "fully utilize controllers" design goal.
  bool skip_utilization_pass = false;
  /// Stage-1 switch selection: pick the switch with the most
  /// least-programmability flows (the paper's rule). The ablation bench
  /// flips this to pick the lowest-id switch instead.
  bool greedy_switch_selection = true;
};

RecoveryPlan run_pm(const sdwan::FailureState& state, PmOptions options = {});

}  // namespace pm::core
