// ProgrammabilityGuardian baseline [9] (IWQoS'20) — flow-level recovery
// through a FlowVisor-style middle layer, reimplemented from the
// descriptions in Secs. II-B-2 and VI-B-3 of the PM paper.
//
// The middle layer decouples flows from switch-controller mappings: each
// (switch, flow) control entry can be assigned to ANY active controller
// independently (the layer slices switches among controllers), which is
// exactly the relaxation of FMSSM without constraint (2). PG balances
// per-flow programmability first and then spends leftover capacity, like
// PM, but with this extra freedom — so it upper-bounds PM's recovery.
//
// The price is the layer itself: every control message crosses a
// FlowVisor instance, which the paper reports needs 0.48 ms per request
// on average [10]; a flow installation is a multi-message transaction
// (flow-mod, barrier, stats echoes), modeled as kMessagesPerTransaction
// messages. This is the overhead visible in Figs. 4(d), 5(f), 6(f).
#pragma once

#include "core/recovery_plan.hpp"

namespace pm::core {

/// FlowVisor per-request processing latency (ms), from the paper.
inline constexpr double kFlowVisorLatencyMs = 0.48;
/// OpenFlow messages per flow-entry transaction through the layer.
inline constexpr int kMessagesPerTransaction = 8;

RecoveryPlan run_pg(const sdwan::FailureState& state);

}  // namespace pm::core
