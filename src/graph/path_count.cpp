#include "graph/path_count.hpp"

#include <algorithm>
#include <vector>

namespace pm::graph {

namespace {

/// Bounded simple-path counting by explicit-stack DFS.
///
/// The traversal is iterative (a recursive version overflows the call
/// stack on large synthetic Waxman/geometric graphs once callers ask for
/// generous hop budgets) and keeps all state in the local struct, so
/// concurrent counts from pool workers never share anything.
struct Counter {
  const Graph& g;
  NodeId dst;
  std::int64_t cap;
  const std::vector<int>& dist_to_dst;  // BFS hops to dst, for pruning
  std::vector<char> on_path;
  std::int64_t total = 0;

  /// One in-progress node of the simple path being extended.
  struct Frame {
    NodeId node;
    int budget;
    std::size_t next_arc;
  };

  void run(NodeId src, int budget) {
    std::vector<Frame> stack;
    // Entering a node replays the recursive prologue: count a completed
    // path at dst, prune when the BFS lower bound exceeds the budget,
    // otherwise push the node onto the path.
    auto try_enter = [&](NodeId u, int b) {
      if (u == dst) {
        ++total;
        return;
      }
      const int lower_bound = dist_to_dst[static_cast<std::size_t>(u)];
      if (lower_bound < 0 || lower_bound > b) return;  // cannot reach
      on_path[static_cast<std::size_t>(u)] = 1;
      stack.push_back({u, b, 0});
    };
    try_enter(src, budget);
    while (!stack.empty()) {
      if (total >= cap) break;  // counting is clamped at cap anyway
      Frame& f = stack.back();
      const auto& arcs = g.neighbors(f.node);
      const std::size_t before = stack.size();
      while (f.next_arc < arcs.size()) {
        const Arc& a = arcs[f.next_arc++];
        if (!on_path[static_cast<std::size_t>(a.to)]) {
          try_enter(a.to, f.budget - 1);
          if (stack.size() > before) break;  // descended; f may be stale
        }
        if (total >= cap) break;
      }
      if (stack.size() == before && stack.back().next_arc >= arcs.size()) {
        on_path[static_cast<std::size_t>(stack.back().node)] = 0;
        stack.pop_back();
      }
    }
  }
};

}  // namespace

std::int64_t count_paths_bounded(const Graph& g, NodeId src, NodeId dst,
                                 int max_hops, std::int64_t cap,
                                 const std::vector<int>& dist_to_dst) {
  g.check_node(src);
  g.check_node(dst);
  if (src == dst) return 1;  // the empty path
  if (max_hops <= 0) return 0;
  Counter c{g, dst, cap, dist_to_dst,
            std::vector<char>(static_cast<std::size_t>(g.node_count()), 0),
            0};
  c.run(src, max_hops);
  return std::min(c.total, cap);
}

std::int64_t count_paths_bounded(const Graph& g, NodeId src, NodeId dst,
                                 int max_hops, std::int64_t cap) {
  g.check_node(dst);
  return count_paths_bounded(g, src, dst, max_hops, cap,
                             hop_distances(g, dst));
}

std::int64_t count_shortest_paths(const Graph& g, NodeId src, NodeId dst) {
  g.check_node(src);
  g.check_node(dst);
  if (src == dst) return 1;
  const auto dist = hop_distances(g, src);
  const int d_dst = dist[static_cast<std::size_t>(dst)];
  if (d_dst < 0) return 0;

  // Process nodes in increasing BFS distance; count paths over the DAG of
  // edges that go from distance d to d+1.
  std::vector<NodeId> order(static_cast<std::size_t>(g.node_count()));
  for (int i = 0; i < g.node_count(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(b)];
  });

  std::vector<std::int64_t> ways(static_cast<std::size_t>(g.node_count()), 0);
  ways[static_cast<std::size_t>(src)] = 1;
  for (NodeId u : order) {
    const int du = dist[static_cast<std::size_t>(u)];
    if (du < 0 || ways[static_cast<std::size_t>(u)] == 0) continue;
    for (const Arc& a : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(a.to)] == du + 1) {
        ways[static_cast<std::size_t>(a.to)] +=
            ways[static_cast<std::size_t>(u)];
      }
    }
  }
  return ways[static_cast<std::size_t>(dst)];
}

std::int64_t count_progress_next_hops(const Graph& g, NodeId src, NodeId dst,
                                      const std::vector<int>& dist_to_dst) {
  g.check_node(src);
  g.check_node(dst);
  if (src == dst) return 0;
  const int d_src = dist_to_dst[static_cast<std::size_t>(src)];
  if (d_src < 0) return 0;
  std::int64_t n = 0;
  for (const Arc& a : g.neighbors(src)) {
    const int d_nh = dist_to_dst[static_cast<std::size_t>(a.to)];
    if (d_nh >= 0 && d_nh <= d_src) ++n;
  }
  return n;
}

std::int64_t count_progress_next_hops(const Graph& g, NodeId src, NodeId dst) {
  g.check_node(dst);
  return count_progress_next_hops(g, src, dst, hop_distances(g, dst));
}

std::int64_t path_diversity(const Graph& g, NodeId src, NodeId dst,
                            const PathCountOptions& options,
                            const std::vector<int>& dist_to_dst) {
  switch (options.policy) {
    case PathCountPolicy::kShortestPathDag:
      // The DAG DP runs from src, so dst's distance vector does not
      // apply; this policy pays its own BFS.
      return count_shortest_paths(g, src, dst);
    case PathCountPolicy::kNextHopCount:
      return count_progress_next_hops(g, src, dst, dist_to_dst);
    case PathCountPolicy::kBoundedSimplePaths:
      break;
  }
  const int d = dist_to_dst[static_cast<std::size_t>(src)];
  if (src != dst && d < 0) return 0;
  return count_paths_bounded(g, src, dst, d + options.slack, options.cap,
                             dist_to_dst);
}

std::int64_t path_diversity(const Graph& g, NodeId src, NodeId dst,
                            const PathCountOptions& options) {
  if (options.policy == PathCountPolicy::kShortestPathDag) {
    return count_shortest_paths(g, src, dst);
  }
  g.check_node(src);
  g.check_node(dst);
  return path_diversity(g, src, dst, options, hop_distances(g, dst));
}

}  // namespace pm::graph
