#include "graph/path_count.hpp"

#include <algorithm>
#include <vector>

namespace pm::graph {

namespace {

/// DFS state for bounded simple-path counting.
struct Counter {
  const Graph& g;
  NodeId dst;
  std::int64_t cap;
  std::vector<int> dist_to_dst;  // BFS hops to dst, for pruning
  std::vector<char> on_path;
  std::int64_t total = 0;

  void dfs(NodeId u, int budget) {
    if (total >= cap) return;
    if (u == dst) {
      ++total;
      return;
    }
    const int lower_bound = dist_to_dst[static_cast<std::size_t>(u)];
    if (lower_bound < 0 || lower_bound > budget) return;  // cannot reach
    on_path[static_cast<std::size_t>(u)] = 1;
    for (const Arc& a : g.neighbors(u)) {
      if (!on_path[static_cast<std::size_t>(a.to)]) {
        dfs(a.to, budget - 1);
      }
    }
    on_path[static_cast<std::size_t>(u)] = 0;
  }
};

}  // namespace

std::int64_t count_paths_bounded(const Graph& g, NodeId src, NodeId dst,
                                 int max_hops, std::int64_t cap) {
  g.check_node(src);
  g.check_node(dst);
  if (src == dst) return 1;  // the empty path
  if (max_hops <= 0) return 0;
  Counter c{g, dst, cap, hop_distances(g, dst),
            std::vector<char>(static_cast<std::size_t>(g.node_count()), 0),
            0};
  c.dfs(src, max_hops);
  return std::min(c.total, cap);
}

std::int64_t count_shortest_paths(const Graph& g, NodeId src, NodeId dst) {
  g.check_node(src);
  g.check_node(dst);
  if (src == dst) return 1;
  const auto dist = hop_distances(g, src);
  const int d_dst = dist[static_cast<std::size_t>(dst)];
  if (d_dst < 0) return 0;

  // Process nodes in increasing BFS distance; count paths over the DAG of
  // edges that go from distance d to d+1.
  std::vector<NodeId> order(static_cast<std::size_t>(g.node_count()));
  for (int i = 0; i < g.node_count(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(b)];
  });

  std::vector<std::int64_t> ways(static_cast<std::size_t>(g.node_count()), 0);
  ways[static_cast<std::size_t>(src)] = 1;
  for (NodeId u : order) {
    const int du = dist[static_cast<std::size_t>(u)];
    if (du < 0 || ways[static_cast<std::size_t>(u)] == 0) continue;
    for (const Arc& a : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(a.to)] == du + 1) {
        ways[static_cast<std::size_t>(a.to)] +=
            ways[static_cast<std::size_t>(u)];
      }
    }
  }
  return ways[static_cast<std::size_t>(dst)];
}

std::int64_t count_progress_next_hops(const Graph& g, NodeId src, NodeId dst) {
  g.check_node(src);
  g.check_node(dst);
  if (src == dst) return 0;
  const auto dist = hop_distances(g, dst);
  const int d_src = dist[static_cast<std::size_t>(src)];
  if (d_src < 0) return 0;
  std::int64_t n = 0;
  for (const Arc& a : g.neighbors(src)) {
    const int d_nh = dist[static_cast<std::size_t>(a.to)];
    if (d_nh >= 0 && d_nh <= d_src) ++n;
  }
  return n;
}

std::int64_t path_diversity(const Graph& g, NodeId src, NodeId dst,
                            const PathCountOptions& options) {
  switch (options.policy) {
    case PathCountPolicy::kShortestPathDag:
      return count_shortest_paths(g, src, dst);
    case PathCountPolicy::kNextHopCount:
      return count_progress_next_hops(g, src, dst);
    case PathCountPolicy::kBoundedSimplePaths:
      break;
  }
  const auto dist = hop_distances(g, dst);
  const int d = dist[static_cast<std::size_t>(src)];
  if (src != dst && d < 0) return 0;
  return count_paths_bounded(g, src, dst, d + options.slack, options.cap);
}

}  // namespace pm::graph
