// Dijkstra shortest paths with deterministic tie-breaking.
//
// Flow forwarding paths must be reproducible across runs and platforms, so
// ties on distance are broken toward the lexicographically smallest path
// (smallest predecessor id). OSPF implementations break ECMP ties by
// similar deterministic rules.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pm::graph {

struct DijkstraResult {
  /// dist[v]: weighted distance from the source; infinity if unreachable.
  std::vector<double> dist;
  /// parent[v]: predecessor on the chosen shortest path; -1 for the source
  /// and for unreachable nodes.
  std::vector<NodeId> parent;
};

/// Single-source shortest paths from `src` over nonnegative edge weights.
DijkstraResult dijkstra(const Graph& g, NodeId src);

/// The deterministic shortest path src -> dst as a node sequence
/// (inclusive of both endpoints). Empty if dst is unreachable.
/// A path from a node to itself is the single-node sequence {src}.
std::vector<NodeId> shortest_path(const Graph& g, NodeId src, NodeId dst);

/// Reconstructs the path to `dst` from a DijkstraResult computed at some
/// source. Empty if unreachable.
std::vector<NodeId> extract_path(const DijkstraResult& r, NodeId dst);

/// Sum of edge weights along `path` in `g`. Throws if the path uses a
/// nonexistent edge. A path of fewer than 2 nodes has length 0.
double path_length(const Graph& g, const std::vector<NodeId>& path);

}  // namespace pm::graph
