#include "graph/graph.hpp"

#include <queue>
#include <string>

namespace pm::graph {

Graph::Graph(int node_count) {
  if (node_count < 0) {
    throw std::invalid_argument("node_count must be nonnegative");
  }
  adj_.resize(static_cast<std::size_t>(node_count));
}

void Graph::check_node(NodeId u) const {
  if (u < 0 || u >= node_count()) {
    throw std::invalid_argument("node id " + std::to_string(u) +
                                " out of range [0, " +
                                std::to_string(node_count()) + ")");
  }
}

void Graph::add_edge(NodeId u, NodeId v, double w) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("self-loops are not allowed");
  if (w < 0.0) throw std::invalid_argument("negative edge weight");
  if (has_edge(u, v)) {
    throw std::invalid_argument("duplicate edge {" + std::to_string(u) +
                                ", " + std::to_string(v) + "}");
  }
  edges_.emplace(key(u, v), w);
  adj_[static_cast<std::size_t>(u)].push_back({v, w});
  adj_[static_cast<std::size_t>(v)].push_back({u, w});
  edge_list_.push_back({std::min(u, v), std::max(u, v), w});
  ++epoch_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  return edges_.contains(key(u, v));
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto it = edges_.find(key(u, v));
  if (it == edges_.end()) {
    throw std::out_of_range("edge {" + std::to_string(u) + ", " +
                            std::to_string(v) + "} not present");
  }
  return it->second;
}

const std::vector<Arc>& Graph::neighbors(NodeId u) const {
  check_node(u);
  return adj_[static_cast<std::size_t>(u)];
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto hops = hop_distances(g, 0);
  for (int h : hops) {
    if (h < 0) return false;
  }
  return true;
}

std::vector<int> hop_distances(const Graph& g, NodeId src) {
  g.check_node(src);
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Arc& a : g.neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(a.to)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        q.push(a.to);
      }
    }
  }
  return dist;
}

}  // namespace pm::graph
