#include "graph/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/profile.hpp"

namespace pm::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DijkstraResult dijkstra(const Graph& g, NodeId src) {
  OBS_SPAN("graph.dijkstra");
  g.check_node(src);
  const auto n = static_cast<std::size_t>(g.node_count());
  DijkstraResult r;
  r.dist.assign(n, kInf);
  r.parent.assign(n, -1);
  r.dist[static_cast<std::size_t>(src)] = 0.0;

  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.push({0.0, src});

  std::vector<char> settled(n, 0);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    auto& done = settled[static_cast<std::size_t>(u)];
    if (done) continue;
    done = 1;
    for (const Arc& a : g.neighbors(u)) {
      const auto vi = static_cast<std::size_t>(a.to);
      const double nd = d + a.weight;
      if (nd < r.dist[vi] ||
          (nd == r.dist[vi] && r.parent[vi] > u)) {
        // Strictly shorter, or an equal-length path through a smaller
        // predecessor id: keeps the chosen path deterministic.
        r.dist[vi] = nd;
        r.parent[vi] = u;
        pq.push({nd, a.to});
      }
    }
  }
  return r;
}

std::vector<NodeId> extract_path(const DijkstraResult& r, NodeId dst) {
  const auto di = static_cast<std::size_t>(dst);
  if (di >= r.dist.size() || r.dist[di] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != -1; v = r.parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId src, NodeId dst) {
  g.check_node(dst);
  if (src == dst) return {src};
  return extract_path(dijkstra(g, src), dst);
}

double path_length(const Graph& g, const std::vector<NodeId>& path) {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += g.edge_weight(path[i - 1], path[i]);
  }
  return total;
}

}  // namespace pm::graph
