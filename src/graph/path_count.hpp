// Path-diversity counting — the quantity the paper calls p_i^l, "the number
// of paths from switch s_i's next hops to f^l's destination" (Sec. IV-B-3).
//
// Counting *all* simple paths is #P-hard and yields astronomically large
// values on a 112-link backbone, so the library offers three bounded
// policies (DESIGN.md, substitution 3):
//
//  * BoundedSimplePaths (default, with slack 1 and cap 4): simple paths
//    whose hop count is at most hop_distance(src, dst) + slack, counted
//    up to `cap`. This matches the counts on the paper's Fig. 1 example
//    (detours one hop longer than the shortest route qualify), and the
//    low cap reflects how production TE systems actually use path
//    diversity — a flow keeps a small set of precomputed alternatives
//    (k-shortest-path routing, k = 4 in SWAN-style systems), so more
//    nominal diversity adds no programmability. Empirically this
//    combination reproduces the paper's evaluation shape best: PM ~ PG ~
//    Optimal >> RetroFlow, full recovery under 1-2 failures, scarcity
//    (60-100% recovery) under 3 (see bench/ablation_design).
//  * ShortestPathDag: number of hop-shortest paths over the BFS DAG —
//    the ECMP-style reading. Cheapest; blind to detours.
//  * NextHopCount: number of neighbors that make progress toward the
//    destination (their hop distance does not increase). The coarsest view.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pm::graph {

enum class PathCountPolicy {
  kBoundedSimplePaths,
  kShortestPathDag,
  kNextHopCount,
};

struct PathCountOptions {
  PathCountPolicy policy = PathCountPolicy::kBoundedSimplePaths;
  /// Extra hops allowed beyond the BFS distance for kBoundedSimplePaths
  /// (a detour may be this many hops longer than the shortest route).
  int slack = 1;
  /// Diversity beyond this many paths adds no programmability (a
  /// controller keeps at most this many precomputed alternatives per
  /// flow, as in k-shortest-path TE systems).
  std::int64_t cap = 4;
};

/// Number of simple paths src -> dst with at most `max_hops` edges.
/// Exact (subject to options.cap); exponential in the worst case but pruned
/// by per-node BFS lower bounds, which keeps WAN-scale graphs fast.
/// The traversal is iterative (explicit stack) and fully re-entrant.
std::int64_t count_paths_bounded(const Graph& g, NodeId src, NodeId dst,
                                 int max_hops,
                                 std::int64_t cap = 1'000'000);

/// As above with `hop_distances(g, dst)` precomputed by the caller — the
/// per-call BFS dominates when sweeping many sources against one
/// destination (graph::DiversityCache does exactly that).
std::int64_t count_paths_bounded(const Graph& g, NodeId src, NodeId dst,
                                 int max_hops, std::int64_t cap,
                                 const std::vector<int>& dist_to_dst);

/// Number of hop-shortest paths src -> dst (DAG DP). 0 if unreachable.
std::int64_t count_shortest_paths(const Graph& g, NodeId src, NodeId dst);

/// Number of neighbors of src whose BFS distance to dst is <= src's own.
/// 0 when src == dst or dst unreachable.
std::int64_t count_progress_next_hops(const Graph& g, NodeId src, NodeId dst);

/// As above with dst's hop-distance vector precomputed.
std::int64_t count_progress_next_hops(const Graph& g, NodeId src, NodeId dst,
                                      const std::vector<int>& dist_to_dst);

/// Dispatches on options.policy. For kBoundedSimplePaths the hop budget is
/// hop_distance(src, dst) + options.slack.
std::int64_t path_diversity(const Graph& g, NodeId src, NodeId dst,
                            const PathCountOptions& options = {});

/// As above with dst's hop-distance vector precomputed (ignored by the
/// kShortestPathDag policy, whose DP runs from src).
std::int64_t path_diversity(const Graph& g, NodeId src, NodeId dst,
                            const PathCountOptions& options,
                            const std::vector<int>& dist_to_dst);

}  // namespace pm::graph
