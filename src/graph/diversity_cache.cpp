#include "graph/diversity_cache.hpp"

namespace pm::graph {

void DiversityCache::sync(const Graph& g) {
  if (graph_ == &g && epoch_ == g.epoch() &&
      dist_.size() == static_cast<std::size_t>(g.node_count())) {
    return;
  }
  graph_ = &g;
  epoch_ = g.epoch();
  dist_.assign(static_cast<std::size_t>(g.node_count()), {});
  memo_.assign(static_cast<std::size_t>(g.node_count()), {});
}

void DiversityCache::clear() {
  graph_ = nullptr;
  epoch_ = 0;
  dist_.clear();
  memo_.clear();
}

const std::vector<int>& DiversityCache::distances(const Graph& g,
                                                  NodeId dst) {
  g.check_node(dst);
  sync(g);
  auto& d = dist_[static_cast<std::size_t>(dst)];
  if (d.empty() && g.node_count() > 0) d = hop_distances(g, dst);
  return d;
}

std::int64_t DiversityCache::diversity(const Graph& g, NodeId src,
                                       NodeId dst) {
  g.check_node(src);
  g.check_node(dst);
  sync(g);
  auto& row = memo_[static_cast<std::size_t>(dst)];
  if (row.empty()) {
    row.assign(static_cast<std::size_t>(g.node_count()), -1);
  }
  auto& slot = row[static_cast<std::size_t>(src)];
  if (slot >= 0) {
    ++hits_;
    return slot;
  }
  ++misses_;
  slot = path_diversity(g, src, dst, options_, distances(g, dst));
  return slot;
}

}  // namespace pm::graph
