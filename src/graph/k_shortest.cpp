#include "graph/k_shortest.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "graph/shortest_path.hpp"
#include "obs/profile.hpp"

namespace pm::graph {

namespace {

/// Dijkstra on `g` with some edges and nodes masked out.
std::vector<NodeId> masked_shortest_path(
    const Graph& g, NodeId src, NodeId dst,
    const std::set<std::pair<NodeId, NodeId>>& removed_edges,
    const std::vector<char>& removed_nodes) {
  const auto n = static_cast<std::size_t>(g.node_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> parent(n, -1);
  std::vector<char> settled(n, 0);
  if (removed_nodes[static_cast<std::size_t>(src)]) return {};

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.push({0.0, src});
  auto edge_key = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    auto& done = settled[static_cast<std::size_t>(u)];
    if (done) continue;
    done = 1;
    for (const Arc& a : g.neighbors(u)) {
      if (removed_nodes[static_cast<std::size_t>(a.to)]) continue;
      if (removed_edges.contains(edge_key(u, a.to))) continue;
      const auto vi = static_cast<std::size_t>(a.to);
      const double nd = d + a.weight;
      if (nd < dist[vi] || (nd == dist[vi] && parent[vi] > u)) {
        dist[vi] = nd;
        parent[vi] = u;
        pq.push({nd, a.to});
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<std::vector<NodeId>> k_shortest_paths(const Graph& g, NodeId src,
                                                  NodeId dst, int k) {
  OBS_SPAN("graph.yen");
  g.check_node(src);
  g.check_node(dst);
  std::vector<std::vector<NodeId>> result;
  if (k <= 0) return result;
  if (src == dst) return {{src}};

  auto first = shortest_path(g, src, dst);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Candidate set ordered by (length, node sequence).
  auto cmp = [&g](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
    const double la = path_length(g, a);
    const double lb = path_length(g, b);
    if (la != lb) return la < lb;
    return a < b;
  };
  std::set<std::vector<NodeId>, decltype(cmp)> candidates(cmp);

  while (static_cast<int>(result.size()) < k) {
    const auto& prev = result.back();
    // Spur from every node of the previous path except the last.
    for (std::size_t spur_idx = 0; spur_idx + 1 < prev.size(); ++spur_idx) {
      const NodeId spur = prev[spur_idx];
      std::vector<NodeId> root(prev.begin(),
                               prev.begin() + static_cast<long>(spur_idx) + 1);

      std::set<std::pair<NodeId, NodeId>> removed_edges;
      for (const auto& p : result) {
        if (p.size() > spur_idx + 1 &&
            std::equal(root.begin(), root.end(), p.begin())) {
          const NodeId a = p[spur_idx];
          const NodeId b = p[spur_idx + 1];
          removed_edges.insert(a < b ? std::pair{a, b} : std::pair{b, a});
        }
      }
      std::vector<char> removed_nodes(
          static_cast<std::size_t>(g.node_count()), 0);
      for (std::size_t i = 0; i < spur_idx; ++i) {
        removed_nodes[static_cast<std::size_t>(prev[i])] = 1;
      }

      auto spur_path = masked_shortest_path(g, spur, dst, removed_edges,
                                            removed_nodes);
      if (spur_path.empty()) continue;
      root.pop_back();  // spur node is the head of spur_path
      root.insert(root.end(), spur_path.begin(), spur_path.end());
      if (std::find(result.begin(), result.end(), root) == result.end()) {
        candidates.insert(std::move(root));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace pm::graph
