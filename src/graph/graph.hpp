// Undirected weighted graph used for WAN backbones.
//
// Nodes are dense integer ids [0, node_count). Edge weights model
// propagation delay (or any nonnegative cost); hop-based algorithms ignore
// them. The graph is deliberately simple — WAN topologies are tiny (tens of
// nodes), so adjacency lists plus an edge map cover every access pattern the
// algorithms need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pm::graph {

using NodeId = int;

/// One directed half of an undirected edge as seen from its endpoint.
struct Arc {
  NodeId to = 0;
  double weight = 1.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int node_count);

  int node_count() const { return static_cast<int>(adj_.size()); }

  /// Number of undirected edges.
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds the undirected edge {u, v} with weight `w`.
  /// Throws std::invalid_argument on self-loops, duplicate edges,
  /// out-of-range endpoints or negative weight.
  void add_edge(NodeId u, NodeId v, double w = 1.0);

  /// Structural revision counter: bumped on every mutation (add_edge).
  /// Derived caches (graph::DiversityCache) key their entries on it so a
  /// mutated graph invalidates them instead of serving stale answers.
  std::uint64_t epoch() const { return epoch_; }

  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; throws std::out_of_range if absent.
  double edge_weight(NodeId u, NodeId v) const;

  const std::vector<Arc>& neighbors(NodeId u) const;

  /// All undirected edges as (u, v, weight) with u < v, in insertion order.
  struct EdgeRecord {
    NodeId u = 0;
    NodeId v = 0;
    double weight = 1.0;
  };
  const std::vector<EdgeRecord>& edges() const { return edge_list_; }

  int degree(NodeId u) const {
    return static_cast<int>(neighbors(u).size());
  }

  void check_node(NodeId u) const;

 private:
  static std::pair<NodeId, NodeId> key(NodeId u, NodeId v) {
    return u < v ? std::pair{u, v} : std::pair{v, u};
  }

  std::vector<std::vector<Arc>> adj_;
  std::map<std::pair<NodeId, NodeId>, double> edges_;
  std::vector<EdgeRecord> edge_list_;
  std::uint64_t epoch_ = 0;
};

/// True if every node is reachable from node 0 (or the graph is empty).
bool is_connected(const Graph& g);

/// Hop counts from `src` to every node by BFS; unreachable nodes get -1.
std::vector<int> hop_distances(const Graph& g, NodeId src);

}  // namespace pm::graph
