// Yen's algorithm for k shortest loopless paths.
//
// Used by the rerouting examples (a programmable flow picks among its k
// best paths) and as an independent cross-check for the path-diversity
// counters in tests.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pm::graph {

/// Up to `k` loopless paths src -> dst ordered by increasing weighted
/// length (ties broken lexicographically by node sequence). Fewer than `k`
/// are returned when the graph does not contain that many simple paths.
std::vector<std::vector<NodeId>> k_shortest_paths(const Graph& g, NodeId src,
                                                  NodeId dst, int k);

}  // namespace pm::graph
