// Epoch-guarded memo cache for the path-diversity hot path.
//
// sdwan::Network evaluates path_diversity(i, dst) for every switch of every
// flow path — tens of thousands of queries on an all-pairs flow set, but
// against only O(n) distinct destinations. Each uncached path_diversity call
// pays a fresh BFS from dst before the bounded DFS; this cache computes the
// per-destination hop-distance vector once and memoizes the (src, dst)
// diversity result, so repeated queries cost one vector lookup.
//
// Entries are keyed on Graph::epoch(): any structural mutation (add_edge)
// invalidates the whole cache on the next query, so a cache can outlive
// graph construction without ever serving stale counts.
//
// The cache is NOT internally synchronized. Each thread (each
// sdwan::Network under construction, each pool worker building its own
// scenario) owns its own instance; sharing one across threads requires
// external locking.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/path_count.hpp"

namespace pm::graph {

class DiversityCache {
 public:
  explicit DiversityCache(PathCountOptions options = {})
      : options_(options) {}

  const PathCountOptions& options() const { return options_; }

  /// Memoized path_diversity(g, src, dst, options()). First query against a
  /// given dst computes and caches hop_distances(g, dst); later queries for
  /// any src reuse it.
  std::int64_t diversity(const Graph& g, NodeId src, NodeId dst);

  /// The cached hop-distance vector from every node to `dst` (computing it
  /// on first use). Valid until the next mutation of `g` or query against a
  /// different graph.
  const std::vector<int>& distances(const Graph& g, NodeId dst);

  /// Drops every entry. Automatic on epoch/graph change; exposed for tests.
  void clear();

  /// Cache-effectiveness counters (for perf_gate and tests).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  /// Rebinds the cache to (g, g.epoch()), clearing it if either changed.
  void sync(const Graph& g);

  PathCountOptions options_;
  const Graph* graph_ = nullptr;  // identity only; never dereferenced stale
  std::uint64_t epoch_ = 0;
  std::vector<std::vector<int>> dist_;        // [dst] -> hops; empty = unset
  std::vector<std::vector<std::int64_t>> memo_;  // [dst][src]; -1 = unset
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pm::graph
