// Controller placement for topologies without a published layout —
// needed by the custom-topology workflows and by the related-work RCP
// experiments (Sec. VII-A cites reliable-controller-placement studies).
//
// Two deterministic strategies over graph propagation delays:
//   * k_center_domains — greedy farthest-point: minimizes (2-approx) the
//     worst switch-to-controller delay; the classic latency-driven
//     placement.
//   * balanced_domains — k-center seeds, then switches join the nearest
//     controller whose domain is below the size cap, equalizing control
//     load at a small delay cost.
#pragma once

#include <map>
#include <vector>

#include "topo/topology.hpp"

namespace pm::topo {

using Domains = std::map<graph::NodeId, std::vector<graph::NodeId>>;

/// Greedy k-center placement; returns controller node -> domain members.
/// Throws std::invalid_argument unless 1 <= k <= node_count.
Domains k_center_domains(const Topology& topo, int k);

/// k-center seeds with a max domain size of ceil(n / k) + slack.
Domains balanced_domains(const Topology& topo, int k, int slack = 1);

/// The worst switch-to-controller shortest-path delay of a placement.
double worst_case_delay_ms(const Topology& topo, const Domains& domains);

}  // namespace pm::topo
