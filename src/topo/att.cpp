#include "topo/att.hpp"

#include <array>

namespace pm::topo {

namespace {

struct City {
  const char* label;
  double lat;
  double lon;
};

// Node ids follow the paper's Table III domain layout:
//   C6  (Philadelphia) : {0, 1, 6, 7}              — Northeast
//   C2  (Chicago)      : {2, 3, 9, 16}             — Great Lakes
//   C5  (Atlanta)      : {4, 5, 8, 14}             — Southeast
//   C13 (Dallas)       : {10, 11, 12, 13, 15}      — Central/South
//   C20 (Denver)       : {19, 20}                  — Mountain
//   C22 (San Francisco): {17, 18, 21, 22, 23, 24}  — West
constexpr std::array<City, 25> kCities = {{
    {"New York", 40.71, -74.01},       // 0
    {"Boston", 42.36, -71.06},         // 1
    {"Chicago", 41.88, -87.63},        // 2
    {"Detroit", 42.33, -83.05},        // 3
    {"Orlando", 28.54, -81.38},        // 4
    {"Atlanta", 33.75, -84.39},        // 5
    {"Philadelphia", 39.95, -75.17},   // 6
    {"Washington DC", 38.91, -77.04},  // 7
    {"Nashville", 36.16, -86.78},      // 8
    {"Cleveland", 41.50, -81.69},      // 9
    {"St. Louis", 38.63, -90.20},      // 10
    {"Kansas City", 39.10, -94.58},    // 11
    {"Houston", 29.76, -95.37},        // 12
    {"Dallas", 32.78, -96.80},         // 13
    {"Charlotte", 35.23, -80.84},      // 14
    {"New Orleans", 29.95, -90.07},    // 15
    {"Indianapolis", 39.77, -86.16},   // 16
    {"Los Angeles", 34.05, -118.24},   // 17
    {"San Diego", 32.72, -117.16},     // 18
    {"Salt Lake City", 40.76, -111.89},// 19
    {"Denver", 39.74, -104.99},        // 20
    {"Seattle", 47.61, -122.33},       // 21
    {"San Francisco", 37.77, -122.42}, // 22
    {"Portland", 45.52, -122.68},      // 23
    {"Phoenix", 33.45, -112.07},       // 24
}};

// 56 undirected links (112 directed, as the paper counts them).
//
// The layout is calibrated so shortest-delay routing reproduces the shape
// of Table III: node 13 (Dallas) is the sole east-west long-haul corridor
// (together with its spokes to Chicago, Atlanta, LA, Phoenix and San
// Diego), while the mountain domain {19, 20} hangs off the corridor
// without offering a competitive through-route, keeping its transit load
// tiny. Every link lies on a 3- or 4-cycle so that a flow between adjacent
// nodes still has a second (detour) path within the bounded path-count
// budget — i.e. beta can be 1 at the flow's source.
constexpr std::array<std::pair<int, int>, 56> kLinks = {{
    // Northeast
    {0, 1},   {0, 6},   {6, 7},   {1, 3},   {0, 9},   {1, 9},
    {7, 9},   {6, 9},   {7, 14},  {5, 7},   {1, 7},
    // Great Lakes / Midwest
    {9, 3},   {2, 3},   {2, 9},   {9, 16},  {2, 16},  {2, 0},
    {2, 10},  {2, 11},  {2, 13},  {10, 11}, {10, 13}, {11, 13},
    {3, 16},  {11, 16}, {11, 12}, {9, 14},
    // Southeast
    {14, 5},  {5, 8},   {14, 8},  {5, 4},   {4, 14},  {4, 15},
    {5, 15},  {5, 13},  {12, 5},  {2, 5},
    // South / Central (the Dallas corridor)
    {13, 12}, {13, 15}, {12, 15}, {13, 24}, {12, 24}, {13, 17},
    {13, 20}, {18, 13}, {12, 4},
    // Mountain (spur off the corridor; no competitive through-route)
    {11, 20}, {19, 20}, {19, 24},
    // West
    {17, 22}, {17, 18}, {24, 17}, {22, 23}, {21, 23}, {21, 22},
    {22, 18},
}};

}  // namespace

Topology att_topology() {
  Topology topo("ATT-like US backbone (synthesized, see DESIGN.md)");
  for (const City& c : kCities) {
    topo.add_node({c.label, c.lat, c.lon});
  }
  for (const auto& [u, v] : kLinks) {
    topo.add_link(u, v);
  }
  return topo;
}

std::map<graph::NodeId, std::vector<graph::NodeId>> att_domains() {
  return {
      {2, {2, 3, 9, 16}},
      {5, {4, 5, 8, 14}},
      {6, {0, 1, 6, 7}},
      {13, {10, 11, 12, 13, 15}},
      {20, {19, 20}},
      {22, {17, 18, 21, 22, 23, 24}},
  };
}

std::vector<int> att_paper_flow_counts() {
  // Table III, indexed by switch/node id 0..24.
  return {81, 49, 143, 71, 49, 143, 89, 97, 53, 107, 63, 59, 71,
          213, 61, 67, 55, 125, 49, 49, 63, 81, 111, 49, 57};
}

std::vector<graph::NodeId> att_controller_nodes() {
  return {2, 5, 6, 13, 20, 22};
}

}  // namespace pm::topo
