// The embedded ATT-like US backbone used throughout the evaluation.
//
// The paper evaluates on the Topology Zoo "ATT" backbone: 25 nodes, 112
// directed (56 undirected) links, with six controllers placed at nodes
// {2, 5, 6, 13, 20, 22} (Table III). The original Zoo GML file is not
// redistributable here, so this module synthesizes a 25-node backbone over
// real US-city coordinates with the same controller placement and the same
// domain membership as Table III, calibrated so that all-pairs
// shortest-path routing makes node 13 the dominant transit hub — the
// structural property that drives the paper's headline results
// (DESIGN.md, substitution 1). A real Zoo file can be loaded with
// topo::load_gml_file() instead.
#pragma once

#include <map>
#include <vector>

#include "topo/topology.hpp"

namespace pm::topo {

/// The 25-node / 56-link embedded backbone.
Topology att_topology();

/// Controller placement of Table III: controller node id -> the switch
/// node ids of its domain. Every switch appears in exactly one domain and
/// each controller node is inside its own domain.
std::map<graph::NodeId, std::vector<graph::NodeId>> att_domains();

/// Per-switch flow counts reported in the paper's Table III, indexed by
/// node id. Used by benches to print paper-vs-measured side by side.
std::vector<int> att_paper_flow_counts();

/// The controller node ids, ascending: {2, 5, 6, 13, 20, 22}.
std::vector<graph::NodeId> att_controller_nodes();

}  // namespace pm::topo
