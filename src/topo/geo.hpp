// Geographic helpers: Haversine great-circle distance and the
// distance -> propagation-delay conversion the paper uses (Sec. VI-A):
// delay = distance / 2e8 m/s.
#pragma once

namespace pm::topo {

/// Mean Earth radius in kilometers (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0;

/// Signal propagation speed in fiber, meters per second (paper's value).
inline constexpr double kPropagationSpeedMps = 2.0e8;

/// Great-circle distance in km between two (latitude, longitude) points
/// given in degrees, by the Haversine formula.
double haversine_km(double lat1_deg, double lon1_deg, double lat2_deg,
                    double lon2_deg);

/// One-way propagation delay in milliseconds over `distance_km` of fiber.
double propagation_delay_ms(double distance_km);

}  // namespace pm::topo
