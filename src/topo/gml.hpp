// Parser for the GML dialect used by the Internet Topology Zoo [18].
//
// A Topology Zoo file looks like:
//
//   graph [
//     label "Att North America"
//     node [ id 0  label "New York"  Latitude 40.71  Longitude -74.0 ]
//     edge [ source 0  target 1 ]
//   ]
//
// The parser builds a generic key/value tree first and then interprets the
// graph/node/edge records, so files with vendor-specific extra keys load
// fine. Quirks of real Zoo files are handled: duplicate edges and
// self-loops are skipped, nodes without coordinates get delay-1ms links,
// non-contiguous node ids are compacted.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "topo/topology.hpp"

namespace pm::topo {

/// Error with line information for malformed GML input.
class GmlError : public std::runtime_error {
 public:
  GmlError(const std::string& message, int line)
      : std::runtime_error("GML parse error (line " + std::to_string(line) +
                           "): " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses GML text into a Topology. Throws GmlError on malformed input.
Topology parse_gml(const std::string& text);

/// Loads a GML file from disk. Throws std::runtime_error if unreadable.
Topology load_gml_file(const std::string& path);

/// Serializes a Topology back to GML (round-trips through parse_gml).
std::string to_gml(const Topology& topo);

}  // namespace pm::topo
