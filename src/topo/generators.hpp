// Synthetic WAN generators for scalability sweeps and property tests.
//
// All generators are deterministic for a given seed and always return a
// connected topology (a spanning structure is added first, probabilistic
// extra links second).
#pragma once

#include <cstdint>

#include "topo/topology.hpp"

namespace pm::topo {

/// Waxman random graph over nodes placed uniformly in a square of side
/// `side_km`: edge (u, v) exists with probability
/// alpha * exp(-d(u,v) / (beta * L)), L = max pairwise distance.
/// Nodes are placed on a flat plane; coordinates are stored as pseudo
/// lat/lon so propagation delays still follow distance.
Topology waxman(int nodes, double alpha, double beta, std::uint64_t seed,
                double side_km = 4000.0);

/// Random geometric graph: connect all pairs within `radius_km`.
Topology random_geometric(int nodes, double radius_km, std::uint64_t seed,
                          double side_km = 4000.0);

/// Ring of `nodes` plus `chords` random chords — a minimal diverse-path
/// backbone useful in unit tests.
Topology ring_with_chords(int nodes, int chords, std::uint64_t seed);

}  // namespace pm::topo
