#include "topo/geo.hpp"

#include <cmath>

namespace pm::topo {

namespace {
constexpr double kPi = 3.14159265358979323846;

double to_radians(double deg) { return deg * kPi / 180.0; }
}  // namespace

double haversine_km(double lat1_deg, double lon1_deg, double lat2_deg,
                    double lon2_deg) {
  const double lat1 = to_radians(lat1_deg);
  const double lat2 = to_radians(lat2_deg);
  const double dlat = to_radians(lat2_deg - lat1_deg);
  const double dlon = to_radians(lon2_deg - lon1_deg);
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  const double c = 2 * std::atan2(std::sqrt(a), std::sqrt(1 - a));
  return kEarthRadiusKm * c;
}

double propagation_delay_ms(double distance_km) {
  const double meters = distance_km * 1000.0;
  const double seconds = meters / kPropagationSpeedMps;
  return seconds * 1000.0;
}

}  // namespace pm::topo
