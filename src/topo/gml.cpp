#include "topo/gml.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <variant>
#include <vector>

#include "util/strings.hpp"

namespace pm::topo {

namespace {

// ---------------------------------------------------------------------
// Generic GML value tree.
// ---------------------------------------------------------------------

struct GmlList;
using GmlValue = std::variant<long long, double, std::string,
                              std::unique_ptr<GmlList>>;

struct GmlEntry {
  std::string key;
  GmlValue value;
};

struct GmlList {
  std::vector<GmlEntry> entries;

  const GmlEntry* find(std::string_view key) const {
    for (const auto& e : entries) {
      if (e.key == key) return &e;
    }
    return nullptr;
  }
};

struct Token {
  enum class Kind { kWord, kString, kOpen, kClose, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return {Token::Kind::kEnd, "", line_};
    const char c = text_[pos_];
    if (c == '[') {
      ++pos_;
      return {Token::Kind::kOpen, "[", line_};
    }
    if (c == ']') {
      ++pos_;
      return {Token::Kind::kClose, "]", line_};
    }
    if (c == '"') return lex_string();
    return lex_word();
  }

  int line() const { return line_; }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token lex_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      throw GmlError("unterminated string", start_line);
    }
    ++pos_;  // closing quote
    return {Token::Kind::kString, std::move(out), start_line};
  }

  Token lex_word() {
    const int start_line = line_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '[' ||
          c == ']' || c == '"') {
        break;
      }
      out += c;
      ++pos_;
    }
    return {Token::Kind::kWord, std::move(out), start_line};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { advance(); }

  GmlList parse_top_level() {
    GmlList list;
    while (tok_.kind != Token::Kind::kEnd) {
      list.entries.push_back(parse_entry());
    }
    return list;
  }

 private:
  void advance() { tok_ = lexer_.next(); }

  GmlEntry parse_entry() {
    if (tok_.kind != Token::Kind::kWord) {
      throw GmlError("expected key, got '" + tok_.text + "'", tok_.line);
    }
    GmlEntry entry;
    entry.key = tok_.text;
    advance();
    switch (tok_.kind) {
      case Token::Kind::kOpen: {
        advance();
        auto sub = std::make_unique<GmlList>();
        while (tok_.kind != Token::Kind::kClose) {
          if (tok_.kind == Token::Kind::kEnd) {
            throw GmlError("unterminated list for key '" + entry.key + "'",
                           tok_.line);
          }
          sub->entries.push_back(parse_entry());
        }
        advance();  // consume ']'
        entry.value = std::move(sub);
        return entry;
      }
      case Token::Kind::kString:
        entry.value = tok_.text;
        advance();
        return entry;
      case Token::Kind::kWord: {
        long long i = 0;
        double d = 0.0;
        if (util::parse_int(tok_.text, i)) {
          entry.value = i;
        } else if (util::parse_double(tok_.text, d)) {
          entry.value = d;
        } else {
          entry.value = tok_.text;  // bare word, e.g. a hostname
        }
        advance();
        return entry;
      }
      default:
        throw GmlError("expected value for key '" + entry.key + "'",
                       tok_.line);
    }
  }

  Lexer lexer_;
  Token tok_;
};

double as_double(const GmlValue& v, double fallback) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<long long>(&v)) return static_cast<double>(*i);
  return fallback;
}

long long as_int(const GmlValue& v, long long fallback) {
  if (const auto* i = std::get_if<long long>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<long long>(*d);
  return fallback;
}

std::string as_string(const GmlValue& v, std::string fallback) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* i = std::get_if<long long>(&v)) return std::to_string(*i);
  return fallback;
}

}  // namespace

Topology parse_gml(const std::string& text) {
  Parser parser(text);
  const GmlList top = parser.parse_top_level();

  const GmlEntry* graph_entry = top.find("graph");
  if (graph_entry == nullptr ||
      !std::holds_alternative<std::unique_ptr<GmlList>>(graph_entry->value)) {
    throw GmlError("no 'graph [...]' block found", 1);
  }
  const GmlList& g = *std::get<std::unique_ptr<GmlList>>(graph_entry->value);

  Topology topo;
  if (const GmlEntry* label = g.find("label")) {
    topo.set_name(as_string(label->value, ""));
  } else if (const GmlEntry* net = g.find("Network")) {
    topo.set_name(as_string(net->value, ""));
  }

  // First pass: nodes. Zoo files may have gaps in ids, so remap to dense.
  std::map<long long, graph::NodeId> id_map;
  bool any_coordinates = false;
  for (const auto& e : g.entries) {
    if (e.key != "node") continue;
    const auto* sub = std::get_if<std::unique_ptr<GmlList>>(&e.value);
    if (sub == nullptr) throw GmlError("'node' is not a block", 1);
    const GmlList& n = **sub;
    const GmlEntry* id = n.find("id");
    if (id == nullptr) throw GmlError("node without id", 1);
    Node node;
    if (const GmlEntry* label = n.find("label")) {
      node.label = as_string(label->value, "");
    }
    if (const GmlEntry* lat = n.find("Latitude")) {
      node.latitude = as_double(lat->value, 0.0);
      any_coordinates = true;
    }
    if (const GmlEntry* lon = n.find("Longitude")) {
      node.longitude = as_double(lon->value, 0.0);
      any_coordinates = true;
    }
    const long long raw_id = as_int(id->value, -1);
    if (id_map.contains(raw_id)) {
      throw GmlError("duplicate node id " + std::to_string(raw_id), 1);
    }
    id_map[raw_id] = topo.add_node(std::move(node));
  }

  // Second pass: edges. Self-loops and duplicates (both present in real Zoo
  // files) are skipped.
  for (const auto& e : g.entries) {
    if (e.key != "edge") continue;
    const auto* sub = std::get_if<std::unique_ptr<GmlList>>(&e.value);
    if (sub == nullptr) throw GmlError("'edge' is not a block", 1);
    const GmlList& ed = **sub;
    const GmlEntry* src = ed.find("source");
    const GmlEntry* dst = ed.find("target");
    if (src == nullptr || dst == nullptr) {
      throw GmlError("edge without source/target", 1);
    }
    const auto s_it = id_map.find(as_int(src->value, -1));
    const auto t_it = id_map.find(as_int(dst->value, -1));
    if (s_it == id_map.end() || t_it == id_map.end()) {
      throw GmlError("edge references unknown node", 1);
    }
    const graph::NodeId u = s_it->second;
    const graph::NodeId v = t_it->second;
    if (u == v || topo.graph().has_edge(u, v)) continue;
    if (any_coordinates) {
      topo.add_link(u, v);
    } else {
      topo.add_link_with_delay(u, v, 1.0);
    }
  }
  return topo;
}

Topology load_gml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open GML file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_gml(buf.str());
}

std::string to_gml(const Topology& topo) {
  std::ostringstream out;
  out.precision(10);
  out << "graph [\n";
  out << "  label \"" << topo.name() << "\"\n";
  out << "  directed 0\n";
  for (int i = 0; i < topo.node_count(); ++i) {
    const Node& n = topo.node(i);
    out << "  node [\n    id " << i << "\n    label \"" << n.label
        << "\"\n    Latitude " << n.latitude << "\n    Longitude "
        << n.longitude << "\n  ]\n";
  }
  for (const auto& e : topo.graph().edges()) {
    out << "  edge [\n    source " << e.u << "\n    target " << e.v
        << "\n  ]\n";
  }
  out << "]\n";
  return out.str();
}

}  // namespace pm::topo
