#include "topo/generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "topo/geo.hpp"

namespace pm::topo {

namespace {

/// Places `n` nodes uniformly in a side_km x side_km square, expressed as
/// small lat/lon offsets around a reference point so that haversine-based
/// delays approximate planar distance.
std::vector<Node> place_nodes(int n, double side_km, std::mt19937_64& rng) {
  // 1 degree latitude ~ 111.19 km at the reference latitude.
  constexpr double kRefLat = 39.0;
  constexpr double kKmPerDegLat = 111.19;
  const double km_per_deg_lon =
      kKmPerDegLat * std::cos(kRefLat * 3.14159265358979323846 / 180.0);
  std::uniform_real_distribution<double> u(0.0, side_km);
  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x_km = u(rng);
    const double y_km = u(rng);
    nodes.push_back({"n" + std::to_string(i), kRefLat + y_km / kKmPerDegLat,
                     -100.0 + x_km / km_per_deg_lon});
  }
  return nodes;
}

double node_distance_km(const Node& a, const Node& b) {
  return haversine_km(a.latitude, a.longitude, b.latitude, b.longitude);
}

/// Connects the topology with a random spanning tree: node i links to a
/// uniformly chosen earlier node.
void add_spanning_tree(Topology& topo, std::mt19937_64& rng) {
  for (int i = 1; i < topo.node_count(); ++i) {
    std::uniform_int_distribution<int> pick(0, i - 1);
    topo.add_link(i, pick(rng));
  }
}

}  // namespace

Topology waxman(int nodes, double alpha, double beta, std::uint64_t seed,
                double side_km) {
  std::mt19937_64 rng(seed);
  Topology topo("waxman(n=" + std::to_string(nodes) + ")");
  for (auto& n : place_nodes(nodes, side_km, rng)) topo.add_node(std::move(n));
  add_spanning_tree(topo, rng);

  double max_dist = 0.0;
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      max_dist = std::max(max_dist, node_distance_km(topo.node(u), topo.node(v)));
    }
  }
  if (max_dist <= 0.0) return topo;

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (topo.graph().has_edge(u, v)) continue;
      const double d = node_distance_km(topo.node(u), topo.node(v));
      const double p = alpha * std::exp(-d / (beta * max_dist));
      if (coin(rng) < p) topo.add_link(u, v);
    }
  }
  return topo;
}

Topology random_geometric(int nodes, double radius_km, std::uint64_t seed,
                          double side_km) {
  std::mt19937_64 rng(seed);
  Topology topo("geometric(n=" + std::to_string(nodes) + ")");
  for (auto& n : place_nodes(nodes, side_km, rng)) topo.add_node(std::move(n));
  add_spanning_tree(topo, rng);
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (topo.graph().has_edge(u, v)) continue;
      if (node_distance_km(topo.node(u), topo.node(v)) <= radius_km) {
        topo.add_link(u, v);
      }
    }
  }
  return topo;
}

Topology ring_with_chords(int nodes, int chords, std::uint64_t seed) {
  if (nodes < 3) throw std::invalid_argument("ring needs at least 3 nodes");
  std::mt19937_64 rng(seed);
  Topology topo("ring(n=" + std::to_string(nodes) + ")");
  // Nodes on a circle of radius 1000 km around a reference point.
  constexpr double kRefLat = 39.0;
  constexpr double kKmPerDeg = 111.19;
  for (int i = 0; i < nodes; ++i) {
    const double angle =
        2.0 * 3.14159265358979323846 * static_cast<double>(i) / nodes;
    topo.add_node({"r" + std::to_string(i),
                   kRefLat + 9.0 * std::sin(angle),
                   -100.0 + 9.0 * std::cos(angle) /
                                std::cos(kRefLat * 3.14159265358979323846 /
                                         180.0)});
    (void)kKmPerDeg;
  }
  for (int i = 0; i < nodes; ++i) topo.add_link(i, (i + 1) % nodes);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  int added = 0;
  int attempts = 0;
  while (added < chords && attempts < 100 * std::max(chords, 1)) {
    ++attempts;
    const int u = pick(rng);
    const int v = pick(rng);
    if (u == v || topo.graph().has_edge(u, v)) continue;
    topo.add_link(u, v);
    ++added;
  }
  return topo;
}

}  // namespace pm::topo
