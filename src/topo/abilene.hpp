// The Abilene (Internet2) backbone — the classic 11-node / 14-link US
// research network, embedded as a second real topology for
// cross-topology validation: every algorithm invariant tested on the
// ATT-like backbone is re-checked here (tests/test_abilene.cpp), guarding
// against accidental over-fitting to one calibrated instance.
#pragma once

#include "topo/placement.hpp"
#include "topo/topology.hpp"

namespace pm::topo {

/// 11 nodes with real city coordinates, 14 undirected links.
Topology abilene_topology();

/// A 3-controller domain layout for Abilene via k-center placement
/// (deterministic).
Domains abilene_domains();

}  // namespace pm::topo
