#include "topo/abilene.hpp"

#include <array>

namespace pm::topo {

namespace {

struct City {
  const char* label;
  double lat;
  double lon;
};

constexpr std::array<City, 11> kCities = {{
    {"Seattle", 47.61, -122.33},       // 0
    {"Sunnyvale", 37.37, -122.04},     // 1
    {"Los Angeles", 34.05, -118.24},   // 2
    {"Denver", 39.74, -104.99},        // 3
    {"Kansas City", 39.10, -94.58},    // 4
    {"Houston", 29.76, -95.37},        // 5
    {"Chicago", 41.88, -87.63},        // 6
    {"Indianapolis", 39.77, -86.16},   // 7
    {"Atlanta", 33.75, -84.39},        // 8
    {"Washington DC", 38.91, -77.04},  // 9
    {"New York", 40.71, -74.01},       // 10
}};

// The canonical Abilene link set.
constexpr std::array<std::pair<int, int>, 14> kLinks = {{
    {0, 1},   // Seattle - Sunnyvale
    {0, 3},   // Seattle - Denver
    {1, 2},   // Sunnyvale - Los Angeles
    {1, 3},   // Sunnyvale - Denver
    {2, 5},   // Los Angeles - Houston
    {3, 4},   // Denver - Kansas City
    {4, 5},   // Kansas City - Houston
    {4, 7},   // Kansas City - Indianapolis
    {5, 8},   // Houston - Atlanta
    {7, 6},   // Indianapolis - Chicago
    {7, 8},   // Indianapolis - Atlanta
    {6, 10},  // Chicago - New York
    {8, 9},   // Atlanta - Washington DC
    {10, 9},  // New York - Washington DC
}};

}  // namespace

Topology abilene_topology() {
  Topology topo("Abilene (Internet2)");
  for (const City& c : kCities) {
    topo.add_node({c.label, c.lat, c.lon});
  }
  for (const auto& [u, v] : kLinks) {
    topo.add_link(u, v);
  }
  return topo;
}

Domains abilene_domains() { return k_center_domains(abilene_topology(), 3); }

}  // namespace pm::topo
