// A WAN topology: a graph whose nodes carry labels and coordinates, and
// whose edge weights are one-way propagation delays in milliseconds.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pm::topo {

struct Node {
  std::string label;
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Invariant: graph().node_count() == static_cast<int>(nodes().size()).
/// Edge weights are propagation delays in ms; add_link() derives them from
/// the endpoints' coordinates via Haversine, add_link_with_delay() sets an
/// explicit value (used by generators and by GML files without geodata).
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Returns the new node's id.
  graph::NodeId add_node(Node node);

  void add_link(graph::NodeId u, graph::NodeId v);
  void add_link_with_delay(graph::NodeId u, graph::NodeId v, double delay_ms);

  int node_count() const { return graph_.node_count(); }
  std::size_t link_count() const { return graph_.edge_count(); }

  const Node& node(graph::NodeId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }
  const graph::Graph& graph() const { return graph_; }

  /// One-way propagation delay in ms between any two nodes straight-line
  /// (not along the graph) — used for switch-controller control channels,
  /// which need not follow data-plane links.
  double direct_delay_ms(graph::NodeId u, graph::NodeId v) const;

  /// Node id by label; nullopt if absent (labels need not be unique; the
  /// first match wins).
  std::optional<graph::NodeId> find_node(const std::string& label) const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  graph::Graph graph_;
};

}  // namespace pm::topo
