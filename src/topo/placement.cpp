#include "topo/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace pm::topo {

namespace {

std::vector<graph::DijkstraResult> all_sssp(const Topology& topo) {
  std::vector<graph::DijkstraResult> sssp;
  sssp.reserve(static_cast<std::size_t>(topo.node_count()));
  for (int s = 0; s < topo.node_count(); ++s) {
    sssp.push_back(graph::dijkstra(topo.graph(), s));
  }
  return sssp;
}

std::vector<graph::NodeId> k_center_seeds(
    const std::vector<graph::DijkstraResult>& sssp, int n, int k) {
  std::vector<graph::NodeId> centers{0};
  while (static_cast<int>(centers.size()) < k) {
    graph::NodeId farthest = -1;
    double best = -1.0;
    for (int v = 0; v < n; ++v) {
      double dist = std::numeric_limits<double>::infinity();
      for (graph::NodeId c : centers) {
        dist = std::min(dist, sssp[static_cast<std::size_t>(c)]
                                  .dist[static_cast<std::size_t>(v)]);
      }
      if (dist > best) {
        best = dist;
        farthest = v;
      }
    }
    centers.push_back(farthest);
  }
  std::sort(centers.begin(), centers.end());
  return centers;
}

}  // namespace

Domains k_center_domains(const Topology& topo, int k) {
  const int n = topo.node_count();
  if (k < 1 || k > n) {
    throw std::invalid_argument("k must be in [1, node_count]");
  }
  const auto sssp = all_sssp(topo);
  const auto centers = k_center_seeds(sssp, n, k);

  Domains domains;
  for (graph::NodeId c : centers) domains[c] = {};
  for (int v = 0; v < n; ++v) {
    graph::NodeId nearest = centers.front();
    double best = std::numeric_limits<double>::infinity();
    for (graph::NodeId c : centers) {
      const double d = sssp[static_cast<std::size_t>(c)]
                           .dist[static_cast<std::size_t>(v)];
      if (d < best) {
        best = d;
        nearest = c;
      }
    }
    domains[nearest].push_back(v);
  }
  return domains;
}

Domains balanced_domains(const Topology& topo, int k, int slack) {
  const int n = topo.node_count();
  if (k < 1 || k > n) {
    throw std::invalid_argument("k must be in [1, node_count]");
  }
  const auto sssp = all_sssp(topo);
  const auto centers = k_center_seeds(sssp, n, k);
  const std::size_t cap = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) / k) + std::max(slack, 0));

  Domains domains;
  for (graph::NodeId c : centers) domains[c] = {c};

  // Non-center nodes, closest-assignment-first so constrained nodes keep
  // their nearest option.
  struct Pending {
    graph::NodeId node;
    double best_delay;
  };
  std::vector<Pending> pending;
  for (int v = 0; v < n; ++v) {
    if (domains.contains(v)) continue;
    double best = std::numeric_limits<double>::infinity();
    for (graph::NodeId c : centers) {
      best = std::min(best, sssp[static_cast<std::size_t>(c)]
                                .dist[static_cast<std::size_t>(v)]);
    }
    pending.push_back({v, best});
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              if (a.best_delay != b.best_delay) {
                return a.best_delay < b.best_delay;
              }
              return a.node < b.node;
            });
  for (const Pending& p : pending) {
    graph::NodeId chosen = -1;
    double best = std::numeric_limits<double>::infinity();
    for (graph::NodeId c : centers) {
      if (domains.at(c).size() >= cap) continue;
      const double d = sssp[static_cast<std::size_t>(c)]
                           .dist[static_cast<std::size_t>(p.node)];
      if (d < best) {
        best = d;
        chosen = c;
      }
    }
    if (chosen < 0) {
      // All domains at cap (possible only with tiny slack): fall back to
      // the globally nearest center.
      for (graph::NodeId c : centers) {
        const double d = sssp[static_cast<std::size_t>(c)]
                             .dist[static_cast<std::size_t>(p.node)];
        if (d < best) {
          best = d;
          chosen = c;
        }
      }
    }
    domains.at(chosen).push_back(p.node);
  }
  for (auto& [c, members] : domains) {
    std::sort(members.begin(), members.end());
  }
  return domains;
}

double worst_case_delay_ms(const Topology& topo, const Domains& domains) {
  double worst = 0.0;
  for (const auto& [controller, members] : domains) {
    const auto sssp = graph::dijkstra(topo.graph(), controller);
    for (graph::NodeId v : members) {
      worst = std::max(worst, sssp.dist[static_cast<std::size_t>(v)]);
    }
  }
  return worst;
}

}  // namespace pm::topo
