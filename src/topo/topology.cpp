#include "topo/topology.hpp"

#include <stdexcept>

#include "topo/geo.hpp"

namespace pm::topo {

graph::NodeId Topology::add_node(Node node) {
  nodes_.push_back(std::move(node));
  // Rebuild the graph with one more node, preserving existing edges.
  graph::Graph bigger(static_cast<int>(nodes_.size()));
  for (const auto& e : graph_.edges()) bigger.add_edge(e.u, e.v, e.weight);
  graph_ = std::move(bigger);
  return static_cast<graph::NodeId>(nodes_.size()) - 1;
}

void Topology::add_link(graph::NodeId u, graph::NodeId v) {
  add_link_with_delay(u, v, direct_delay_ms(u, v));
}

void Topology::add_link_with_delay(graph::NodeId u, graph::NodeId v,
                                   double delay_ms) {
  graph_.add_edge(u, v, delay_ms);
}

const Node& Topology::node(graph::NodeId id) const {
  graph_.check_node(id);
  return nodes_[static_cast<std::size_t>(id)];
}

double Topology::direct_delay_ms(graph::NodeId u, graph::NodeId v) const {
  const Node& a = node(u);
  const Node& b = node(v);
  return propagation_delay_ms(
      haversine_km(a.latitude, a.longitude, b.latitude, b.longitude));
}

std::optional<graph::NodeId> Topology::find_node(
    const std::string& label) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].label == label) return static_cast<graph::NodeId>(i);
  }
  return std::nullopt;
}

}  // namespace pm::topo
