#include "obs/trace.hpp"

namespace pm::obs {

namespace {

util::JsonValue args_object(const Tracer::Args& args) {
  util::JsonValue obj = util::JsonValue::object();
  for (const auto& [key, value] : args) obj[key] = value;
  return obj;
}

}  // namespace

void Tracer::set_track_name(int track, std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  track_names_[track] = std::move(name);
}

void Tracer::instant(double ts_ms, std::string cat, std::string name,
                     int track, Args args) {
  if (!enabled_) return;
  record({'i', ts_ms, 0.0, track, std::move(cat), std::move(name),
          std::move(args)});
}

void Tracer::begin(double ts_ms, std::string cat, std::string name,
                   int track, Args args) {
  if (!enabled_) return;
  record({'B', ts_ms, 0.0, track, std::move(cat), std::move(name),
          std::move(args)});
}

void Tracer::end(double ts_ms, std::string cat, std::string name,
                 int track) {
  if (!enabled_) return;
  record({'E', ts_ms, 0.0, track, std::move(cat), std::move(name), {}});
}

void Tracer::complete(double ts_ms, double dur_ms, std::string cat,
                      std::string name, int track, Args args) {
  if (!enabled_) return;
  record({'X', ts_ms, dur_ms, track, std::move(cat), std::move(name),
          std::move(args)});
}

void Tracer::write_jsonl(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Event& e : events_) {
    util::JsonValue line = util::JsonValue::object();
    line["ts_ms"] = e.ts_ms;
    line["ph"] = std::string(1, e.phase);
    if (e.phase == 'X') line["dur_ms"] = e.dur_ms;
    line["track"] = e.track;
    const auto named = track_names_.find(e.track);
    if (named != track_names_.end()) line["track_name"] = named->second;
    line["cat"] = e.cat;
    line["name"] = e.name;
    if (!e.args.empty()) line["args"] = args_object(e.args);
    out << line.to_string() << "\n";
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonValue events = util::JsonValue::array();

  // Track-name metadata first so viewers label rows before data arrives.
  for (const auto& [track, name] : track_names_) {
    util::JsonValue meta = util::JsonValue::object();
    meta["ph"] = "M";
    meta["name"] = "thread_name";
    meta["pid"] = 1;
    meta["tid"] = track;
    util::JsonValue args = util::JsonValue::object();
    args["name"] = name;
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }

  for (const Event& e : events_) {
    util::JsonValue ev = util::JsonValue::object();
    ev["name"] = e.name;
    ev["cat"] = e.cat;
    ev["ph"] = std::string(1, e.phase);
    if (e.phase == 'i') ev["s"] = "t";  // instant scoped to its thread
    // trace_event timestamps are microseconds.
    ev["ts"] = e.ts_ms * 1000.0;
    if (e.phase == 'X') ev["dur"] = e.dur_ms * 1000.0;
    ev["pid"] = 1;
    ev["tid"] = e.track;
    if (!e.args.empty()) ev["args"] = args_object(e.args);
    events.push_back(std::move(ev));
  }

  util::JsonValue doc = util::JsonValue::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  out << doc.to_string(2) << "\n";
}

}  // namespace pm::obs
