#include "obs/obs.hpp"

#include <fstream>
#include <functional>

namespace pm::obs {

namespace {

void set_level_from(util::CliArgs& args) {
  const std::string name = args.get_string("log-level", "");
  if (name.empty()) return;
  if (const auto level = parse_log_level(name)) {
    log().set_level(*level);
  } else {
    log().warn("unknown --log-level '" + name + "' (want quiet|error|" +
               "warn|info|debug); keeping " +
               log_level_name(log().level()));
  }
}

std::optional<std::string> path_flag(util::CliArgs& args,
                                     const std::string& name) {
  if (!args.has(name)) return std::nullopt;
  const std::string path = args.get_string(name, "");
  if (path.empty()) {
    log().warn("--" + name + " needs a file path; ignored");
    return std::nullopt;
  }
  return path;
}

bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& body,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    log().error(std::string("cannot write ") + what + " to " + path);
    return false;
  }
  body(out);
  log().info(std::string(what) + " written to " + path);
  return true;
}

}  // namespace

ObsOptions parse_obs_flags(util::CliArgs& args) {
  set_level_from(args);
  ObsOptions o;
  o.log_level = log().level();
  o.trace_out = path_flag(args, "trace-out");
  o.trace_jsonl = path_flag(args, "trace-jsonl");
  o.metrics_out = path_flag(args, "metrics-out");
  o.metrics_json = path_flag(args, "metrics-json");
  o.profile_out = path_flag(args, "profile-out");
  if (o.profile_out) Profiler::global().set_enabled(true);
  return o;
}

void apply_log_level_flag(util::CliArgs& args) { set_level_from(args); }

void write_outputs(const ObsOptions& options, const Context& ctx) {
  if (options.trace_out) {
    write_file(*options.trace_out,
               [&](std::ostream& out) { ctx.tracer.write_chrome_trace(out); },
               "chrome trace");
  }
  if (options.trace_jsonl) {
    write_file(*options.trace_jsonl,
               [&](std::ostream& out) { ctx.tracer.write_jsonl(out); },
               "trace jsonl");
  }
  if (options.metrics_out) {
    write_file(*options.metrics_out,
               [&](std::ostream& out) { ctx.metrics.write_prometheus(out); },
               "prometheus metrics");
  }
  if (options.metrics_json) {
    write_file(*options.metrics_json,
               [&](std::ostream& out) {
                 out << ctx.metrics.to_json().to_string(2) << "\n";
               },
               "metrics json");
  }
  write_profile(options);
}

void write_profile(const ObsOptions& options) {
  if (!options.profile_out) return;
  write_file(*options.profile_out,
             [&](std::ostream& out) {
               out << Profiler::global().to_json().to_string(2) << "\n";
             },
             "wall-clock profile");
}

}  // namespace pm::obs
