#include "obs/log.hpp"

#include <iostream>

namespace pm::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kQuiet: return "quiet";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "quiet" || name == "off" || name == "none") {
    return LogLevel::kQuiet;
  }
  if (name == "error") return LogLevel::kError;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug" || name == "trace") return LogLevel::kDebug;
  return std::nullopt;
}

void Logger::set_stream(std::ostream* out) { out_ = out; }

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(write_mutex_);
  std::ostream& out = out_ != nullptr ? *out_ : std::cerr;
  out << "[" << log_level_name(level) << "] " << message << "\n";
}

Logger& log() {
  static Logger logger;
  return logger;
}

}  // namespace pm::obs
