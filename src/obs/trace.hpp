// Deterministic control-plane event tracer.
//
// Records structured events stamped with the *simulated* clock (never
// wall time), so two runs with the same seed produce byte-identical
// trace files. Events carry a category, a name, a track (a controller,
// the channel, the switch population — rendered as one timeline row
// each) and a small bag of typed args.
//
// Two export formats:
//  * JSONL — one JSON object per line, for grep/jq pipelines;
//  * Chrome trace_event JSON — loads in chrome://tracing and Perfetto;
//    instant events ("i"), duration pairs ("B"/"E") and complete spans
//    ("X", e.g. one recovery wave start->converged) with track-name
//    metadata so timelines are labeled.
//
// The tracer is a null sink by default: while disabled, record calls
// return after one branch and allocate nothing. Call sites are expected
// to guard arg construction with `if (tracer.enabled())`.
//
// Recording is mutex-guarded, so simulations driven from pool workers may
// share a tracer; event order is then worker interleaving (callers that
// need byte-identical traces keep one tracer per simulation, which is the
// layout every harness here uses).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace pm::obs {

class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, util::JsonValue>>;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Names a track ("timeline row") in the Chrome export; callable any
  /// time before writing. Unnamed tracks render as their number.
  void set_track_name(int track, std::string name);

  /// Point event at simulated time `ts_ms`.
  void instant(double ts_ms, std::string cat, std::string name, int track,
               Args args = {});

  /// Begin/end of a nested duration on `track` (Chrome "B"/"E").
  void begin(double ts_ms, std::string cat, std::string name, int track,
             Args args = {});
  void end(double ts_ms, std::string cat, std::string name, int track);

  /// Complete span [ts_ms, ts_ms + dur_ms] (Chrome "X"); used for
  /// recovery waves so overlapping/superseded waves cannot unbalance
  /// B/E nesting.
  void complete(double ts_ms, double dur_ms, std::string cat,
                std::string name, int track, Args args = {});

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }

  /// One JSON object per line; every line parses standalone.
  void write_jsonl(std::ostream& out) const;

  /// Chrome trace_event "JSON Object Format": {"traceEvents": [...]}.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Event {
    char phase;  // 'i', 'B', 'E', 'X'
    double ts_ms;
    double dur_ms;  // 'X' only
    int track;
    std::string cat;
    std::string name;
    Args args;
  };

  void record(Event e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(e));
  }

  bool enabled_ = false;
  mutable std::mutex mutex_;  ///< Guards events_ and track_names_.
  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
};

}  // namespace pm::obs
