#include "obs/profile.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace pm::obs {

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(const char* name, double elapsed_ms, int depth) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SpanStats& s = spans_[name];
  if (s.count == 0) {
    s.min_ms = elapsed_ms;
    s.max_ms = elapsed_ms;
  } else {
    s.min_ms = std::min(s.min_ms, elapsed_ms);
    s.max_ms = std::max(s.max_ms, elapsed_ms);
  }
  ++s.count;
  s.total_ms += elapsed_ms;
  s.max_depth = std::max(s.max_depth, depth);
}

util::JsonValue Profiler::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonValue doc = util::JsonValue::object();
  doc["deterministic"] = false;
  doc["unit"] = "ms";
  util::JsonValue spans = util::JsonValue::array();
  for (const auto& [name, s] : spans_) {
    util::JsonValue span = util::JsonValue::object();
    span["name"] = name;
    span["count"] = static_cast<std::int64_t>(s.count);
    span["total_ms"] = s.total_ms;
    span["mean_ms"] =
        s.count > 0 ? s.total_ms / static_cast<double>(s.count) : 0.0;
    span["min_ms"] = s.min_ms;
    span["max_ms"] = s.max_ms;
    span["max_depth"] = s.max_depth;
    spans.push_back(std::move(span));
  }
  doc["spans"] = std::move(spans);
  return doc;
}

void Profiler::write_table(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::TextTable t(
      {"span", "count", "total_ms", "mean_ms", "min_ms", "max_ms"});
  for (const auto& [name, s] : spans_) {
    const double mean =
        s.count > 0 ? s.total_ms / static_cast<double>(s.count) : 0.0;
    t.add_row({name, std::to_string(s.count),
               util::format_double(s.total_ms, 3),
               util::format_double(mean, 4),
               util::format_double(s.min_ms, 4),
               util::format_double(s.max_ms, 4)});
  }
  t.print(out);
}

}  // namespace pm::obs
