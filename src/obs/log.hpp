// Leveled diagnostic logger for examples, benches and the harness.
//
// One process-wide logger (obs::log()) writes "[level] message" lines to
// stderr by default. Examples and benches route their ad-hoc diagnostics
// through it so `--log-level quiet` silences a run entirely — important
// when a bench's stdout is being diffed for determinism and stderr is
// being captured alongside it. The logger carries no timestamps: its
// output must not vary across identically-seeded runs.
#pragma once

#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace pm::obs {

enum class LogLevel {
  kQuiet = 0,  ///< Nothing, not even errors.
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Name as accepted by --log-level ("quiet", "error", ...).
const char* log_level_name(LogLevel level);

/// Parses a --log-level value; nullopt on unknown names.
std::optional<LogLevel> parse_log_level(std::string_view name);

class Logger {
 public:
  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  /// Redirects output (tests capture into an ostringstream). The stream
  /// must outlive the logger's use; nullptr restores stderr.
  void set_stream(std::ostream* out);

  bool enabled(LogLevel level) const {
    return level != LogLevel::kQuiet && level <= level_;
  }

  void error(const std::string& message) { write(LogLevel::kError, message); }
  void warn(const std::string& message) { write(LogLevel::kWarn, message); }
  void info(const std::string& message) { write(LogLevel::kInfo, message); }
  void debug(const std::string& message) { write(LogLevel::kDebug, message); }

 private:
  void write(LogLevel level, const std::string& message);

  LogLevel level_ = LogLevel::kInfo;
  std::ostream* out_ = nullptr;  // nullptr = stderr
  /// Serializes write() so lines from pool workers never interleave
  /// mid-line.
  std::mutex write_mutex_;
};

/// The process-wide logger.
Logger& log();

}  // namespace pm::obs
