// Scoped wall-clock profiling spans.
//
// OBS_SPAN("pm.balancing") at the top of a scope records the scope's
// wall-clock duration into the process-wide Profiler under that name
// (count / total / min / max, plus the nesting depth it was observed
// at). Instrumentation points live in the PM heuristic phases, Yen /
// Dijkstra, the simplex and branch-and-bound, and the simulation
// dispatch loop — the hot paths ROADMAP wants measured.
//
// The profiler is disabled by default: a disabled span costs one branch
// and never reads the clock, so instrumented code is safe on hot paths.
//
// Wall-clock data is inherently non-deterministic, so it is exported
// through its own file (--profile-out) and never mixed into the
// deterministic trace/metrics outputs.
//
// Thread-safety: record() is mutex-guarded and span nesting depth is
// thread-local, so spans firing inside pool workers aggregate correctly
// (their durations interleave into the shared stats; depth reflects each
// worker's own nesting).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "util/json.hpp"

namespace pm::obs {

namespace detail {
/// Mirrored from Profiler::enabled() so a disabled ScopedSpan is one
/// inlined load+branch — no call into profile.cpp, no static-init guard.
inline bool profiler_enabled = false;
/// Per-thread span nesting depth (1 = top level). Thread-local so spans
/// opened by concurrent pool workers never see each other's nesting.
inline thread_local int span_depth = 0;
}  // namespace detail

class Profiler {
 public:
  struct SpanStats {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    /// Maximum nesting depth this span was observed at (1 = top level).
    int max_depth = 0;
  };

  static Profiler& global();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
    enabled_ = on;
    detail::profiler_enabled = on;
  }

  void record(const char* name, double elapsed_ms, int depth);
  /// Nesting depth of the calling thread's open spans.
  int current_depth() const { return detail::span_depth; }

  /// Aggregated stats. Reference into the live map: only read it once the
  /// spans of interest have closed (tests and end-of-run reports).
  const std::map<std::string, SpanStats>& spans() const { return spans_; }
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
  }

  /// JSON report, marked non-deterministic.
  util::JsonValue to_json() const;

  /// Aligned text table ("span  count  total  mean  min  max").
  void write_table(std::ostream& out) const;

 private:
  bool enabled_ = false;
  mutable std::mutex mutex_;  ///< Guards spans_.
  std::map<std::string, SpanStats> spans_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), active_(detail::profiler_enabled) {
    if (active_) {
      depth_ = ++detail::span_depth;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedSpan() {
    if (!active_) return;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    Profiler::global().record(name_, elapsed_ms, depth_);
    --detail::span_depth;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pm::obs

#define PM_OBS_CONCAT_INNER(a, b) a##b
#define PM_OBS_CONCAT(a, b) PM_OBS_CONCAT_INNER(a, b)
/// Profiles the enclosing scope under `name` (a string literal).
#define OBS_SPAN(name) \
  ::pm::obs::ScopedSpan PM_OBS_CONCAT(pm_obs_span_, __LINE__)(name)
