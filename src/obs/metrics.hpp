// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// Metric identity is (name, labels); the registry hands out stable
// references so hot paths can cache a Counter*/Histogram* once and skip
// the map lookup per event. Iteration order is sorted by identity, so
// exports are deterministic regardless of registration order.
//
// All values recorded here must derive from simulation state (counts,
// simulated-clock durations) — never wall time — so identically-seeded
// runs export byte-identical files. Wall-clock data belongs in
// obs::Profiler, which exports to a separate, clearly non-deterministic
// file.
//
// Exports: Prometheus text exposition format and a JSON tree.
//
// Thread-safety: Counter and Gauge updates are atomic (relaxed — they are
// independent statistics, not synchronization), and the registry guards its
// series map with a mutex, so pool workers running whole scenarios may
// register and bump series concurrently. Histogram::observe mutates three
// fields and stays single-writer: each simulation owns its obs::Context,
// and the scenario pool runs one simulation per worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace pm::obs {

/// Label set of a metric series, e.g. {{"kind", "heartbeat"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// NOT safe for concurrent observe() — see the threading note above.
class Histogram {
 public:
  /// `upper_bounds` must be ascending; an implicit +Inf bucket follows.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// last entry is the +Inf bucket.
  const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The reference stays valid for the registry's
  /// lifetime. Re-registering an existing series with a different kind
  /// throws std::logic_error; help/buckets of the first registration win.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds,
                       const Labels& labels = {});

  /// Read-side views (0 / empty when the series does not exist).
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  double gauge_value(const std::string& name,
                     const Labels& labels = {}) const;
  /// Values of `label_key` -> counter value, over every series named
  /// `name`. Lets reports re-express per-kind counter maps as a view.
  std::map<std::string, std::uint64_t> counters_by_label(
      const std::string& name, const std::string& label_key) const;

  std::size_t series_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Prometheus text exposition format.
  void write_prometheus(std::ostream& out) const;

  util::JsonValue to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Key: (name, canonical label serialization) — sorted, so exports are
  // deterministic.
  using Key = std::pair<std::string, std::string>;

  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, Kind kind);
  const Entry* find(const std::string& name, const Labels& labels) const;

  /// Guards entries_ (the map, not the metric values — node handles are
  /// stable, so the Counter&/Histogram& references handed out stay valid
  /// and are updated lock-free).
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
};

/// Canonical `{k="v",...}` rendering (empty string for no labels).
std::string format_labels(const Labels& labels);

}  // namespace pm::obs
