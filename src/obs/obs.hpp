// Observability context and CLI wiring.
//
// A Context bundles the deterministic sinks — the simulated-clock event
// tracer and the metrics registry — that a simulation harness owns and
// threads through its components. The wall-clock Profiler is process-
// global (spans fire deep inside algorithms with no context to hand
// around) and the leveled Logger likewise (obs/log.hpp).
//
// parse_obs_flags() gives every example/bench the same flag vocabulary
// on top of util::CliArgs:
//   --trace-out=FILE     Chrome trace_event JSON (chrome://tracing,
//                        Perfetto)
//   --trace-jsonl=FILE   JSONL structured event log
//   --metrics-out=FILE   Prometheus text exposition
//   --metrics-json=FILE  metrics as JSON
//   --profile-out=FILE   wall-clock span profile (non-deterministic;
//                        implicitly enables the global profiler)
//   --log-level=LEVEL    quiet|error|warn|info|debug
//
// Determinism contract: trace and metrics files are byte-identical
// across runs with the same seed; the profile file is the only
// non-deterministic output and is never merged into the others.
#pragma once

#include <optional>
#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace pm::obs {

/// Deterministic sinks owned by a harness (e.g. ctrl::ControlSimulation).
struct Context {
  Tracer tracer;
  MetricsRegistry metrics;
  /// Opt-in for per-message metrics (latency histograms). End-of-run
  /// summary metrics are always published, but hot-path observations
  /// stay behind this flag so a harness with observability left alone
  /// pays one branch per message and nothing more.
  bool detailed_metrics = false;
};

struct ObsOptions {
  std::optional<std::string> trace_out;     ///< Chrome trace JSON.
  std::optional<std::string> trace_jsonl;   ///< JSONL event log.
  std::optional<std::string> metrics_out;   ///< Prometheus text.
  std::optional<std::string> metrics_json;  ///< Metrics JSON.
  std::optional<std::string> profile_out;   ///< Wall-clock profile JSON.
  LogLevel log_level = LogLevel::kInfo;

  bool tracing_requested() const {
    return trace_out.has_value() || trace_jsonl.has_value();
  }
  bool metrics_requested() const {
    return metrics_out.has_value() || metrics_json.has_value();
  }
  /// Whether per-message (hot-path) instrumentation should be on: any
  /// trace or metrics sink was asked for.
  bool detailed_requested() const {
    return tracing_requested() || metrics_requested();
  }
};

/// Parses the shared observability flags, applies --log-level to the
/// global logger and enables the global profiler when --profile-out is
/// given. Unknown --log-level values warn and keep the default.
ObsOptions parse_obs_flags(util::CliArgs& args);

/// Parses and applies only --log-level (for tools with no trace/metrics
/// surface, so the flag never shows up as "unrecognized").
void apply_log_level_flag(util::CliArgs& args);

/// Writes every requested file: trace/metrics from `ctx`, the profile
/// from the global Profiler. Unwritable paths log an error and are
/// skipped. Logs one info line per file written.
void write_outputs(const ObsOptions& options, const Context& ctx);

/// Writes only the wall-clock profile (for benches with no Context).
void write_profile(const ObsOptions& options);

}  // namespace pm::obs
