#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/stats.hpp"

namespace pm::obs {

namespace {

/// Prometheus sample values: integers render without a fraction so
/// counter lines read naturally; everything else gets a round-trippable
/// %.17g.
std::string format_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_bound(double b) { return format_value(b); }

}  // namespace

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {}

void Histogram::observe(double v) {
  ++counts_[util::bucket_index(bounds_, v)];
  ++count_;
  sum_ += v;
}

// Precondition: mutex_ held by the caller (the lazy metric construction
// that follows must happen under the same critical section).
MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, const Labels& labels,
    Kind kind) {
  const Key key{name, format_labels(labels)};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + name +
                             "' re-registered with a different kind");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  entry.labels = labels;
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, help, labels, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, help, labels, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, help, labels, Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *e.histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    const std::string& name, const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key{name, format_labels(labels)});
  return it == entries_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const Entry* e = find(name, labels);
  return e != nullptr && e->counter ? e->counter->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    const Labels& labels) const {
  const Entry* e = find(name, labels);
  return e != nullptr && e->gauge ? e->gauge->value() : 0.0;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters_by_label(
    const std::string& name, const std::string& label_key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, entry] : entries_) {
    if (key.first != name || !entry.counter) continue;
    for (const auto& [k, v] : entry.labels) {
      if (k == label_key) {
        out[v] = entry.counter->value();
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string last_name;
  for (const auto& [key, entry] : entries_) {
    const std::string& name = key.first;
    if (name != last_name) {
      last_name = name;
      if (!entry.help.empty()) {
        out << "# HELP " << name << " " << entry.help << "\n";
      }
      const char* type = entry.kind == Kind::kCounter   ? "counter"
                         : entry.kind == Kind::kGauge   ? "gauge"
                                                        : "histogram";
      out << "# TYPE " << name << " " << type << "\n";
    }
    const std::string labels = key.second;
    switch (entry.kind) {
      case Kind::kCounter:
        out << name << labels << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << name << labels << " "
            << format_value(entry.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          const std::string le =
              i < h.upper_bounds().size()
                  ? format_bound(h.upper_bounds()[i])
                  : "+Inf";
          Labels bucket_labels = entry.labels;
          bucket_labels.emplace_back("le", le);
          out << name << "_bucket" << format_labels(bucket_labels) << " "
              << cumulative << "\n";
        }
        out << name << "_sum" << labels << " " << format_value(h.sum())
            << "\n";
        out << name << "_count" << labels << " " << h.count() << "\n";
        break;
      }
    }
  }
}

util::JsonValue MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonValue doc = util::JsonValue::array();
  for (const auto& [key, entry] : entries_) {
    util::JsonValue m = util::JsonValue::object();
    m["name"] = key.first;
    if (!key.second.empty()) {
      util::JsonValue labels = util::JsonValue::object();
      for (const auto& [k, v] : entry.labels) labels[k] = v;
      m["labels"] = std::move(labels);
    }
    switch (entry.kind) {
      case Kind::kCounter:
        m["type"] = "counter";
        m["value"] = static_cast<std::int64_t>(entry.counter->value());
        break;
      case Kind::kGauge:
        m["type"] = "gauge";
        m["value"] = entry.gauge->value();
        break;
      case Kind::kHistogram: {
        m["type"] = "histogram";
        const Histogram& h = *entry.histogram;
        m["count"] = static_cast<std::int64_t>(h.count());
        m["sum"] = h.sum();
        util::JsonValue bounds = util::JsonValue::array();
        for (double b : h.upper_bounds()) bounds.push_back(b);
        m["upper_bounds"] = std::move(bounds);
        util::JsonValue counts = util::JsonValue::array();
        for (std::uint64_t c : h.bucket_counts()) {
          counts.push_back(static_cast<std::int64_t>(c));
        }
        m["bucket_counts"] = std::move(counts);
        break;
      }
    }
    doc.push_back(std::move(m));
  }
  return doc;
}

}  // namespace pm::obs
