// End-to-end recovery replay: what actually happens on the wire between a
// controller crash and the last offline flow regaining programmability.
//
// The paper evaluates plans statically; this simulator adds the temporal
// dimension for the examples and integration tests:
//
//   t0                controllers fail (instantly silent).
//   detection         each surviving controller runs a heartbeat failure
//                     detector over the controller sync channel; a peer is
//                     declared dead after `detection_timeout_ms` without a
//                     beat (beats every `heartbeat_interval_ms`).
//   plan              the surviving controller with the lowest id acts as
//                     recovery coordinator and computes the plan
//                     (`plan_compute_ms`, defaulting to the plan's own
//                     measured solve time).
//   role + flow-mods  the coordinator tells each adopting controller,
//                     which sends a role-request to every switch mapped to
//                     it, then one flow-mod per SDN assignment; every
//                     message pays the propagation delay D_ij (plus the
//                     plan's middle-layer latency, for PG).
//   recovered         a flow counts as recovered when its first SDN entry
//                     is installed; the timeline records first/last entry
//                     per flow and the overall completion time.
#pragma once

#include <map>

#include "core/recovery_plan.hpp"
#include "sim/event_queue.hpp"

namespace pm::sim {

struct ControlPlaneConfig {
  double heartbeat_interval_ms = 50.0;
  double detection_timeout_ms = 200.0;
  /// Plan-computation latency; < 0 means use plan.solve_seconds.
  double plan_compute_ms = -1.0;
  /// Per-message serialization on a control channel (back-to-back
  /// flow-mods space out by this much).
  double message_serialization_ms = 0.01;
};

struct RecoveryTimeline {
  TimeMs failure_at = 0.0;
  TimeMs detected_at = 0.0;    ///< failure declared by the coordinator.
  TimeMs plan_ready_at = 0.0;
  /// First SDN entry per flow (the moment programmability returns).
  std::map<sdwan::FlowId, TimeMs> flow_recovered_at;
  /// All entries of the plan installed.
  TimeMs completed_at = 0.0;
  std::size_t control_messages = 0;

  /// Convenience: completed_at - failure_at.
  double total_recovery_ms() const { return completed_at - failure_at; }
};

/// Replays `plan` under `scenario`. The plan must be valid for the
/// failure state (throws std::invalid_argument otherwise).
RecoveryTimeline simulate_recovery(const sdwan::FailureState& state,
                                   const core::RecoveryPlan& plan,
                                   const ControlPlaneConfig& config = {});

}  // namespace pm::sim
