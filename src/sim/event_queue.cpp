#include "sim/event_queue.hpp"

#include <algorithm>

namespace pm::sim {

void EventQueue::schedule_at(TimeMs at, std::function<void()> fn) {
  events_.push({std::max(at, now_), next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(TimeMs delay, std::function<void()> fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

std::size_t EventQueue::run(TimeMs until) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().at <= until) {
    // priority_queue::top returns const&; move out via const_cast-free
    // copy of the function (Entry is cheap apart from the closure).
    Entry e = events_.top();
    events_.pop();
    now_ = e.at;
    ++executed;
    e.fn();
  }
  if (events_.empty() && now_ < until) {
    // Time does not advance past the last event when idle.
  }
  return executed;
}

}  // namespace pm::sim
