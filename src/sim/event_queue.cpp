#include "sim/event_queue.hpp"

#include <algorithm>

#include "obs/profile.hpp"

namespace pm::sim {

EventId EventQueue::schedule_at(TimeMs at, std::function<void()> fn) {
  const EventId id = next_seq_++;
  events_.push({std::max(at, now_), id, std::move(fn)});
  return id;
}

EventId EventQueue::schedule_in(TimeMs delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_seq_) return false;
  // Fired events are not tracked, so cancelling one marks a dead id (a
  // few bytes until process end); callers cancel ids they know pending.
  return cancelled_.insert(id).second;
}

std::size_t EventQueue::run(TimeMs until) {
  OBS_SPAN("sim.dispatch");
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().at <= until) {
    // priority_queue::top returns const&; move out via const_cast-free
    // copy of the function (Entry is cheap apart from the closure).
    Entry e = events_.top();
    events_.pop();
    if (const auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      ++cancelled_skipped_total_;
      continue;
    }
    now_ = e.at;
    ++executed;
    e.fn();
  }
  executed_total_ += executed;
  if (events_.empty() && now_ < until) {
    // Time does not advance past the last event when idle.
  }
  return executed;
}

}  // namespace pm::sim
