#include "sim/control_plane.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pm::sim {

RecoveryTimeline simulate_recovery(const sdwan::FailureState& state,
                                   const core::RecoveryPlan& plan,
                                   const ControlPlaneConfig& config) {
  if (const auto problems = core::validate_plan(state, plan);
      !problems.empty()) {
    throw std::invalid_argument("invalid plan: " + problems.front());
  }
  const sdwan::Network& net = state.network();

  EventQueue queue;
  RecoveryTimeline timeline;
  timeline.failure_at = 0.0;

  // --- Detection. The last heartbeat arrived somewhere in [-interval, 0];
  // deterministically assume the worst case (a beat at exactly t=0 was
  // missed), so the detector fires one timeout after the last pre-failure
  // beat: at detection_timeout_ms.
  const TimeMs detect_at = config.detection_timeout_ms;

  // Coordinator: surviving controller with the lowest id.
  // (Sync channels are full mesh; the coordinator hears the silence
  // directly, so no extra dissemination round is modeled.)
  timeline.detected_at = detect_at;

  // --- Plan computation.
  const double compute_ms = config.plan_compute_ms >= 0.0
                                ? config.plan_compute_ms
                                : plan.solve_seconds * 1000.0;
  timeline.plan_ready_at = detect_at + compute_ms;

  // --- Role requests and flow-mods.
  // Group assignments per switch so the role-request precedes the
  // flow-mods on each control channel.
  std::map<sdwan::SwitchId, std::vector<sdwan::FlowId>> per_switch;
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    per_switch[sw].push_back(flow);
  }

  const sdwan::ControllerId coordinator = state.active_controllers().front();
  for (const auto& [sw, flows] : per_switch) {
    const sdwan::ControllerId adopter = plan.controller_of(sw);
    // Coordinator -> adopter handoff notice (controller sync channel).
    const double c2c =
        net.topology().direct_delay_ms(net.controller(coordinator).location,
                                       net.controller(adopter).location);
    // Adopter -> switch: role request, then one flow-mod per assignment,
    // pipelined on the control channel (they share one propagation delay
    // but serialize on the middle layer if present).
    const double d = net.delay_ms(sw, adopter);
    const double role_arrives =
        timeline.plan_ready_at + c2c + d + plan.middle_layer_ms;
    ++timeline.control_messages;  // role request
    queue.schedule_at(role_arrives, [] {});
    double install_at = role_arrives;
    for (sdwan::FlowId flow : flows) {
      // Per-message serialization plus any middle-layer processing.
      install_at += config.message_serialization_ms + plan.middle_layer_ms;
      ++timeline.control_messages;
      const sdwan::FlowId f = flow;
      const sdwan::SwitchId s = sw;
      queue.schedule_at(install_at, [&timeline, f, s, install_at] {
        (void)s;
        const auto it = timeline.flow_recovered_at.find(f);
        if (it == timeline.flow_recovered_at.end()) {
          timeline.flow_recovered_at[f] = install_at;
        } else {
          it->second = std::min(it->second, install_at);
        }
        timeline.completed_at = std::max(timeline.completed_at, install_at);
      });
    }
  }

  queue.run();
  timeline.completed_at =
      std::max(timeline.completed_at, timeline.plan_ready_at);
  return timeline;
}

}  // namespace pm::sim
