#include "sim/cascade.hpp"

#include <algorithm>
#include <set>

#include "util/task_pool.hpp"

namespace pm::sim {

CascadeResult simulate_cascade(const sdwan::Network& net,
                               std::vector<sdwan::ControllerId> initial,
                               const RecoveryPolicy& policy,
                               double overload_tolerance) {
  CascadeResult result;
  std::set<sdwan::ControllerId> failed(initial.begin(), initial.end());
  std::vector<sdwan::ControllerId> newly = std::move(initial);
  std::sort(newly.begin(), newly.end());

  while (!newly.empty()) {
    CascadeRound round;
    round.newly_failed = newly;
    newly.clear();

    if (failed.size() >= static_cast<std::size_t>(net.controller_count())) {
      result.collapsed = true;
      result.rounds.push_back(std::move(round));
      break;
    }

    sdwan::FailureScenario scenario;
    scenario.failed.assign(failed.begin(), failed.end());
    const sdwan::FailureState state(net, scenario);
    round.offline_switches = state.offline_switches().size();

    const core::RecoveryPlan plan = policy(state);
    result.round_plans.push_back(plan);
    const auto adopted = core::controller_loads(state, plan);
    for (sdwan::ControllerId j : state.active_controllers()) {
      const double capacity = net.controller(j).capacity;
      const double total = net.normal_load(j) +
                           (adopted.contains(j) ? adopted.at(j) : 0.0);
      const double ratio = capacity <= 0.0 ? 1e9 : total / capacity;
      round.max_load_ratio = std::max(round.max_load_ratio, ratio);
      if (ratio > 1.0 + overload_tolerance) {
        newly.push_back(j);
        failed.insert(j);
      }
    }
    if (newly.empty()) result.final_plan = plan;
    result.rounds.push_back(std::move(round));
  }

  result.final_failed.assign(failed.begin(), failed.end());
  return result;
}

std::vector<CascadeResult> simulate_cascades(
    const sdwan::Network& net,
    const std::vector<std::vector<sdwan::ControllerId>>& initial_sets,
    const RecoveryPolicy& policy, double overload_tolerance, int jobs) {
  util::TaskPool pool(jobs);
  return pool.parallel_map(
      initial_sets,
      [&](std::size_t, const std::vector<sdwan::ControllerId>& initial) {
        return simulate_cascade(net, initial, policy, overload_tolerance);
      });
}

}  // namespace pm::sim
