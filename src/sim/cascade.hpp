// Cascading controller failure analysis (the risk the paper cites from
// Yao et al. [8], Sec. I and Sec. IV-B-4).
//
// After a failure, a recovery policy remaps offline switches onto the
// surviving controllers. If a controller ends up loaded beyond its
// capacity (normal load + adopted load), it fails in the next round, its
// domain goes offline too, and the policy runs again — possibly until the
// whole control plane is gone. Capacity-respecting policies (PM,
// RetroFlow, PG, Optimal) are cascade-free by construction; the
// NaiveNearest takeover is not.
#pragma once

#include <functional>
#include <vector>

#include "core/recovery_plan.hpp"

namespace pm::sim {

/// Computes a recovery plan for a failure state.
using RecoveryPolicy =
    std::function<core::RecoveryPlan(const sdwan::FailureState&)>;

struct CascadeRound {
  /// Controllers that failed going INTO this round (cumulative set is in
  /// CascadeResult::final_failed).
  std::vector<sdwan::ControllerId> newly_failed;
  std::size_t offline_switches = 0;
  /// Worst controller load / capacity after recovery this round.
  double max_load_ratio = 0.0;
};

struct CascadeResult {
  std::vector<CascadeRound> rounds;
  std::vector<sdwan::ControllerId> final_failed;
  /// True if every controller ended up failed.
  bool collapsed = false;
  /// The last round's plan (empty when collapsed).
  core::RecoveryPlan final_plan;
  /// The plan computed in each round that ran the policy, in round
  /// order. A collapse round computes no plan, so on collapse this holds
  /// one entry fewer than `rounds`; otherwise the sizes match and the
  /// last element equals `final_plan`.
  std::vector<core::RecoveryPlan> round_plans;

  std::size_t initial_failures() const {
    return rounds.empty() ? 0 : rounds.front().newly_failed.size();
  }
  std::size_t induced_failures() const {
    return final_failed.size() - initial_failures();
  }
};

/// Iterates failure -> recovery -> overload-induced failure to a fixed
/// point. `overload_tolerance` is the fractional overload a controller
/// survives (0.05 = 5% headroom violation tolerated).
CascadeResult simulate_cascade(const sdwan::Network& net,
                               std::vector<sdwan::ControllerId> initial,
                               const RecoveryPolicy& policy,
                               double overload_tolerance = 0.0);

/// Runs simulate_cascade over a batch of initial failure sets — the
/// per-scenario trials of the cascade bench — with `jobs`-way parallelism
/// (util::TaskPool). Results come back in input order and are identical at
/// any job count; `policy` is invoked concurrently when jobs > 1 and must
/// be re-entrant (the built-in planners are pure functions of the state).
std::vector<CascadeResult> simulate_cascades(
    const sdwan::Network& net,
    const std::vector<std::vector<sdwan::ControllerId>>& initial_sets,
    const RecoveryPolicy& policy, double overload_tolerance = 0.0,
    int jobs = 1);

}  // namespace pm::sim
