// Minimal discrete-event engine: a time-ordered queue of callbacks.
// Events at equal timestamps fire in scheduling order (stable), which
// keeps simulations deterministic.
//
// schedule_* returns an EventId that can be cancelled: cancellation is
// lazy (the entry stays queued, its callback is freed and skipped on
// pop), so it is O(log n) amortized and does not perturb the ordering
// of surviving events. The protocol agents use it to kill stale
// retransmission timers when a new recovery wave supersedes an old one.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace pm::sim {

/// Simulated time in milliseconds.
using TimeMs = double;

/// Handle of a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (>= now, else clamped to now).
  EventId schedule_at(TimeMs at, std::function<void()> fn);

  /// Schedules `fn` `delay` ms from now.
  EventId schedule_in(TimeMs delay, std::function<void()> fn);

  /// Cancels a pending event so its callback never runs. Returns false
  /// for never-issued or already-cancelled ids. Cancelling an id that
  /// already fired is a harmless no-op (ids are monotonic, never reused).
  bool cancel(EventId id);

  TimeMs now() const { return now_; }

  /// Runs events until the queue empties or `until` is passed.
  /// Returns the number of events executed (cancelled entries excluded).
  std::size_t run(TimeMs until = 1e18);

  bool empty() const { return events_.empty(); }
  /// Pending entries, including not-yet-popped cancelled ones.
  std::size_t pending() const { return events_.size(); }

  /// Lifetime dispatch statistics, summed over every run() call; the
  /// observability layer publishes them as simulation metrics.
  std::uint64_t executed_total() const { return executed_total_; }
  std::uint64_t cancelled_skipped_total() const {
    return cancelled_skipped_total_;
  }

 private:
  struct Entry {
    TimeMs at;
    std::uint64_t seq;  // tie-break: scheduling order; doubles as EventId
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> events_;
  std::unordered_set<EventId> cancelled_;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_total_ = 0;
  std::uint64_t cancelled_skipped_total_ = 0;
};

}  // namespace pm::sim
