// Minimal discrete-event engine: a time-ordered queue of callbacks.
// Events at equal timestamps fire in scheduling order (stable), which
// keeps simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pm::sim {

/// Simulated time in milliseconds.
using TimeMs = double;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (>= now, else clamped to now).
  void schedule_at(TimeMs at, std::function<void()> fn);

  /// Schedules `fn` `delay` ms from now.
  void schedule_in(TimeMs delay, std::function<void()> fn);

  TimeMs now() const { return now_; }

  /// Runs events until the queue empties or `until` is passed.
  /// Returns the number of events executed.
  std::size_t run(TimeMs until = 1e18);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Entry {
    TimeMs at;
    std::uint64_t seq;  // tie-break: scheduling order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> events_;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pm::sim
