#include "ctrl/audit.hpp"

#include <utility>

#include "core/recovery_plan.hpp"
#include "sdwan/failure.hpp"

namespace pm::ctrl {

namespace {

std::string sw_flow(sdwan::SwitchId sw, sdwan::FlowId flow) {
  return "switch " + std::to_string(sw) + ", flow " +
         std::to_string(flow);
}

}  // namespace

std::map<std::string, std::size_t> AuditReport::by_invariant() const {
  std::map<std::string, std::size_t> counts;
  for (const auto& v : violations) ++counts[v.invariant];
  return counts;
}

AuditReport audit_recovery(const sdwan::Network& net,
                           const sdwan::Dataplane& dataplane,
                           const std::vector<const SwitchAgent*>& agents,
                           const std::vector<bool>& controller_alive,
                           const SharedRecoveryState& shared,
                           double overload_tolerance) {
  AuditReport report;
  const auto flag = [&report](std::string invariant, std::string detail) {
    report.violations.push_back(
        {std::move(invariant), std::move(detail)});
  };

  // Flows by (src, dst) match — on the standard networks this is a
  // bijection, but the audit tolerates shared matches: an entry is
  // "planned" if ANY flow with its match has the assignment.
  std::map<std::pair<sdwan::SwitchId, sdwan::SwitchId>,
           std::vector<sdwan::FlowId>>
      flows_by_match;
  for (const auto& f : net.flows()) {
    flows_by_match[{f.src, f.dst}].push_back(f.id);
  }

  // 1. No switch mastered by a failed controller. (An orphaned switch,
  // master == -1, is legitimate: it forwards legacy.)
  for (const SwitchAgent* agent : agents) {
    ++report.switches_checked;
    const sdwan::ControllerId m = agent->master();
    if (m < 0) continue;
    if (m >= static_cast<sdwan::ControllerId>(controller_alive.size()) ||
        !controller_alive[static_cast<std::size_t>(m)]) {
      flag("orphaned-master",
           "switch " + std::to_string(agent->id()) +
               " mastered by failed controller " + std::to_string(m));
    }
  }

  if (!shared.committed_plan) {
    // No wave has committed: entries should not exist at all.
    for (const SwitchAgent* agent : agents) {
      for (const auto& [match, epoch] : agent->entry_epochs()) {
        ++report.entries_checked;
        flag("unplanned-entry",
             "switch " + std::to_string(agent->id()) +
                 " holds an entry but no wave ever committed");
      }
    }
    return report;
  }
  const core::RecoveryPlan& plan = *shared.committed_plan;

  // 2. Epoch consistency: entries tagged with the committed epoch only,
  // and no flow mixing epochs across switches.
  std::map<sdwan::FlowId, std::set<std::uint64_t>> flow_epochs;
  for (const SwitchAgent* agent : agents) {
    for (const auto& [match, epoch] : agent->entry_epochs()) {
      ++report.entries_checked;
      if (epoch != shared.committed_epoch) {
        flag("stale-epoch",
             "switch " + std::to_string(agent->id()) + " entry (" +
                 std::to_string(match.first) + "->" +
                 std::to_string(match.second) + ") from epoch " +
                 std::to_string(epoch) + ", committed epoch is " +
                 std::to_string(shared.committed_epoch));
      }
      const auto flows = flows_by_match.find(match);
      if (flows != flows_by_match.end()) {
        for (const sdwan::FlowId l : flows->second) {
          flow_epochs[l].insert(epoch);
        }
      }
    }
  }
  for (const auto& [flow, epochs] : flow_epochs) {
    if (epochs.size() > 1) {
      flag("mixed-epoch", "flow " + std::to_string(flow) +
                              " has entries from " +
                              std::to_string(epochs.size()) + " epochs");
    }
  }

  // 3. Capacity: committed plan's adopted load on top of normal load.
  sdwan::FailureScenario scenario;
  for (std::size_t j = 0; j < controller_alive.size(); ++j) {
    if (!controller_alive[j]) {
      scenario.failed.push_back(static_cast<sdwan::ControllerId>(j));
    }
  }
  const sdwan::FailureState state(net, scenario);
  const auto loads = core::controller_loads(state, plan);
  for (const sdwan::ControllerId j : state.active_controllers()) {
    const double adopted = loads.contains(j) ? loads.at(j) : 0.0;
    const double total = net.normal_load(j) + adopted;
    const double capacity = net.controller(j).capacity;
    if (total > capacity * (1.0 + overload_tolerance)) {
      flag("over-capacity",
           "controller " + std::to_string(j) + " at " +
               std::to_string(total) + " / " + std::to_string(capacity));
    }
  }

  // 4a. Every committed assignment of a non-degraded flow is installed
  // with the flow's path successor as next hop.
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    if (shared.degraded_flows.contains(flow) ||
        shared.degraded_switches.contains(sw)) {
      continue;
    }
    const auto& f = net.flow(flow);
    sdwan::SwitchId next_hop = -1;
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i) {
      if (f.path[i] == sw) {
        next_hop = f.path[i + 1];
        break;
      }
    }
    if (next_hop < 0) continue;  // no entry is ever sent for these
    ++report.assignments_checked;
    const SwitchAgent* agent = agents.at(static_cast<std::size_t>(sw));
    if (!agent->entry_epochs().contains({f.src, f.dst})) {
      flag("missing-entry", sw_flow(sw, flow) + " committed but absent");
      continue;
    }
    const auto result = dataplane.at(sw).lookup({f.src, f.dst});
    if (!result.matched_flow_table || !result.next_hop.has_value() ||
        *result.next_hop != next_hop) {
      flag("wrong-next-hop",
           sw_flow(sw, flow) + " forwards off the committed path");
    }
  }

  // 4b. The committed mapping is live in the agents.
  for (const auto& [sw, controller] : plan.mapping) {
    if (shared.degraded_switches.contains(sw)) continue;
    const SwitchAgent* agent = agents.at(static_cast<std::size_t>(sw));
    if (agent->master() != controller) {
      flag("wrong-master",
           "switch " + std::to_string(sw) + " mastered by " +
               std::to_string(agent->master()) + ", committed plan says " +
               std::to_string(controller));
    }
  }

  // 4c. No entry outside the committed plan. (Cleanup adoptions may
  // master extra switches — that is legal; extra ENTRIES are not.)
  for (const SwitchAgent* agent : agents) {
    for (const auto& [match, epoch] : agent->entry_epochs()) {
      const auto flows = flows_by_match.find(match);
      bool planned = false;
      if (flows != flows_by_match.end()) {
        for (const sdwan::FlowId l : flows->second) {
          if (plan.sdn_assignments.contains({agent->id(), l})) {
            planned = true;
            break;
          }
        }
      }
      if (!planned) {
        flag("unplanned-entry",
             "switch " + std::to_string(agent->id()) + " entry (" +
                 std::to_string(match.first) + "->" +
                 std::to_string(match.second) +
                 ") is not in the committed plan");
      }
    }
  }
  return report;
}

}  // namespace pm::ctrl
