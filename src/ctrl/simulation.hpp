// Harness wiring the protocol together: dataplane + switch agents +
// controller nodes over one channel and event queue. Scenarios inject
// controller crashes at chosen times — and, optionally, a channel fault
// model (loss/duplication/jitter/reordering/partitions) — the harness
// runs the clock and reports detection/convergence times, message and
// fault counts, and a final data-plane audit (every flow still
// deliverable; recovered flows carry their SDN entries; degraded flows
// called out explicitly).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/audit.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/fault_model.hpp"
#include "ctrl/switch_agent.hpp"
#include "obs/obs.hpp"
#include "sdwan/dataplane.hpp"

namespace pm::ctrl {

struct SimulationReport {
  /// First failure-detector firing across surviving controllers;
  /// nullopt when the detector never fired.
  std::optional<double> detected_at;
  /// Last recovery wave fully acked (committed); nullopt while not
  /// converged.
  std::optional<double> converged_at;
  std::uint64_t messages_sent = 0;
  std::map<std::string, std::uint64_t> messages_by_kind;
  /// Recovery waves run by coordinators (>= number of failure events).
  std::uint64_t recovery_waves = 0;
  /// Flows whose SDN entries are installed in the data plane.
  std::size_t flows_with_entries = 0;
  /// Data-plane audit: all 600 flows still delivered end-to-end.
  bool all_flows_deliverable = false;
  /// Switches adopted by a new master.
  std::size_t adopted_switches = 0;

  // --- Reliable delivery under channel faults ---------------------------
  /// Ack-driven retransmissions performed (RoleRequest + FlowMod).
  std::uint64_t retransmissions = 0;
  /// Received messages suppressed as duplicates (switches+controllers).
  std::uint64_t duplicates_suppressed = 0;
  /// Peers suspected and later proven alive, summed over controllers.
  std::uint64_t spurious_detections = 0;
  /// Flows whose FlowMod retries exhausted (legacy-forwarded, reported
  /// instead of wedging the wave).
  std::size_t degraded_flows = 0;
  /// Switches whose RoleRequest retries exhausted (left orphaned).
  std::size_t degraded_switches = 0;
  /// Channel-injected faults (zero when no fault model is armed).
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t reordered_messages = 0;
  std::uint64_t partition_drops = 0;

  // --- Transactional recovery -------------------------------------------
  /// Stale-epoch messages discarded (switch agents + controllers).
  std::uint64_t stale_discarded = 0;
  /// Compensating removal FlowMods sent by rollback.
  std::uint64_t rollback_removals = 0;
  /// Waves superseded while still preparing.
  std::uint64_t waves_aborted = 0;
  /// Times a successor coordinator took over a dead one's wave.
  std::uint64_t coordinator_failovers = 0;
  /// Post-run consistency-audit violations (0 = clean).
  std::size_t audit_violations = 0;
  bool audit_clean = true;
};

class ControlSimulation {
 public:
  ControlSimulation(const sdwan::Network& net, RecoveryPolicy policy,
                    ControllerConfig config = {});

  /// Schedules controller `j` to crash at time `at_ms`. Every switch it
  /// currently masters — original domain plus mid-wave adoptions — is
  /// orphaned at the same instant (their OpenFlow sessions drop).
  void fail_controller_at(sdwan::ControllerId j, double at_ms);

  /// Arms the channel fault model. Call before run(); an inert model
  /// keeps the exact fault-free behaviour.
  void set_fault_model(const ChannelFaultModel& model) {
    channel_.set_fault_model(model);
  }

  /// Runs the clock until `until_ms` and produces the report.
  ///
  /// The report is a *view over the metrics registry*: run() first
  /// publishes every counter into observability().metrics, then reads
  /// the report fields back out of the registry — so the report and any
  /// exported metrics file can never disagree.
  SimulationReport run(double until_ms);

  /// The simulation-owned observability context. Enable the tracer
  /// before run() to record control-plane events; export with
  /// obs::write_outputs() afterwards. Left alone, both sinks are null
  /// (tracer disabled, metrics only filled at the end of run()).
  obs::Context& observability() { return obs_; }
  const obs::Context& observability() const { return obs_; }

  const sdwan::Dataplane& dataplane() const { return dataplane_; }
  ControlChannel& channel() { return channel_; }
  const ControlChannel& channel() const { return channel_; }
  const ControllerNode& controller(sdwan::ControllerId j) const {
    return *controllers_.at(static_cast<std::size_t>(j));
  }
  const SwitchAgent& switch_agent(sdwan::SwitchId s) const {
    return *switches_.at(static_cast<std::size_t>(s));
  }
  sim::EventQueue& queue() { return queue_; }

  /// The shared recovery store (transaction phase, committed plan/epoch,
  /// degradation records) — read-only, for tests and audits.
  const SharedRecoveryState& shared_state() const { return shared_; }

  /// Post-run consistency audit (recomputed on call): checks the data
  /// plane + agents against the committed plan and epoch. run() also
  /// performs it and publishes the result as metrics.
  AuditReport audit() const;

 private:
  /// Publishes channel/controller/queue counters and the data-plane
  /// audit into the metrics registry (counters monotonic, gauges
  /// overwritten).
  void publish_metrics();
  /// Builds the report purely from registry values.
  SimulationReport report_from_metrics() const;

  const sdwan::Network* net_;
  ControllerConfig config_;
  obs::Context obs_;
  sim::EventQueue queue_;
  ControlChannel channel_;
  sdwan::Dataplane dataplane_;
  SharedRecoveryState shared_;
  std::vector<std::unique_ptr<SwitchAgent>> switches_;
  std::vector<std::unique_ptr<ControllerNode>> controllers_;
};

}  // namespace pm::ctrl
