// The control channel: delivers messages between endpoints over the
// event queue, paying the propagation delay of the shortest path between
// their locations (in-band control). Per-message statistics are kept for
// the convergence reports.
//
// An optional ChannelFaultModel makes the channel lossy: per-message
// drops, duplicates, delay jitter, gross reordering and scheduled
// partition windows, all drawn from one seeded engine so runs are
// replayable. Without a model the send path is byte-for-byte the
// fault-free one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ctrl/fault_model.hpp"
#include "ctrl/messages.hpp"
#include "sdwan/network.hpp"
#include "sim/event_queue.hpp"

namespace pm::obs {
struct Context;
class Histogram;
}  // namespace pm::obs

namespace pm::ctrl {

/// Trace track ("timeline row") layout shared by the protocol agents:
/// the channel and the switch population get one row each, every
/// controller its own row, waves a dedicated row so superseded waves
/// cannot unbalance nesting.
namespace tracks {
inline constexpr int kChannel = 1;
inline constexpr int kSwitches = 2;
inline constexpr int kWaves = 3;
inline constexpr int kControllerBase = 10;
inline int controller(sdwan::ControllerId j) {
  return kControllerBase + static_cast<int>(j);
}
}  // namespace tracks

class ControlChannel {
 public:
  using Handler = std::function<void(const Message&)>;

  ControlChannel(const sdwan::Network& net, sim::EventQueue& queue)
      : net_(&net), queue_(&queue) {}

  /// Registers the receive handler of an endpoint located at topology
  /// node `location`. Endpoints must be registered before they can
  /// receive; sending to an unregistered endpoint drops the message
  /// (counted).
  void attach(EndpointId id, sdwan::SwitchId location, Handler handler);

  /// Detaches an endpoint (a dead controller); its queued messages are
  /// dropped on delivery.
  void detach(EndpointId id);

  /// Sends `m` (m.from must be attached); delivery is scheduled after the
  /// locations' shortest-path delay plus `extra_latency_ms`. Assigns
  /// m.seq from the channel-wide counter and returns it, so a sender that
  /// wants ack-driven retransmission can resend() the same message.
  std::uint64_t send(Message m, double extra_latency_ms = 0.0);

  /// Current simulated time (agents without their own queue pointer use
  /// it to stamp trace events).
  double queue_now() const { return queue_->now(); }

  /// Whether `id` is currently attached (known and not detached).
  bool is_attached(EndpointId id) const {
    const auto it = endpoints_.find(id);
    return it != endpoints_.end() && it->second.attached;
  }

  /// Re-sends an already-sequenced message (ack-driven retransmission):
  /// same path as send() — faults included — but m.seq is kept so the
  /// receiver can deduplicate against the original.
  void resend(Message m, double extra_latency_ms = 0.0);

  /// Arms (or replaces) the fault model; statistics restart. An inert
  /// model (active() == false) disarms injection entirely.
  void set_fault_model(const ChannelFaultModel& model);

  /// Injected-fault statistics; zeros when no model is armed.
  const FaultStats& fault_stats() const;

  /// Attaches the observability context (tracer + metrics). The channel
  /// then traces send/recv/drop/retransmit events on the simulated clock
  /// and feeds the message-latency histogram. nullptr (the default)
  /// keeps the send path free of observability work beyond one branch.
  void set_observability(obs::Context* obs);
  obs::Context* observability() const { return obs_; }

  /// Propagation delay between two attached endpoints' locations; the
  /// agents use it to size retransmission timeouts. Returns 0 if either
  /// endpoint is unknown.
  double path_delay_ms(EndpointId a, EndpointId b) const;

  /// Drops memoized pairwise delays. Must be called whenever the
  /// topology/failure state the delays were computed from changes
  /// (link failures, reweighting); the simulation hooks it from its
  /// failure events.
  void invalidate_delays() { delay_cache_.clear(); }
  std::size_t cached_delay_pairs() const { return delay_cache_.size(); }

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  const std::map<std::string, std::uint64_t>& sent_by_kind() const {
    return by_kind_;
  }

 private:
  struct Endpoint {
    sdwan::SwitchId location = -1;
    Handler handler;
    bool attached = false;
  };

  void dispatch(Message m, double extra_latency_ms);
  void deliver_in(double delay, Message m);
  double shortest_delay(sdwan::SwitchId a, sdwan::SwitchId b) const;

  const sdwan::Network* net_;
  sim::EventQueue* queue_;
  std::map<EndpointId, Endpoint> endpoints_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<std::string, std::uint64_t> by_kind_;
  std::unique_ptr<FaultInjector> faults_;
  obs::Context* obs_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  mutable std::map<std::pair<sdwan::SwitchId, sdwan::SwitchId>, double>
      delay_cache_;
};

}  // namespace pm::ctrl
