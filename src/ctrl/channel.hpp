// The control channel: delivers messages between endpoints over the
// event queue, paying the propagation delay of the shortest path between
// their locations (in-band control). Per-message statistics are kept for
// the convergence reports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ctrl/messages.hpp"
#include "sdwan/network.hpp"
#include "sim/event_queue.hpp"

namespace pm::ctrl {

class ControlChannel {
 public:
  using Handler = std::function<void(const Message&)>;

  ControlChannel(const sdwan::Network& net, sim::EventQueue& queue)
      : net_(&net), queue_(&queue) {}

  /// Registers the receive handler of an endpoint located at topology
  /// node `location`. Endpoints must be registered before they can
  /// receive; sending to an unregistered endpoint drops the message
  /// (counted).
  void attach(EndpointId id, sdwan::SwitchId location, Handler handler);

  /// Detaches an endpoint (a dead controller); its queued messages are
  /// dropped on delivery.
  void detach(EndpointId id);

  /// Sends `m` (m.from must be attached); delivery is scheduled after the
  /// locations' shortest-path delay plus `extra_latency_ms`.
  void send(Message m, double extra_latency_ms = 0.0);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  const std::map<std::string, std::uint64_t>& sent_by_kind() const {
    return by_kind_;
  }

 private:
  struct Endpoint {
    sdwan::SwitchId location = -1;
    Handler handler;
    bool attached = false;
  };

  double shortest_delay(sdwan::SwitchId a, sdwan::SwitchId b) const;

  const sdwan::Network* net_;
  sim::EventQueue* queue_;
  std::map<EndpointId, Endpoint> endpoints_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<std::string, std::uint64_t> by_kind_;
  mutable std::map<std::pair<sdwan::SwitchId, sdwan::SwitchId>, double>
      delay_cache_;
};

}  // namespace pm::ctrl
