#include "ctrl/fault_model.hpp"

namespace pm::ctrl {

bool PartitionWindow::cuts(EndpointId x, EndpointId y,
                           double now_ms) const {
  if (now_ms < from_ms || now_ms >= to_ms) return false;
  const auto matches = [](EndpointId want, EndpointId got) {
    return want == kAnyEndpoint || want == got;
  };
  return (matches(a, x) && matches(b, y)) ||
         (matches(a, y) && matches(b, x));
}

bool FaultInjector::partitioned(EndpointId from, EndpointId to,
                                double now_ms, const std::string& kind) {
  for (const auto& w : model_.partitions) {
    if (w.cuts(from, to, now_ms)) {
      ++stats_.partition_drops;
      ++stats_.by_kind[kind].partition_drops;
      return true;
    }
  }
  return false;
}

bool FaultInjector::drop(const std::string& kind) {
  if (model_.drop_probability <= 0.0) return false;
  if (uniform() >= model_.drop_probability) return false;
  ++stats_.injected_drops;
  ++stats_.by_kind[kind].drops;
  return true;
}

double FaultInjector::extra_delay(const std::string& kind) {
  double extra = 0.0;
  if (model_.jitter_ms > 0.0) {
    extra += uniform() * model_.jitter_ms;
    stats_.total_jitter_ms += extra;
  }
  if (model_.reorder_probability > 0.0 &&
      uniform() < model_.reorder_probability) {
    extra += model_.reorder_delay_ms;
    ++stats_.reordered;
    ++stats_.by_kind[kind].reordered;
  }
  return extra;
}

bool FaultInjector::duplicate(const std::string& kind) {
  if (model_.duplicate_probability <= 0.0) return false;
  if (uniform() >= model_.duplicate_probability) return false;
  ++stats_.injected_duplicates;
  ++stats_.by_kind[kind].duplicates;
  return true;
}

}  // namespace pm::ctrl
