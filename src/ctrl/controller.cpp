#include "ctrl/controller.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace pm::ctrl {

namespace {

/// Bucket bounds (ms) for wave convergence: a clean wave converges in
/// hundreds of ms on ATT; loss and backoff stretch it toward seconds.
std::vector<double> convergence_buckets() {
  return {100, 250, 500, 1000, 2000, 3000, 5000, 10000, 20000};
}

}  // namespace

ControllerNode::ControllerNode(const sdwan::Network& net,
                               sdwan::ControllerId id,
                               ControlChannel& channel,
                               sim::EventQueue& queue,
                               SharedRecoveryState& shared,
                               RecoveryPolicy policy,
                               ControllerConfig config)
    : net_(&net),
      id_(id),
      channel_(&channel),
      queue_(&queue),
      shared_(&shared),
      policy_(std::move(policy)),
      config_(config) {}

void ControllerNode::start() {
  alive_ = true;
  channel_->attach(controller_endpoint(*net_, id_),
                   net_->controller(id_).location,
                   [this](const Message& m) { on_message(m); });
  for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
    if (j != id_) last_heard_[j] = queue_->now();
  }
  beat();
  queue_->schedule_in(config_.detection_timeout_ms,
                      [this] { check_peers(); });
}

void ControllerNode::fail() {
  alive_ = false;
  cancel_wave_timers();
  mod_retries_.clear();
  role_retries_.clear();
  channel_->detach(controller_endpoint(*net_, id_));
}

void ControllerNode::beat() {
  if (!alive_) return;
  for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
    if (j == id_) continue;
    Message m;
    m.from = controller_endpoint(*net_, id_);
    m.to = controller_endpoint(*net_, j);
    m.body = Heartbeat{id_, sequence_};
    channel_->send(m);
  }
  ++sequence_;
  queue_->schedule_in(config_.heartbeat_interval_ms, [this] { beat(); });
}

void ControllerNode::check_peers() {
  if (!alive_) return;
  const double now = queue_->now();
  bool newly_suspected = false;
  for (const auto& [peer, heard] : last_heard_) {
    if (suspected_.contains(peer)) continue;
    // Hysteresis: one late check is not proof of death when the channel
    // jitters — require `suspicion_checks` consecutive misses.
    if (now - heard > config_.detection_timeout_ms) {
      if (++miss_counts_[peer] >= std::max(config_.suspicion_checks, 1)) {
        suspected_.insert(peer);
        newly_suspected = true;
        if (obs::Context* obs = channel_->observability();
            obs != nullptr && obs->tracer.enabled()) {
          obs->tracer.instant(now, "detector", "suspect",
                              tracks::controller(id_),
                              {{"peer", static_cast<int>(peer)},
                               {"silent_ms", now - heard}});
        }
      }
    } else {
      miss_counts_[peer] = 0;
    }
  }
  if (newly_suspected) {
    if (first_detection_at_ < 0) first_detection_at_ = now;
    // Coordinator: the lowest-id controller not suspected by this node.
    sdwan::ControllerId coordinator = id_;
    for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
      if (j != id_ && !suspected_.contains(j)) {
        coordinator = std::min(coordinator, j);
      }
    }
    if (coordinator == id_) run_recovery();
  }
  queue_->schedule_in(config_.heartbeat_interval_ms,
                      [this] { check_peers(); });
}

void ControllerNode::run_recovery() {
  sdwan::FailureScenario scenario;
  scenario.failed.assign(suspected_.begin(), suspected_.end());
  const sdwan::FailureState state(*net_, scenario);
  // Seed the policy with the last plan this node installed, or — when
  // taking over a dead coordinator's wave — with the shared store's last
  // distributed plan, so the successor still replans incrementally.
  const core::RecoveryPlan* previous = nullptr;
  if (installed_plan_) {
    previous = &*installed_plan_;
  } else if (shared_->last_plan) {
    previous = &*shared_->last_plan;
  }
  core::RecoveryPlan plan = policy_(state, previous);
  ++recoveries_run_;
  // A new wave supersedes the old one: stale retransmission timers must
  // not resend a superseded plan's messages.
  cancel_wave_timers();
  mod_retries_.clear();
  role_retries_.clear();
  const double now = queue_->now();
  obs::Context* obs = channel_->observability();
  if (shared_->phase == WavePhase::kPreparing) {
    // The previous wave never committed; this wave supersedes it (its
    // epoch bump invalidates every in-flight message and timer).
    ++shared_->waves_aborted;
    shared_->phase = WavePhase::kAborted;
    if (obs != nullptr && obs->tracer.enabled()) {
      obs->tracer.instant(
          now, "wave", "wave.abort", tracks::kWaves,
          {{"epoch", static_cast<std::int64_t>(shared_->wave_epoch)},
           {"pending_acks",
            static_cast<std::int64_t>(shared_->pending_acks.size())}});
    }
  }
  if (shared_->coordinator >= 0 && shared_->coordinator != id_ &&
      suspected_.contains(shared_->coordinator)) {
    ++shared_->coordinator_failovers;
    if (obs != nullptr && obs->tracer.enabled()) {
      obs->tracer.instant(
          now, "wave", "coordinator.failover", tracks::controller(id_),
          {{"dead_coordinator", static_cast<int>(shared_->coordinator)},
           {"successor", static_cast<int>(id_)}});
    }
  }
  shared_->coordinator = id_;
  ++shared_->wave_epoch;
  shared_->converged_at = -1.0;
  shared_->pending_acks.clear();
  shared_->pending_roles.clear();
  shared_->wave_active = true;
  shared_->wave_started_at = now;
  shared_->phase = WavePhase::kPreparing;
  shared_->slices.clear();
  shared_->wave_masters.clear();
  shared_->rolled_back_flows.clear();
  shared_->pending_removals.clear();
  if (obs != nullptr && obs->tracer.enabled()) {
    obs->tracer.instant(
        queue_->now(), "wave", "wave.start", tracks::kWaves,
        {{"coordinator", static_cast<int>(id_)},
         {"epoch", static_cast<std::int64_t>(shared_->wave_epoch)},
         {"suspected", static_cast<std::int64_t>(suspected_.size())},
         {"mapped_switches", static_cast<std::int64_t>(plan.mapping.size())},
         {"sdn_assignments",
          static_cast<std::int64_t>(plan.sdn_assignments.size())}});
  }

  // Entries an earlier wave installed that the new plan no longer wants:
  // removed at the end of this wave's distribution (the rollback half of
  // commit — without it a shrinking plan leaves orphan entries behind).
  std::vector<std::pair<sdwan::SwitchId, sdwan::FlowId>> stale_installed;
  if (config_.transactional) {
    for (const auto& [key, epoch] : shared_->installed) {
      if (!plan.sdn_assignments.contains(key)) {
        stale_installed.push_back(key);
      }
    }
  }

  // Distribute: RoleRequest per adopted switch, then the flow-mods. Every
  // message is sent by the ADOPTING controller in the plan; as a modeling
  // simplification the coordinator instructs peers instantly through the
  // synchronized data store (the paper's controllers share a logically
  // centralized view), so the mods originate at the adopter's endpoint —
  // but only if the adopter is this node or an unsuspected peer.
  for (const auto& [sw, adopter] : plan.mapping) {
    Message role;
    role.from = controller_endpoint(*net_, adopter);
    role.to = switch_endpoint(sw);
    role.body = RoleRequest{adopter, shared_->wave_epoch};
    role.seq = channel_->send(role);
    shared_->pending_roles.insert(sw);
    if (config_.transactional) {
      shared_->wave_masters[sw] = adopter;
      shared_->slices[adopter].pending_roles.insert(sw);
    }
    arm_role_retry(sw, role);
  }
  // Cleanup adoptions: a switch holding stale entries but absent from the
  // new mapping needs a master before a removal can be applied (the
  // master check would silently drop it). The coordinator adopts it.
  for (const auto& [sw, flow] : stale_installed) {
    if (shared_->wave_masters.contains(sw)) continue;
    Message role;
    role.from = controller_endpoint(*net_, id_);
    role.to = switch_endpoint(sw);
    role.body = RoleRequest{id_, shared_->wave_epoch};
    role.seq = channel_->send(role);
    shared_->pending_roles.insert(sw);
    shared_->wave_masters[sw] = id_;
    shared_->slices[id_].pending_roles.insert(sw);
    arm_role_retry(sw, role);
  }
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    const sdwan::ControllerId adopter = plan.controller_of_assignment(
        sw, flow);
    const auto& f = net_->flow(flow);
    // The entry pins the flow at this switch to its current next hop
    // (programmability = the controller can now change it).
    sdwan::SwitchId next_hop = -1;
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i) {
      if (f.path[i] == sw) {
        next_hop = f.path[i + 1];
        break;
      }
    }
    if (next_hop < 0) continue;  // switch is the path's last node
    Message mod;
    mod.from = controller_endpoint(*net_, adopter);
    mod.to = switch_endpoint(sw);
    FlowMod body;
    body.entry = {10, {f.src, f.dst}, next_hop};
    body.xid = shared_->next_xid++;
    body.epoch = shared_->wave_epoch;
    mod.body = body;
    shared_->pending_acks.insert(body.xid);
    shared_->xid_mods[body.xid] = {flow, sw, adopter, false};
    if (config_.transactional) {
      shared_->slices[adopter].pending_acks.insert(body.xid);
    }
    mod.seq = channel_->send(mod, plan.middle_layer_ms);
    arm_mod_retry(body.xid, mod, plan.middle_layer_ms);
  }
  if (config_.transactional) shared_->last_plan = plan;
  installed_plan_ = std::move(plan);
  for (const auto& [sw, flow] : stale_installed) {
    send_rollback_remove(sw, flow);
  }
  if (shared_->pending_acks.empty()) maybe_mark_converged();
}

sdwan::FlowId ControllerNode::flow_by_match(sdwan::SwitchId src,
                                            sdwan::SwitchId dst) {
  if (match_to_flow_.empty()) {
    for (const auto& f : net_->flows()) {
      match_to_flow_[{f.src, f.dst}] = f.id;
    }
  }
  const auto it = match_to_flow_.find({src, dst});
  return it == match_to_flow_.end() ? -1 : it->second;
}

void ControllerNode::send_rollback_remove(sdwan::SwitchId sw,
                                          sdwan::FlowId flow) {
  if (!shared_->pending_removals.insert({sw, flow}).second) return;
  // The removal must come from the switch's current master, or the
  // master check drops it. If no wave touched the switch yet (a mid-wave
  // flow rollback hitting an unmapped switch), adopt it first.
  sdwan::ControllerId master = id_;
  const auto it = shared_->wave_masters.find(sw);
  if (it != shared_->wave_masters.end()) {
    master = it->second;
  } else {
    Message role;
    role.from = controller_endpoint(*net_, id_);
    role.to = switch_endpoint(sw);
    role.body = RoleRequest{id_, shared_->wave_epoch};
    role.seq = channel_->send(role);
    shared_->pending_roles.insert(sw);
    shared_->wave_masters[sw] = id_;
    shared_->slices[id_].pending_roles.insert(sw);
    arm_role_retry(sw, role);
  }
  const auto& f = net_->flow(flow);
  Message mod;
  mod.from = controller_endpoint(*net_, master);
  mod.to = switch_endpoint(sw);
  FlowMod body;
  body.entry = {10, {f.src, f.dst}, -1};
  body.remove = true;
  body.xid = shared_->next_xid++;
  body.epoch = shared_->wave_epoch;
  mod.body = body;
  shared_->pending_acks.insert(body.xid);
  shared_->xid_mods[body.xid] = {flow, sw, master, true};
  shared_->slices[master].pending_acks.insert(body.xid);
  mod.seq = channel_->send(mod);
  arm_mod_retry(body.xid, mod, 0.0);
  ++shared_->rollback_removals;
  if (obs::Context* obs = channel_->observability();
      obs != nullptr && obs->tracer.enabled()) {
    obs->tracer.instant(queue_->now(), "wave", "rollback.remove",
                        tracks::controller(id_),
                        {{"switch", static_cast<int>(sw)},
                         {"flow", static_cast<int>(flow)},
                         {"xid", static_cast<std::int64_t>(body.xid)}});
  }
}

void ControllerNode::roll_back_flow(sdwan::FlowId flow) {
  if (!shared_->rolled_back_flows.insert(flow).second) return;
  // Cancel the flow's sibling installs still pending in this wave — the
  // flow is going back to legacy wholesale, a partial install would be
  // exactly the mixed state rollback exists to prevent.
  std::vector<std::uint64_t> cancelled;
  for (const auto& [xid, retry] : mod_retries_) {
    const auto rec = shared_->xid_mods.find(xid);
    if (rec == shared_->xid_mods.end() || rec->second.remove) continue;
    if (rec->second.flow == flow &&
        shared_->pending_acks.contains(xid)) {
      cancelled.push_back(xid);
    }
  }
  for (const std::uint64_t xid : cancelled) {
    shared_->pending_acks.erase(xid);
    slice_ack_done(xid);
    const auto it = mod_retries_.find(xid);
    if (it != mod_retries_.end()) {
      queue_->cancel(it->second.timer);
      mod_retries_.erase(it);
    }
  }
  // Remove what already made it into the data plane.
  std::vector<std::pair<sdwan::SwitchId, sdwan::FlowId>> to_remove;
  for (const auto& [key, epoch] : shared_->installed) {
    if (key.second == flow) to_remove.push_back(key);
  }
  for (const auto& [sw, fl] : to_remove) {
    send_rollback_remove(sw, fl);
  }
  if (obs::Context* obs = channel_->observability();
      obs != nullptr && obs->tracer.enabled()) {
    obs->tracer.instant(
        queue_->now(), "wave", "rollback.flow", tracks::controller(id_),
        {{"flow", static_cast<int>(flow)},
         {"cancelled_installs", static_cast<std::int64_t>(cancelled.size())},
         {"removed_entries", static_cast<std::int64_t>(to_remove.size())}});
  }
}

void ControllerNode::slice_role_done(sdwan::SwitchId sw) {
  if (!config_.transactional) return;
  const auto master = shared_->wave_masters.find(sw);
  if (master == shared_->wave_masters.end()) return;
  const auto slice = shared_->slices.find(master->second);
  if (slice == shared_->slices.end()) return;
  slice->second.pending_roles.erase(sw);
  maybe_mark_slice_prepared(master->second);
}

void ControllerNode::slice_ack_done(std::uint64_t xid) {
  if (!config_.transactional) return;
  const auto rec = shared_->xid_mods.find(xid);
  if (rec == shared_->xid_mods.end()) return;
  const auto slice = shared_->slices.find(rec->second.adopter);
  if (slice == shared_->slices.end()) return;
  slice->second.pending_acks.erase(xid);
  maybe_mark_slice_prepared(rec->second.adopter);
}

void ControllerNode::maybe_mark_slice_prepared(
    sdwan::ControllerId adopter) {
  const auto it = shared_->slices.find(adopter);
  if (it == shared_->slices.end()) return;
  AdopterSlice& slice = it->second;
  if (slice.prepared || !slice.pending_acks.empty() ||
      !slice.pending_roles.empty()) {
    return;
  }
  slice.prepared = true;
  if (obs::Context* obs = channel_->observability();
      obs != nullptr && obs->tracer.enabled()) {
    obs->tracer.instant(
        queue_->now(), "wave", "slice.prepared",
        tracks::controller(adopter),
        {{"adopter", static_cast<int>(adopter)},
         {"epoch", static_cast<std::int64_t>(shared_->wave_epoch)}});
  }
}

double ControllerNode::initial_rto(const Message& msg,
                                   double extra) const {
  // Worst-case fault-free RTT: request propagation (+ any middle-layer
  // latency) plus the ack's way back, then a safety margin. The first
  // timer can therefore never fire before the fault-free ack arrives —
  // with faults disabled retransmission is exactly never triggered.
  return 2.0 * channel_->path_delay_ms(msg.from, msg.to) + extra +
         config_.retransmit_margin_ms;
}

void ControllerNode::arm_mod_retry(std::uint64_t xid, Message msg,
                                   double extra) {
  if (config_.max_retries <= 0) return;
  Retry r;
  r.msg = std::move(msg);
  r.extra_latency_ms = extra;
  r.rto_ms = initial_rto(r.msg, extra);
  r.epoch = shared_->wave_epoch;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, xid] { on_mod_timer(xid); });
  mod_retries_[xid] = std::move(r);
}

void ControllerNode::arm_role_retry(sdwan::SwitchId sw, Message msg) {
  if (config_.max_retries <= 0) return;
  Retry r;
  r.msg = std::move(msg);
  r.rto_ms = initial_rto(r.msg, 0.0);
  r.epoch = shared_->wave_epoch;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, sw] { on_role_timer(sw); });
  role_retries_[sw] = std::move(r);
}

void ControllerNode::on_mod_timer(std::uint64_t xid) {
  const auto it = mod_retries_.find(xid);
  if (it == mod_retries_.end()) return;
  Retry& r = it->second;
  if (!alive_ || r.epoch != shared_->wave_epoch ||
      !shared_->pending_acks.contains(xid)) {
    mod_retries_.erase(it);
    return;
  }
  if (r.attempts >= config_.max_retries ||
      !channel_->is_attached(r.msg.from)) {
    // Give up: the flow degrades to legacy forwarding instead of wedging
    // the wave; the audit reports it.
    shared_->pending_acks.erase(xid);
    slice_ack_done(xid);
    const auto rec = shared_->xid_mods.find(xid);
    if (rec != shared_->xid_mods.end()) {
      const sdwan::FlowId flow = rec->second.flow;
      const bool was_remove = rec->second.remove;
      if (was_remove) {
        // A rollback removal itself exhausted: the entry may linger on
        // an unreachable switch. Count it; the flow stays degraded.
        ++shared_->rollback_failures;
        shared_->degraded_flows.insert(flow);
      } else {
        shared_->degraded_flows.insert(flow);
        if (obs::Context* obs = channel_->observability();
            obs != nullptr && obs->tracer.enabled()) {
          obs->tracer.instant(
              queue_->now(), "wave", "degrade.flow",
              tracks::controller(id_),
              {{"flow", static_cast<int>(flow)},
               {"xid", static_cast<std::int64_t>(xid)},
               {"attempts", r.attempts}});
        }
        // Transactional: degradation means *legacy*, not half-programmed
        // — cancel the flow's sibling installs and remove what landed.
        if (config_.transactional) {
          mod_retries_.erase(it);
          roll_back_flow(flow);
          maybe_mark_converged();
          return;
        }
      }
    }
    mod_retries_.erase(it);
    maybe_mark_converged();
    return;
  }
  ++r.attempts;
  channel_->resend(r.msg, r.extra_latency_ms);
  r.rto_ms *= config_.retransmit_backoff;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, xid] { on_mod_timer(xid); });
}

void ControllerNode::on_role_timer(sdwan::SwitchId sw) {
  const auto it = role_retries_.find(sw);
  if (it == role_retries_.end()) return;
  Retry& r = it->second;
  if (!alive_ || r.epoch != shared_->wave_epoch ||
      !shared_->pending_roles.contains(sw)) {
    role_retries_.erase(it);
    return;
  }
  if (r.attempts >= config_.max_retries ||
      !channel_->is_attached(r.msg.from)) {
    shared_->pending_roles.erase(sw);
    shared_->degraded_switches.insert(sw);
    slice_role_done(sw);
    if (obs::Context* obs = channel_->observability();
        obs != nullptr && obs->tracer.enabled()) {
      obs->tracer.instant(queue_->now(), "wave", "degrade.switch",
                          tracks::controller(id_),
                          {{"switch", static_cast<int>(sw)},
                           {"attempts", r.attempts}});
    }
    role_retries_.erase(it);
    return;
  }
  ++r.attempts;
  channel_->resend(r.msg);
  r.rto_ms *= config_.retransmit_backoff;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, sw] { on_role_timer(sw); });
}

void ControllerNode::cancel_wave_timers() {
  for (auto& [xid, r] : mod_retries_) queue_->cancel(r.timer);
  for (auto& [sw, r] : role_retries_) queue_->cancel(r.timer);
}

void ControllerNode::maybe_mark_converged() {
  if (shared_->wave_active && shared_->pending_acks.empty() &&
      shared_->converged_at < 0) {
    shared_->converged_at = queue_->now();
    // Commit: the last ack landed, the distributed plan is now the data
    // plane's truth. (Per-adopter slices prepared earlier; the wave-level
    // commit is the instant the final slice drains.)
    shared_->phase = WavePhase::kCommitted;
    shared_->committed_epoch = shared_->wave_epoch;
    if (shared_->last_plan) shared_->committed_plan = shared_->last_plan;
    if (obs::Context* obs = channel_->observability();
        obs != nullptr) {
      const double wave_ms =
          shared_->converged_at - shared_->wave_started_at;
      obs->metrics
          .histogram("pm_wave_convergence_ms",
                     "Recovery-wave start-to-last-ack time "
                     "(simulated clock)",
                     convergence_buckets())
          .observe(wave_ms);
      if (obs->tracer.enabled()) {
        obs->tracer.complete(
            shared_->wave_started_at, wave_ms, "wave", "wave",
            tracks::kWaves,
            {{"epoch", static_cast<std::int64_t>(shared_->wave_epoch)}});
        obs->tracer.instant(
            queue_->now(), "wave", "wave.converged", tracks::kWaves,
            {{"epoch", static_cast<std::int64_t>(shared_->wave_epoch)},
             {"wave_ms", wave_ms}});
      }
    }
  }
}

void ControllerNode::on_message(const Message& m) {
  if (!alive_) return;
  if (seen(m.seq)) {
    // Channel-injected duplicate (every logical message has a unique
    // seq; retransmissions reuse it).
    ++duplicates_suppressed_;
    return;
  }
  if (m.seq != 0) seen_seqs_.insert(m.seq);
  if (const auto* hb = std::get_if<Heartbeat>(&m.body)) {
    last_heard_[hb->from] = queue_->now();
    miss_counts_[hb->from] = 0;
    if (suspected_.erase(hb->from) > 0) {
      // The peer was alive all along — the detector fired on jitter or
      // loss. Count it; the next detector pass sees the peer live again.
      ++spurious_detections_;
      if (obs::Context* obs = channel_->observability();
          obs != nullptr && obs->tracer.enabled()) {
        obs->tracer.instant(queue_->now(), "detector", "unsuspect",
                            tracks::controller(id_),
                            {{"peer", static_cast<int>(hb->from)},
                             {"spurious", true}});
      }
    }
    return;
  }
  if (const auto* ack = std::get_if<FlowModAck>(&m.body)) {
    const auto rec = shared_->xid_mods.find(ack->xid);
    if (config_.transactional && ack->epoch != shared_->wave_epoch) {
      // Ack from a superseded wave: it must not complete work in (or
      // un-degrade flows of) the current one. But the old wave's mod DID
      // land on the switch — if the current plan no longer wants that
      // entry, compensate with a removal at the current epoch.
      ++shared_->stale_discarded;
      if (rec != shared_->xid_mods.end() && !rec->second.remove) {
        const auto key =
            std::make_pair(rec->second.sw, rec->second.flow);
        const auto cur = shared_->installed.find(key);
        if (cur == shared_->installed.end() || cur->second < ack->epoch) {
          shared_->installed[key] = ack->epoch;
        }
        const bool wanted =
            shared_->last_plan &&
            shared_->last_plan->sdn_assignments.contains(key);
        // If wanted, the current wave re-installs (replace-on-install
        // re-tags the entry); otherwise it is an orphan — remove it.
        if (!wanted) send_rollback_remove(key.first, key.second);
      }
      return;
    }
    shared_->pending_acks.erase(ack->xid);
    if (rec != shared_->xid_mods.end()) {
      if (config_.transactional) {
        const auto key =
            std::make_pair(rec->second.sw, rec->second.flow);
        if (rec->second.remove) {
          shared_->installed.erase(key);
        } else {
          shared_->installed[key] = ack->epoch;
          if (shared_->rolled_back_flows.contains(rec->second.flow)) {
            // Install landed after its flow was rolled back (the
            // in-flight copy beat the cancellation): compensate
            // immediately.
            send_rollback_remove(key.first, key.second);
          } else {
            // A late ack (e.g. after a retransmission) un-degrades the
            // flow.
            shared_->degraded_flows.erase(rec->second.flow);
          }
        }
        slice_ack_done(ack->xid);
      } else if (!rec->second.remove) {
        shared_->degraded_flows.erase(rec->second.flow);
      }
    }
    maybe_mark_converged();
    return;
  }
  if (const auto* reply = std::get_if<RoleReply>(&m.body)) {
    if (config_.transactional && reply->epoch != shared_->wave_epoch) {
      // Reply to a superseded wave's RoleRequest; the current wave's
      // own request/retry will collect its own reply.
      ++shared_->stale_discarded;
      return;
    }
    const bool first = shared_->pending_roles.erase(reply->sw) > 0;
    shared_->degraded_switches.erase(reply->sw);
    slice_role_done(reply->sw);
    if (config_.transactional && first) {
      // Handover resync: the switch reported its installed entries. Any
      // entry from an earlier epoch was installed by a master that may
      // have died before its ack arrived — this is the only channel
      // through which such state reaches the surviving control plane.
      // Record it, and remove whatever the current plan no longer wants.
      for (const ReportedEntry& e : reply->entries) {
        if (e.epoch >= shared_->wave_epoch) continue;
        const sdwan::FlowId flow = flow_by_match(e.src, e.dst);
        if (flow < 0) continue;
        const auto key = std::make_pair(reply->sw, flow);
        auto& recorded = shared_->installed[key];
        recorded = std::max(recorded, e.epoch);
        const bool wanted =
            shared_->last_plan &&
            shared_->last_plan->sdn_assignments.contains(key);
        // Wanted entries are re-installed by this wave's own mods
        // (replace-on-install re-tags them); orphans are removed.
        if (!wanted) send_rollback_remove(reply->sw, flow);
      }
    }
    return;
  }
}

}  // namespace pm::ctrl
