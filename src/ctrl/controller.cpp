#include "ctrl/controller.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace pm::ctrl {

namespace {

/// Bucket bounds (ms) for wave convergence: a clean wave converges in
/// hundreds of ms on ATT; loss and backoff stretch it toward seconds.
std::vector<double> convergence_buckets() {
  return {100, 250, 500, 1000, 2000, 3000, 5000, 10000, 20000};
}

}  // namespace

ControllerNode::ControllerNode(const sdwan::Network& net,
                               sdwan::ControllerId id,
                               ControlChannel& channel,
                               sim::EventQueue& queue,
                               SharedRecoveryState& shared,
                               RecoveryPolicy policy,
                               ControllerConfig config)
    : net_(&net),
      id_(id),
      channel_(&channel),
      queue_(&queue),
      shared_(&shared),
      policy_(std::move(policy)),
      config_(config) {}

void ControllerNode::start() {
  alive_ = true;
  channel_->attach(controller_endpoint(*net_, id_),
                   net_->controller(id_).location,
                   [this](const Message& m) { on_message(m); });
  for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
    if (j != id_) last_heard_[j] = queue_->now();
  }
  beat();
  queue_->schedule_in(config_.detection_timeout_ms,
                      [this] { check_peers(); });
}

void ControllerNode::fail() {
  alive_ = false;
  cancel_wave_timers();
  mod_retries_.clear();
  role_retries_.clear();
  channel_->detach(controller_endpoint(*net_, id_));
}

void ControllerNode::beat() {
  if (!alive_) return;
  for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
    if (j == id_) continue;
    Message m;
    m.from = controller_endpoint(*net_, id_);
    m.to = controller_endpoint(*net_, j);
    m.body = Heartbeat{id_, sequence_};
    channel_->send(m);
  }
  ++sequence_;
  queue_->schedule_in(config_.heartbeat_interval_ms, [this] { beat(); });
}

void ControllerNode::check_peers() {
  if (!alive_) return;
  const double now = queue_->now();
  bool newly_suspected = false;
  for (const auto& [peer, heard] : last_heard_) {
    if (suspected_.contains(peer)) continue;
    // Hysteresis: one late check is not proof of death when the channel
    // jitters — require `suspicion_checks` consecutive misses.
    if (now - heard > config_.detection_timeout_ms) {
      if (++miss_counts_[peer] >= std::max(config_.suspicion_checks, 1)) {
        suspected_.insert(peer);
        newly_suspected = true;
        if (obs::Context* obs = channel_->observability();
            obs != nullptr && obs->tracer.enabled()) {
          obs->tracer.instant(now, "detector", "suspect",
                              tracks::controller(id_),
                              {{"peer", static_cast<int>(peer)},
                               {"silent_ms", now - heard}});
        }
      }
    } else {
      miss_counts_[peer] = 0;
    }
  }
  if (newly_suspected) {
    if (first_detection_at_ < 0) first_detection_at_ = now;
    // Coordinator: the lowest-id controller not suspected by this node.
    sdwan::ControllerId coordinator = id_;
    for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
      if (j != id_ && !suspected_.contains(j)) {
        coordinator = std::min(coordinator, j);
      }
    }
    if (coordinator == id_) run_recovery();
  }
  queue_->schedule_in(config_.heartbeat_interval_ms,
                      [this] { check_peers(); });
}

void ControllerNode::run_recovery() {
  sdwan::FailureScenario scenario;
  scenario.failed.assign(suspected_.begin(), suspected_.end());
  const sdwan::FailureState state(*net_, scenario);
  const core::RecoveryPlan* previous =
      installed_plan_ ? &*installed_plan_ : nullptr;
  core::RecoveryPlan plan = policy_(state, previous);
  ++recoveries_run_;
  // A new wave supersedes the old one: stale retransmission timers must
  // not resend a superseded plan's messages.
  cancel_wave_timers();
  mod_retries_.clear();
  role_retries_.clear();
  ++shared_->wave_epoch;
  shared_->converged_at = -1.0;
  shared_->pending_acks.clear();
  shared_->pending_roles.clear();
  shared_->wave_active = true;
  shared_->wave_started_at = queue_->now();
  if (obs::Context* obs = channel_->observability();
      obs != nullptr && obs->tracer.enabled()) {
    obs->tracer.instant(
        queue_->now(), "wave", "wave.start", tracks::kWaves,
        {{"coordinator", static_cast<int>(id_)},
         {"epoch", static_cast<std::int64_t>(shared_->wave_epoch)},
         {"suspected", static_cast<std::int64_t>(suspected_.size())},
         {"mapped_switches", static_cast<std::int64_t>(plan.mapping.size())},
         {"sdn_assignments",
          static_cast<std::int64_t>(plan.sdn_assignments.size())}});
  }

  // Distribute: RoleRequest per adopted switch, then the flow-mods. Every
  // message is sent by the ADOPTING controller in the plan; as a modeling
  // simplification the coordinator instructs peers instantly through the
  // synchronized data store (the paper's controllers share a logically
  // centralized view), so the mods originate at the adopter's endpoint —
  // but only if the adopter is this node or an unsuspected peer.
  for (const auto& [sw, adopter] : plan.mapping) {
    Message role;
    role.from = controller_endpoint(*net_, adopter);
    role.to = switch_endpoint(sw);
    role.body = RoleRequest{adopter};
    role.seq = channel_->send(role);
    shared_->pending_roles.insert(sw);
    arm_role_retry(sw, role);
  }
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    const sdwan::ControllerId adopter = plan.controller_of_assignment(
        sw, flow);
    const auto& f = net_->flow(flow);
    // The entry pins the flow at this switch to its current next hop
    // (programmability = the controller can now change it).
    sdwan::SwitchId next_hop = -1;
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i) {
      if (f.path[i] == sw) {
        next_hop = f.path[i + 1];
        break;
      }
    }
    if (next_hop < 0) continue;  // switch is the path's last node
    Message mod;
    mod.from = controller_endpoint(*net_, adopter);
    mod.to = switch_endpoint(sw);
    FlowMod body;
    body.entry = {10, {f.src, f.dst}, next_hop};
    body.xid = shared_->next_xid++;
    mod.body = body;
    shared_->pending_acks.insert(body.xid);
    shared_->xid_flow[body.xid] = flow;
    mod.seq = channel_->send(mod, plan.middle_layer_ms);
    arm_mod_retry(body.xid, mod, plan.middle_layer_ms);
  }
  installed_plan_ = std::move(plan);
  if (shared_->pending_acks.empty()) maybe_mark_converged();
}

double ControllerNode::initial_rto(const Message& msg,
                                   double extra) const {
  // Worst-case fault-free RTT: request propagation (+ any middle-layer
  // latency) plus the ack's way back, then a safety margin. The first
  // timer can therefore never fire before the fault-free ack arrives —
  // with faults disabled retransmission is exactly never triggered.
  return 2.0 * channel_->path_delay_ms(msg.from, msg.to) + extra +
         config_.retransmit_margin_ms;
}

void ControllerNode::arm_mod_retry(std::uint64_t xid, Message msg,
                                   double extra) {
  if (config_.max_retries <= 0) return;
  Retry r;
  r.msg = std::move(msg);
  r.extra_latency_ms = extra;
  r.rto_ms = initial_rto(r.msg, extra);
  r.epoch = shared_->wave_epoch;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, xid] { on_mod_timer(xid); });
  mod_retries_[xid] = std::move(r);
}

void ControllerNode::arm_role_retry(sdwan::SwitchId sw, Message msg) {
  if (config_.max_retries <= 0) return;
  Retry r;
  r.msg = std::move(msg);
  r.rto_ms = initial_rto(r.msg, 0.0);
  r.epoch = shared_->wave_epoch;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, sw] { on_role_timer(sw); });
  role_retries_[sw] = std::move(r);
}

void ControllerNode::on_mod_timer(std::uint64_t xid) {
  const auto it = mod_retries_.find(xid);
  if (it == mod_retries_.end()) return;
  Retry& r = it->second;
  if (!alive_ || r.epoch != shared_->wave_epoch ||
      !shared_->pending_acks.contains(xid)) {
    mod_retries_.erase(it);
    return;
  }
  if (r.attempts >= config_.max_retries ||
      !channel_->is_attached(r.msg.from)) {
    // Give up: the flow degrades to legacy forwarding instead of wedging
    // the wave; the audit reports it.
    shared_->pending_acks.erase(xid);
    const auto flow = shared_->xid_flow.find(xid);
    if (flow != shared_->xid_flow.end()) {
      shared_->degraded_flows.insert(flow->second);
      if (obs::Context* obs = channel_->observability();
          obs != nullptr && obs->tracer.enabled()) {
        obs->tracer.instant(
            queue_->now(), "wave", "degrade.flow",
            tracks::controller(id_),
            {{"flow", static_cast<int>(flow->second)},
             {"xid", static_cast<std::int64_t>(xid)},
             {"attempts", r.attempts}});
      }
    }
    mod_retries_.erase(it);
    maybe_mark_converged();
    return;
  }
  ++r.attempts;
  channel_->resend(r.msg, r.extra_latency_ms);
  r.rto_ms *= config_.retransmit_backoff;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, xid] { on_mod_timer(xid); });
}

void ControllerNode::on_role_timer(sdwan::SwitchId sw) {
  const auto it = role_retries_.find(sw);
  if (it == role_retries_.end()) return;
  Retry& r = it->second;
  if (!alive_ || r.epoch != shared_->wave_epoch ||
      !shared_->pending_roles.contains(sw)) {
    role_retries_.erase(it);
    return;
  }
  if (r.attempts >= config_.max_retries ||
      !channel_->is_attached(r.msg.from)) {
    shared_->pending_roles.erase(sw);
    shared_->degraded_switches.insert(sw);
    if (obs::Context* obs = channel_->observability();
        obs != nullptr && obs->tracer.enabled()) {
      obs->tracer.instant(queue_->now(), "wave", "degrade.switch",
                          tracks::controller(id_),
                          {{"switch", static_cast<int>(sw)},
                           {"attempts", r.attempts}});
    }
    role_retries_.erase(it);
    return;
  }
  ++r.attempts;
  channel_->resend(r.msg);
  r.rto_ms *= config_.retransmit_backoff;
  r.timer =
      queue_->schedule_in(r.rto_ms, [this, sw] { on_role_timer(sw); });
}

void ControllerNode::cancel_wave_timers() {
  for (auto& [xid, r] : mod_retries_) queue_->cancel(r.timer);
  for (auto& [sw, r] : role_retries_) queue_->cancel(r.timer);
}

void ControllerNode::maybe_mark_converged() {
  if (shared_->wave_active && shared_->pending_acks.empty() &&
      shared_->converged_at < 0) {
    shared_->converged_at = queue_->now();
    if (obs::Context* obs = channel_->observability();
        obs != nullptr) {
      const double wave_ms =
          shared_->converged_at - shared_->wave_started_at;
      obs->metrics
          .histogram("pm_wave_convergence_ms",
                     "Recovery-wave start-to-last-ack time "
                     "(simulated clock)",
                     convergence_buckets())
          .observe(wave_ms);
      if (obs->tracer.enabled()) {
        obs->tracer.complete(
            shared_->wave_started_at, wave_ms, "wave", "wave",
            tracks::kWaves,
            {{"epoch", static_cast<std::int64_t>(shared_->wave_epoch)}});
        obs->tracer.instant(
            queue_->now(), "wave", "wave.converged", tracks::kWaves,
            {{"epoch", static_cast<std::int64_t>(shared_->wave_epoch)},
             {"wave_ms", wave_ms}});
      }
    }
  }
}

void ControllerNode::on_message(const Message& m) {
  if (!alive_) return;
  if (seen(m.seq)) {
    // Channel-injected duplicate (every logical message has a unique
    // seq; retransmissions reuse it).
    ++duplicates_suppressed_;
    return;
  }
  if (m.seq != 0) seen_seqs_.insert(m.seq);
  if (const auto* hb = std::get_if<Heartbeat>(&m.body)) {
    last_heard_[hb->from] = queue_->now();
    miss_counts_[hb->from] = 0;
    if (suspected_.erase(hb->from) > 0) {
      // The peer was alive all along — the detector fired on jitter or
      // loss. Count it; the next detector pass sees the peer live again.
      ++spurious_detections_;
      if (obs::Context* obs = channel_->observability();
          obs != nullptr && obs->tracer.enabled()) {
        obs->tracer.instant(queue_->now(), "detector", "unsuspect",
                            tracks::controller(id_),
                            {{"peer", static_cast<int>(hb->from)},
                             {"spurious", true}});
      }
    }
    return;
  }
  if (const auto* ack = std::get_if<FlowModAck>(&m.body)) {
    shared_->pending_acks.erase(ack->xid);
    const auto flow = shared_->xid_flow.find(ack->xid);
    if (flow != shared_->xid_flow.end()) {
      // A late ack (e.g. after a retransmission) un-degrades the flow.
      shared_->degraded_flows.erase(flow->second);
    }
    maybe_mark_converged();
    return;
  }
  if (const auto* reply = std::get_if<RoleReply>(&m.body)) {
    shared_->pending_roles.erase(reply->sw);
    shared_->degraded_switches.erase(reply->sw);
    return;
  }
}

}  // namespace pm::ctrl
