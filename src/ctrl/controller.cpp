#include "ctrl/controller.hpp"

#include <algorithm>

namespace pm::ctrl {

ControllerNode::ControllerNode(const sdwan::Network& net,
                               sdwan::ControllerId id,
                               ControlChannel& channel,
                               sim::EventQueue& queue,
                               SharedRecoveryState& shared,
                               RecoveryPolicy policy,
                               ControllerConfig config)
    : net_(&net),
      id_(id),
      channel_(&channel),
      queue_(&queue),
      shared_(&shared),
      policy_(std::move(policy)),
      config_(config) {}

void ControllerNode::start() {
  alive_ = true;
  channel_->attach(controller_endpoint(*net_, id_),
                   net_->controller(id_).location,
                   [this](const Message& m) { on_message(m); });
  for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
    if (j != id_) last_heard_[j] = queue_->now();
  }
  beat();
  queue_->schedule_in(config_.detection_timeout_ms,
                      [this] { check_peers(); });
}

void ControllerNode::fail() {
  alive_ = false;
  channel_->detach(controller_endpoint(*net_, id_));
}

void ControllerNode::beat() {
  if (!alive_) return;
  for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
    if (j == id_) continue;
    Message m;
    m.from = controller_endpoint(*net_, id_);
    m.to = controller_endpoint(*net_, j);
    m.body = Heartbeat{id_, sequence_};
    channel_->send(m);
  }
  ++sequence_;
  queue_->schedule_in(config_.heartbeat_interval_ms, [this] { beat(); });
}

void ControllerNode::check_peers() {
  if (!alive_) return;
  const double now = queue_->now();
  bool newly_suspected = false;
  for (const auto& [peer, heard] : last_heard_) {
    if (suspected_.contains(peer)) continue;
    if (now - heard > config_.detection_timeout_ms) {
      suspected_.insert(peer);
      newly_suspected = true;
    }
  }
  if (newly_suspected) {
    if (first_detection_at_ < 0) first_detection_at_ = now;
    // Coordinator: the lowest-id controller not suspected by this node.
    sdwan::ControllerId coordinator = id_;
    for (sdwan::ControllerId j = 0; j < net_->controller_count(); ++j) {
      if (j != id_ && !suspected_.contains(j)) {
        coordinator = std::min(coordinator, j);
      }
    }
    if (coordinator == id_) run_recovery();
  }
  queue_->schedule_in(config_.heartbeat_interval_ms,
                      [this] { check_peers(); });
}

void ControllerNode::run_recovery() {
  sdwan::FailureScenario scenario;
  scenario.failed.assign(suspected_.begin(), suspected_.end());
  const sdwan::FailureState state(*net_, scenario);
  const core::RecoveryPlan* previous =
      installed_plan_ ? &*installed_plan_ : nullptr;
  core::RecoveryPlan plan = policy_(state, previous);
  ++recoveries_run_;
  shared_->converged_at = -1.0;
  shared_->pending_acks.clear();
  shared_->wave_active = true;

  // Distribute: RoleRequest per adopted switch, then the flow-mods. Every
  // message is sent by the ADOPTING controller in the plan; as a modeling
  // simplification the coordinator instructs peers instantly through the
  // synchronized data store (the paper's controllers share a logically
  // centralized view), so the mods originate at the adopter's endpoint —
  // but only if the adopter is this node or an unsuspected peer.
  for (const auto& [sw, adopter] : plan.mapping) {
    Message role;
    role.from = controller_endpoint(*net_, adopter);
    role.to = switch_endpoint(sw);
    role.body = RoleRequest{adopter};
    channel_->send(role);
  }
  for (const auto& [sw, flow] : plan.sdn_assignments) {
    const sdwan::ControllerId adopter = plan.controller_of_assignment(
        sw, flow);
    const auto& f = net_->flow(flow);
    // The entry pins the flow at this switch to its current next hop
    // (programmability = the controller can now change it).
    sdwan::SwitchId next_hop = -1;
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i) {
      if (f.path[i] == sw) {
        next_hop = f.path[i + 1];
        break;
      }
    }
    if (next_hop < 0) continue;  // switch is the path's last node
    Message mod;
    mod.from = controller_endpoint(*net_, adopter);
    mod.to = switch_endpoint(sw);
    FlowMod body;
    body.entry = {10, {f.src, f.dst}, next_hop};
    body.xid = shared_->next_xid++;
    mod.body = body;
    shared_->pending_acks.insert(body.xid);
    channel_->send(mod, plan.middle_layer_ms);
  }
  installed_plan_ = std::move(plan);
  if (shared_->pending_acks.empty()) shared_->converged_at = queue_->now();
}

void ControllerNode::on_message(const Message& m) {
  if (!alive_) return;
  if (const auto* hb = std::get_if<Heartbeat>(&m.body)) {
    last_heard_[hb->from] = queue_->now();
    return;
  }
  if (const auto* ack = std::get_if<FlowModAck>(&m.body)) {
    shared_->pending_acks.erase(ack->xid);
    if (shared_->wave_active && shared_->pending_acks.empty() &&
        shared_->converged_at < 0) {
      shared_->converged_at = queue_->now();
    }
    return;
  }
  // RoleReplies are informational here.
}

}  // namespace pm::ctrl
