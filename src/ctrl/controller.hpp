// Controller-side protocol agent.
//
// Every live controller beacons heartbeats to its peers and runs a
// timeout-based failure detector over them. When the detector fires, the
// lowest-id live controller acts as recovery coordinator: it derives the
// FailureState for the cumulative failed set, asks the pluggable
// RecoveryPolicy for a plan (seeding it with the previous plan, so
// successive failures are handled incrementally), and distributes the
// plan — RoleRequests to adopted switches followed by one FlowMod per SDN
// assignment, all over the control channel with real propagation delays.
// Convergence is tracked through the switches' acks.
//
// Reliable delivery over a lossy channel:
//  * the failure detector applies hysteresis — a peer is suspected only
//    after `suspicion_checks` consecutive missed deadlines, so delay
//    jitter does not fire it spuriously; a heartbeat from a suspected
//    peer un-suspects it and counts a spurious detection;
//  * RoleRequests and FlowMods are retransmitted by the coordinator on an
//    RTT-derived timeout with exponential backoff, up to `max_retries`;
//  * a message whose retries exhaust degrades gracefully: its xid/switch
//    is dropped from the wave's pending set (the wave converges instead
//    of wedging) and the flow/switch is reported as degraded — the
//    hybrid data plane keeps forwarding it over the legacy/OSPF table.
//
// Transactional recovery (epoch-guarded prepare -> commit):
//  * every wave carries a monotonically increasing epoch, stamped into
//    all RoleRequests/FlowMods; switches and controllers discard stale
//    messages from superseded waves (see switch_agent.hpp);
//  * a wave is PREPARING while acks are outstanding and COMMITS when the
//    last ack lands; the coordinator's distribution also removes entries
//    the previous committed plan installed but the new plan dropped, so
//    commit leaves no entry outside the committed plan;
//  * if a mod's retries exhaust, its flow is *rolled back*: sibling
//    installs are cancelled, already-installed entries are removed, and
//    the flow falls back to legacy routing — degradation means "legacy",
//    never "half programmed";
//  * if the coordinator dies mid-wave, the surviving lowest-id controller
//    detects it, ABORTS the preparing wave (epoch bump kills its timers
//    and messages), recomputes the plan against the updated failure set —
//    seeded from the shared store's last distributed plan — and re-runs
//    the wave as the new coordinator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/recovery_plan.hpp"
#include "ctrl/channel.hpp"
#include "ctrl/switch_agent.hpp"
#include "sim/event_queue.hpp"

namespace pm::ctrl {

/// Computes a plan for the failure state; `previous` is the last plan the
/// coordinator installed (nullptr on the first failure).
using RecoveryPolicy = std::function<core::RecoveryPlan(
    const sdwan::FailureState&, const core::RecoveryPlan* previous)>;

struct ControllerConfig {
  double heartbeat_interval_ms = 50.0;
  double detection_timeout_ms = 200.0;
  /// Failure-detector hysteresis: consecutive detector checks a peer
  /// must miss its deadline before it is suspected. 1 = seed behaviour
  /// (suspect on the first late check); raise under jitter/loss.
  int suspicion_checks = 1;
  /// Retry cap for RoleRequest/FlowMod retransmission; a message still
  /// unacked after this many retries degrades instead of wedging the
  /// wave. 0 disables retransmission entirely.
  int max_retries = 5;
  /// First retransmission fires at RTT-estimate + this margin; each
  /// further retry multiplies the timeout by `retransmit_backoff`.
  double retransmit_margin_ms = 60.0;
  double retransmit_backoff = 2.0;
  /// Transactional recovery: enforce epoch guards and roll partially
  /// installed flows back to legacy routing on retry exhaustion /
  /// mid-wave crashes. false reproduces the pre-transactional protocol
  /// bit-for-bit (epochs are stamped but never acted on).
  bool transactional = true;
};

/// Lifecycle of one recovery wave through the shared store.
enum class WavePhase {
  kIdle,       ///< no wave has run yet
  kPreparing,  ///< plan distributed, acks outstanding
  kCommitted,  ///< last ack landed; plan is the data plane's truth
  kAborted,    ///< superseded mid-prepare (new failure / coordinator death)
};

/// Outstanding work one adopting controller owes the current wave. The
/// wave "prepares" per adopter; a slice whose sets drain is prepared, and
/// the wave commits when every slice is.
struct AdopterSlice {
  std::set<sdwan::SwitchId> pending_roles;
  std::set<std::uint64_t> pending_acks;
  bool prepared = false;
};

/// What one outstanding (or completed) FlowMod was for.
struct ModRecord {
  sdwan::FlowId flow = -1;
  sdwan::SwitchId sw = -1;
  sdwan::ControllerId adopter = -1;
  bool remove = false;
};

/// The controllers' logically centralized data store (the paper's control
/// plane synchronizes state across controllers): outstanding flow-mod
/// acks and role replies of the current recovery wave, shared by every
/// ControllerNode so an adopter's ack completes the coordinator's wave;
/// plus the cumulative degradation record of messages that exhausted
/// their retries.
struct SharedRecoveryState {
  std::set<std::uint64_t> pending_acks;
  std::set<sdwan::SwitchId> pending_roles;
  std::uint64_t next_xid = 1;
  double converged_at = -1.0;
  bool wave_active = false;
  /// When the current wave's distribution began (simulated clock); feeds
  /// the wave-convergence histogram and the trace's wave span.
  double wave_started_at = -1.0;
  /// Bumped per recovery wave and stamped into every protocol message;
  /// stale retransmission timers and in-flight messages from an earlier
  /// wave observe the mismatch and die.
  std::uint64_t wave_epoch = 0;
  /// What each xid's FlowMod was for (cumulative across waves, so a
  /// stale ack can still be attributed for compensation).
  std::map<std::uint64_t, ModRecord> xid_mods;
  /// Flows whose FlowMod retries exhausted: forwarded legacy-only until
  /// a later wave re-programs them (an ack removes the flow again).
  std::set<sdwan::FlowId> degraded_flows;
  /// Switches whose RoleRequest retries exhausted: left orphaned on
  /// their legacy tables until a later wave re-adopts them.
  std::set<sdwan::SwitchId> degraded_switches;

  // --- Transaction state (prepare -> commit -> rollback) ----------------
  WavePhase phase = WavePhase::kIdle;
  /// Controller coordinating the current/last wave.
  sdwan::ControllerId coordinator = -1;
  /// Per-adopter outstanding work of the current wave.
  std::map<sdwan::ControllerId, AdopterSlice> slices;
  /// Acked installs the control plane believes are in the data plane:
  /// (switch, flow) -> installing epoch. Removal acks erase; this is the
  /// rollback worklist when a plan drops assignments or a flow degrades.
  std::map<std::pair<sdwan::SwitchId, sdwan::FlowId>, std::uint64_t>
      installed;
  /// The master each switch was given in the current wave (plan mapping
  /// plus cleanup adoptions); removals are sent from this endpoint.
  std::map<sdwan::SwitchId, sdwan::ControllerId> wave_masters;
  /// Flows rolled back in the current wave: their pending installs were
  /// cancelled and their entries removed; a late install-ack triggers a
  /// compensating removal instead of un-degrading the flow.
  std::set<sdwan::FlowId> rolled_back_flows;
  /// (switch, flow) keys a removal was already sent for in the current
  /// wave — plan-diff cleanup, handover resync and flow rollback can
  /// each target the same entry; one removal suffices.
  std::set<std::pair<sdwan::SwitchId, sdwan::FlowId>> pending_removals;
  /// Plan of the wave being prepared (the coordinator-failover seed) and
  /// the last plan whose wave fully committed.
  std::optional<core::RecoveryPlan> last_plan;
  std::optional<core::RecoveryPlan> committed_plan;
  std::uint64_t committed_epoch = 0;

  // --- Transaction counters (published as metrics) ----------------------
  /// Acks/replies discarded at controllers for an epoch mismatch.
  std::uint64_t stale_discarded = 0;
  /// Compensating removal FlowMods sent (plan-diff + flow rollback).
  std::uint64_t rollback_removals = 0;
  /// Waves superseded while still preparing.
  std::uint64_t waves_aborted = 0;
  /// Times a new coordinator took over a dead one's preparing wave.
  std::uint64_t coordinator_failovers = 0;
  /// Rollback removals whose own retries exhausted (entry may linger).
  std::uint64_t rollback_failures = 0;
};

class ControllerNode {
 public:
  ControllerNode(const sdwan::Network& net, sdwan::ControllerId id,
                 ControlChannel& channel, sim::EventQueue& queue,
                 SharedRecoveryState& shared, RecoveryPolicy policy,
                 ControllerConfig config);

  sdwan::ControllerId id() const { return id_; }
  bool alive() const { return alive_; }

  /// Attach to the channel and start heartbeating/detecting.
  void start();

  /// Crash: stop heartbeats, detach from the channel. (Silent — peers
  /// find out via the detector.)
  void fail();

  /// Controllers this node currently believes dead.
  const std::set<sdwan::ControllerId>& suspected() const {
    return suspected_;
  }

  /// Time the detector first fired (relative to the queue clock); -1 if
  /// it never fired.
  double first_detection_at() const { return first_detection_at_; }

  /// When the latest recovery wave finished (every flow-mod acked);
  /// -1 while not converged. Shared across controllers.
  double converged_at() const { return shared_->converged_at; }

  /// The plan this node last installed as coordinator (if any).
  const std::optional<core::RecoveryPlan>& installed_plan() const {
    return installed_plan_;
  }

  std::uint64_t recoveries_run() const { return recoveries_run_; }

  /// Times this node suspected a peer that later proved alive (its
  /// heartbeat came through after the detector fired).
  std::uint64_t spurious_detections() const {
    return spurious_detections_;
  }

  /// Received messages whose seq was already processed (channel
  /// duplicates / redundant retransmissions), suppressed.
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

 private:
  /// One unacked reliable message awaiting retransmission.
  struct Retry {
    Message msg;
    double extra_latency_ms = 0.0;
    int attempts = 0;
    double rto_ms = 0.0;
    std::uint64_t epoch = 0;
    sim::EventId timer = 0;
  };

  void on_message(const Message& m);
  void beat();
  void check_peers();
  void run_recovery();
  /// Roll one flow back to legacy routing: cancel its pending installs,
  /// remove its acked entries, and remember it so late acks compensate.
  void roll_back_flow(sdwan::FlowId flow);
  /// Send (and track) a removal FlowMod for one installed entry, adopting
  /// the switch under this node first if no wave master holds it.
  /// De-duplicated per wave via SharedRecoveryState::pending_removals.
  void send_rollback_remove(sdwan::SwitchId sw, sdwan::FlowId flow);
  /// Flow whose (src, dst) equals the match, or -1. Backs the handover
  /// resync (a reported entry only names its match). Lazily built.
  sdwan::FlowId flow_by_match(sdwan::SwitchId src, sdwan::SwitchId dst);
  /// Drop completed work from its adopter slice; a drained slice is
  /// marked prepared (traced).
  void slice_role_done(sdwan::SwitchId sw);
  void slice_ack_done(std::uint64_t xid);
  void maybe_mark_slice_prepared(sdwan::ControllerId adopter);
  void arm_mod_retry(std::uint64_t xid, Message msg, double extra);
  void arm_role_retry(sdwan::SwitchId sw, Message msg);
  void on_mod_timer(std::uint64_t xid);
  void on_role_timer(sdwan::SwitchId sw);
  void cancel_wave_timers();
  void maybe_mark_converged();
  double initial_rto(const Message& msg, double extra) const;
  bool seen(std::uint64_t seq) const {
    return seq != 0 && seen_seqs_.contains(seq);
  }

  const sdwan::Network* net_;
  sdwan::ControllerId id_;
  ControlChannel* channel_;
  sim::EventQueue* queue_;
  SharedRecoveryState* shared_;
  RecoveryPolicy policy_;
  ControllerConfig config_;

  bool alive_ = false;
  std::uint64_t sequence_ = 0;
  std::map<sdwan::ControllerId, double> last_heard_;
  std::map<sdwan::ControllerId, int> miss_counts_;
  std::set<sdwan::ControllerId> suspected_;
  double first_detection_at_ = -1.0;
  std::uint64_t spurious_detections_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::unordered_set<std::uint64_t> seen_seqs_;

  std::map<std::uint64_t, Retry> mod_retries_;
  std::map<sdwan::SwitchId, Retry> role_retries_;

  std::optional<core::RecoveryPlan> installed_plan_;
  std::map<std::pair<sdwan::SwitchId, sdwan::SwitchId>, sdwan::FlowId>
      match_to_flow_;
  std::uint64_t recoveries_run_ = 0;
};

}  // namespace pm::ctrl
