// Controller-side protocol agent.
//
// Every live controller beacons heartbeats to its peers and runs a
// timeout-based failure detector over them. When the detector fires, the
// lowest-id live controller acts as recovery coordinator: it derives the
// FailureState for the cumulative failed set, asks the pluggable
// RecoveryPolicy for a plan (seeding it with the previous plan, so
// successive failures are handled incrementally), and distributes the
// plan — RoleRequests to adopted switches followed by one FlowMod per SDN
// assignment, all over the control channel with real propagation delays.
// Convergence is tracked through the switches' acks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/recovery_plan.hpp"
#include "ctrl/channel.hpp"
#include "ctrl/switch_agent.hpp"
#include "sim/event_queue.hpp"

namespace pm::ctrl {

/// Computes a plan for the failure state; `previous` is the last plan the
/// coordinator installed (nullptr on the first failure).
using RecoveryPolicy = std::function<core::RecoveryPlan(
    const sdwan::FailureState&, const core::RecoveryPlan* previous)>;

struct ControllerConfig {
  double heartbeat_interval_ms = 50.0;
  double detection_timeout_ms = 200.0;
};

/// The controllers' logically centralized data store (the paper's control
/// plane synchronizes state across controllers): outstanding flow-mod
/// acks of the current recovery wave, shared by every ControllerNode so
/// an adopter's ack completes the coordinator's wave.
struct SharedRecoveryState {
  std::set<std::uint64_t> pending_acks;
  std::uint64_t next_xid = 1;
  double converged_at = -1.0;
  bool wave_active = false;
};

class ControllerNode {
 public:
  ControllerNode(const sdwan::Network& net, sdwan::ControllerId id,
                 ControlChannel& channel, sim::EventQueue& queue,
                 SharedRecoveryState& shared, RecoveryPolicy policy,
                 ControllerConfig config);

  sdwan::ControllerId id() const { return id_; }
  bool alive() const { return alive_; }

  /// Attach to the channel and start heartbeating/detecting.
  void start();

  /// Crash: stop heartbeats, detach from the channel. (Silent — peers
  /// find out via the detector.)
  void fail();

  /// Controllers this node currently believes dead.
  const std::set<sdwan::ControllerId>& suspected() const {
    return suspected_;
  }

  /// Time the detector first fired (relative to the queue clock); -1 if
  /// it never fired.
  double first_detection_at() const { return first_detection_at_; }

  /// When the latest recovery wave finished (every flow-mod acked);
  /// -1 while not converged. Shared across controllers.
  double converged_at() const { return shared_->converged_at; }

  /// The plan this node last installed as coordinator (if any).
  const std::optional<core::RecoveryPlan>& installed_plan() const {
    return installed_plan_;
  }

  std::uint64_t recoveries_run() const { return recoveries_run_; }

 private:
  void on_message(const Message& m);
  void beat();
  void check_peers();
  void run_recovery();

  const sdwan::Network* net_;
  sdwan::ControllerId id_;
  ControlChannel* channel_;
  sim::EventQueue* queue_;
  SharedRecoveryState* shared_;
  RecoveryPolicy policy_;
  ControllerConfig config_;

  bool alive_ = false;
  std::uint64_t sequence_ = 0;
  std::map<sdwan::ControllerId, double> last_heard_;
  std::set<sdwan::ControllerId> suspected_;
  double first_detection_at_ = -1.0;

  std::optional<core::RecoveryPlan> installed_plan_;
  std::uint64_t recoveries_run_ = 0;
};

}  // namespace pm::ctrl
