// Deterministic fault injection for the control channel.
//
// The paper's setting is an SD-WAN whose in-band control traffic shares
// the lossy wide-area data plane, so the protocol harness must not assume
// a perfect channel. A ChannelFaultModel describes, per message, the
// probability of loss and duplication, a uniform delay-jitter bound, an
// optional gross-reordering draw, and scheduled partition windows that
// cut specific endpoint pairs for a time interval. All draws come from
// one seeded engine, so a fixed seed reproduces the exact same fault
// sequence run after run — chaos sweeps are replayable.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "ctrl/messages.hpp"

namespace pm::ctrl {

/// Cuts delivery between endpoints `a` and `b` (symmetric) while the
/// simulation clock is inside [from_ms, to_ms). kAnyEndpoint (-1)
/// wildcards one or both sides, so a single window can isolate one
/// endpoint from everyone.
struct PartitionWindow {
  static constexpr EndpointId kAnyEndpoint = -1;
  EndpointId a = kAnyEndpoint;
  EndpointId b = kAnyEndpoint;
  double from_ms = 0.0;
  double to_ms = 0.0;

  bool cuts(EndpointId x, EndpointId y, double now_ms) const;
};

struct ChannelFaultModel {
  std::uint64_t seed = 1;
  /// Per-message probability the channel silently loses it.
  double drop_probability = 0.0;
  /// Per-message probability a second copy is delivered (own jitter).
  double duplicate_probability = 0.0;
  /// Uniform extra delivery delay in [0, jitter_ms).
  double jitter_ms = 0.0;
  /// Probability of gross reordering: the message is held back an extra
  /// reorder_delay_ms so later traffic overtakes it.
  double reorder_probability = 0.0;
  double reorder_delay_ms = 0.0;
  std::vector<PartitionWindow> partitions;

  /// True when the model can affect any message at all. A
  /// default-constructed model is inert and the channel keeps its exact
  /// fault-free behaviour (zero-cost default path).
  bool active() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           jitter_ms > 0.0 || reorder_probability > 0.0 ||
           !partitions.empty();
  }
};

/// Per-message-kind fault counters ("heartbeat", "flow-mod", ...).
struct FaultKindStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partition_drops = 0;
};

struct FaultStats {
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partition_drops = 0;
  double total_jitter_ms = 0.0;
  std::map<std::string, FaultKindStats> by_kind;
};

/// The seeded draw engine the channel consults on every send. Kept
/// separate from the config struct so re-arming with the same model
/// restarts the identical pseudo-random sequence.
class FaultInjector {
 public:
  explicit FaultInjector(ChannelFaultModel model)
      : model_(std::move(model)), rng_(model_.seed) {}

  const ChannelFaultModel& model() const { return model_; }
  const FaultStats& stats() const { return stats_; }

  /// True if a partition window cuts (from, to) at `now_ms`; counted.
  bool partitioned(EndpointId from, EndpointId to, double now_ms,
                   const std::string& kind);

  /// True if this message should be lost; counted.
  bool drop(const std::string& kind);

  /// Extra delivery delay for this message (jitter + possible reorder
  /// hold-back); counted.
  double extra_delay(const std::string& kind);

  /// True if a duplicate copy should also be delivered; counted.
  bool duplicate(const std::string& kind);

 private:
  double uniform() { return uni_(rng_); }

  ChannelFaultModel model_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
  FaultStats stats_;
};

}  // namespace pm::ctrl
