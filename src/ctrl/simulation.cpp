#include "ctrl/simulation.hpp"

#include <set>

namespace pm::ctrl {

ControlSimulation::ControlSimulation(const sdwan::Network& net,
                                     RecoveryPolicy policy,
                                     ControllerConfig config)
    : net_(&net),
      config_(config),
      channel_(net, queue_),
      dataplane_(net.topology(), sdwan::RoutingMode::kHybrid) {
  channel_.set_observability(&obs_);
  obs_.tracer.set_track_name(tracks::kChannel, "channel");
  obs_.tracer.set_track_name(tracks::kSwitches, "switches");
  obs_.tracer.set_track_name(tracks::kWaves, "recovery waves");
  for (sdwan::ControllerId j = 0; j < net.controller_count(); ++j) {
    obs_.tracer.set_track_name(tracks::controller(j),
                               "controller " + net.controller(j).name);
  }
  for (int s = 0; s < net.switch_count(); ++s) {
    switches_.push_back(std::make_unique<SwitchAgent>(
        s, dataplane_.at(s), channel_, config.transactional));
    switches_.back()->attach();
  }
  for (sdwan::ControllerId j = 0; j < net.controller_count(); ++j) {
    controllers_.push_back(std::make_unique<ControllerNode>(
        net, j, channel_, queue_, shared_, policy, config));
  }
  // Normal operation: every switch mastered by its domain controller.
  for (int s = 0; s < net.switch_count(); ++s) {
    const sdwan::ControllerId j = net.controller_of(s);
    switches_[static_cast<std::size_t>(s)]->set_initial_master(
        j, controller_endpoint(net, j));
  }
  for (auto& c : controllers_) c->start();
}

void ControlSimulation::fail_controller_at(sdwan::ControllerId j,
                                           double at_ms) {
  queue_.schedule_at(at_ms, [this, j] {
    // The channel's memoized pairwise delays were computed against the
    // pre-failure state; drop them so later sends re-derive (today the
    // topology itself is unchanged by a controller crash, but any
    // failure event that reweights/cuts links flows through this hook).
    channel_.invalidate_delays();
    // Orphan every switch the controller currently masters: its original
    // domain plus any mid-wave adoptions (a successor wave's auditor
    // would otherwise find switches mastered by a dead controller). The
    // legacy protocol orphaned only the home domain; reproduce that
    // bit-for-bit when transactional enforcement is off.
    std::vector<sdwan::SwitchId> orphaned;
    if (config_.transactional) {
      for (auto& agent : switches_) {
        if (agent->master() == j) orphaned.push_back(agent->id());
      }
    } else {
      orphaned.assign(net_->controller(j).domain.begin(),
                      net_->controller(j).domain.end());
    }
    if (obs_.tracer.enabled()) {
      obs_.tracer.instant(
          queue_.now(), "sim", "controller.fail", tracks::controller(j),
          {{"controller", static_cast<int>(j)},
           {"orphaned_switches",
            static_cast<std::int64_t>(orphaned.size())}});
    }
    controllers_[static_cast<std::size_t>(j)]->fail();
    for (const sdwan::SwitchId s : orphaned) {
      switches_[static_cast<std::size_t>(s)]->orphan();
    }
  });
}

SimulationReport ControlSimulation::run(double until_ms) {
  OBS_SPAN("ctrl.simulation.run");
  queue_.run(until_ms);
  publish_metrics();
  return report_from_metrics();
}

void ControlSimulation::publish_metrics() {
  obs::MetricsRegistry& m = obs_.metrics;
  // Counters are monotonic: publish the delta against what the registry
  // already holds, so a second run() call stays consistent.
  const auto set_counter = [&](const std::string& name,
                               const std::string& help, std::uint64_t v,
                               const obs::Labels& labels = {}) {
    obs::Counter& c = m.counter(name, help, labels);
    if (v > c.value()) c.inc(v - c.value());
  };

  set_counter("pm_messages_sent_total",
              "Messages accepted by the control channel",
              channel_.messages_sent());
  for (const auto& [kind, count] : channel_.sent_by_kind()) {
    set_counter("pm_messages_total", "Control messages by kind", count,
                {{"kind", kind}});
  }
  set_counter("pm_messages_dropped_total",
              "Messages dropped at an unknown or detached endpoint",
              channel_.messages_dropped());
  set_counter("pm_retransmissions_total",
              "Ack-driven retransmissions (RoleRequest + FlowMod)",
              channel_.retransmissions());
  const FaultStats& faults = channel_.fault_stats();
  set_counter("pm_injected_drops_total", "Channel fault-injected drops",
              faults.injected_drops);
  set_counter("pm_injected_duplicates_total",
              "Channel fault-injected duplicates",
              faults.injected_duplicates);
  set_counter("pm_reordered_messages_total",
              "Messages grossly reordered by the fault model",
              faults.reordered);
  set_counter("pm_partition_drops_total",
              "Messages dropped inside partition windows",
              faults.partition_drops);
  set_counter("pm_sim_events_executed_total",
              "Event-queue callbacks executed",
              queue_.executed_total());
  set_counter("pm_sim_events_cancelled_total",
              "Cancelled event-queue entries skipped on pop",
              queue_.cancelled_skipped_total());

  double detected_at = -1.0;
  std::uint64_t recovery_waves = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t spurious_detections = 0;
  std::uint64_t stale_discarded = shared_.stale_discarded;
  for (const auto& c : controllers_) {
    duplicates_suppressed += c->duplicates_suppressed();
    if (!c->alive()) continue;
    spurious_detections += c->spurious_detections();
    if (c->first_detection_at() >= 0 &&
        (detected_at < 0 || c->first_detection_at() < detected_at)) {
      detected_at = c->first_detection_at();
    }
    recovery_waves += c->recoveries_run();
  }
  for (const auto& a : switches_) {
    duplicates_suppressed += a->duplicates_suppressed();
    stale_discarded += a->stale_discarded();
  }
  set_counter("pm_recovery_waves_total",
              "Recovery waves run by coordinators", recovery_waves);
  set_counter("pm_duplicates_suppressed_total",
              "Received messages suppressed as duplicates",
              duplicates_suppressed);
  set_counter("pm_spurious_detections_total",
              "Peers suspected and later proven alive",
              spurious_detections);
  set_counter("pm_stale_discarded_total",
              "Stale-epoch messages discarded (switches + controllers)",
              stale_discarded);
  set_counter("pm_rollback_removals_total",
              "Compensating removal FlowMods sent by rollback",
              shared_.rollback_removals);
  set_counter("pm_rollback_failures_total",
              "Rollback removals whose own retries exhausted",
              shared_.rollback_failures);
  set_counter("pm_waves_aborted_total",
              "Recovery waves superseded while still preparing",
              shared_.waves_aborted);
  set_counter("pm_coordinator_failovers_total",
              "Successor coordinators taking over a dead one's wave",
              shared_.coordinator_failovers);

  // Data-plane audit.
  bool all_flows_deliverable = false;
  std::set<sdwan::FlowId> flows_with_entries;
  std::size_t adopted_switches = 0;
  for (const auto& f : net_->flows()) {
    const auto trace = dataplane_.trace(f.src, {f.src, f.dst});
    if (&f == &net_->flows().front()) {
      all_flows_deliverable = trace.delivered;
    } else {
      all_flows_deliverable &= trace.delivered;
    }
  }
  obs::Histogram& load = m.histogram(
      "pm_switch_flow_entries",
      "Per-switch SDN flow-table size at the end of the run",
      {0, 1, 2, 5, 10, 20, 50, 100});
  for (int s = 0; s < net_->switch_count(); ++s) {
    load.observe(
        static_cast<double>(dataplane_.at(s).flow_table_size()));
    if (dataplane_.at(s).flow_table_size() > 0) {
      for (const auto& f : net_->flows()) {
        const auto r = dataplane_.at(s).lookup({f.src, f.dst});
        if (r.matched_flow_table) flows_with_entries.insert(f.id);
      }
    }
    const auto& agent = *switches_[static_cast<std::size_t>(s)];
    if (agent.master() >= 0 &&
        agent.master() != net_->controller_of(s)) {
      ++adopted_switches;
    }
  }

  const auto set_gauge = [&](const std::string& name,
                             const std::string& help, double v) {
    m.gauge(name, help).set(v);
  };
  set_gauge("pm_detected_at_ms",
            "First failure-detector firing; -1 = never", detected_at);
  set_gauge("pm_converged_at_ms",
            "Last recovery wave fully acked; -1 = not converged",
            shared_.converged_at);
  set_gauge("pm_flows_with_entries",
            "Flows whose SDN entries are installed in the data plane",
            static_cast<double>(flows_with_entries.size()));
  set_gauge("pm_adopted_switches", "Switches adopted by a new master",
            static_cast<double>(adopted_switches));
  set_gauge("pm_degraded_flows",
            "Flows whose FlowMod retries exhausted (legacy-forwarded)",
            static_cast<double>(shared_.degraded_flows.size()));
  set_gauge("pm_degraded_switches",
            "Switches whose RoleRequest retries exhausted",
            static_cast<double>(shared_.degraded_switches.size()));
  set_gauge("pm_all_flows_deliverable",
            "Data-plane audit: 1 if every flow is still deliverable",
            all_flows_deliverable ? 1.0 : 0.0);

  // Consistency audit against the committed plan/epoch. Only meaningful
  // (and only paid for — it rebuilds a FailureState) when the
  // transaction layer maintains a committed plan; legacy runs publish a
  // vacuously clean audit.
  double audit_violations = 0.0;
  double audit_clean = 1.0;
  if (config_.transactional) {
    const AuditReport audit_report = audit();
    audit_violations = static_cast<double>(audit_report.violations.size());
    audit_clean = audit_report.clean() ? 1.0 : 0.0;
    for (const auto& [invariant, count] : audit_report.by_invariant()) {
      m.gauge("pm_audit_violations_by_invariant",
              "Consistency-audit violations per invariant family",
              {{"invariant", invariant}})
          .set(static_cast<double>(count));
    }
  }
  set_gauge("pm_audit_violations",
            "Post-run consistency-audit violations (0 = clean)",
            audit_violations);
  set_gauge("pm_audit_clean",
            "1 if the post-run consistency audit found no violations",
            audit_clean);
}

AuditReport ControlSimulation::audit() const {
  std::vector<const SwitchAgent*> agents;
  agents.reserve(switches_.size());
  for (const auto& a : switches_) agents.push_back(a.get());
  std::vector<bool> alive;
  alive.reserve(controllers_.size());
  for (const auto& c : controllers_) alive.push_back(c->alive());
  return audit_recovery(*net_, dataplane_, agents, alive, shared_);
}

SimulationReport ControlSimulation::report_from_metrics() const {
  const obs::MetricsRegistry& m = obs_.metrics;
  SimulationReport report;
  // The gauges keep the Prometheus-friendly -1 sentinel; the report
  // exposes the same facts as optionals.
  if (const double d = m.gauge_value("pm_detected_at_ms"); d >= 0.0) {
    report.detected_at = d;
  }
  if (const double c = m.gauge_value("pm_converged_at_ms"); c >= 0.0) {
    report.converged_at = c;
  }
  report.messages_sent = m.counter_value("pm_messages_sent_total");
  report.messages_by_kind = m.counters_by_label("pm_messages_total", "kind");
  report.recovery_waves = m.counter_value("pm_recovery_waves_total");
  report.flows_with_entries =
      static_cast<std::size_t>(m.gauge_value("pm_flows_with_entries"));
  report.all_flows_deliverable =
      m.gauge_value("pm_all_flows_deliverable") != 0.0;
  report.adopted_switches =
      static_cast<std::size_t>(m.gauge_value("pm_adopted_switches"));
  report.retransmissions = m.counter_value("pm_retransmissions_total");
  report.duplicates_suppressed =
      m.counter_value("pm_duplicates_suppressed_total");
  report.spurious_detections =
      m.counter_value("pm_spurious_detections_total");
  report.degraded_flows =
      static_cast<std::size_t>(m.gauge_value("pm_degraded_flows"));
  report.degraded_switches =
      static_cast<std::size_t>(m.gauge_value("pm_degraded_switches"));
  report.injected_drops = m.counter_value("pm_injected_drops_total");
  report.injected_duplicates =
      m.counter_value("pm_injected_duplicates_total");
  report.reordered_messages =
      m.counter_value("pm_reordered_messages_total");
  report.partition_drops = m.counter_value("pm_partition_drops_total");
  report.stale_discarded = m.counter_value("pm_stale_discarded_total");
  report.rollback_removals =
      m.counter_value("pm_rollback_removals_total");
  report.waves_aborted = m.counter_value("pm_waves_aborted_total");
  report.coordinator_failovers =
      m.counter_value("pm_coordinator_failovers_total");
  report.audit_violations =
      static_cast<std::size_t>(m.gauge_value("pm_audit_violations"));
  report.audit_clean = m.gauge_value("pm_audit_clean") != 0.0;
  return report;
}

}  // namespace pm::ctrl
