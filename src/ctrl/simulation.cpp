#include "ctrl/simulation.hpp"

#include <set>

namespace pm::ctrl {

ControlSimulation::ControlSimulation(const sdwan::Network& net,
                                     RecoveryPolicy policy,
                                     ControllerConfig config)
    : net_(&net),
      channel_(net, queue_),
      dataplane_(net.topology(), sdwan::RoutingMode::kHybrid) {
  for (int s = 0; s < net.switch_count(); ++s) {
    switches_.push_back(
        std::make_unique<SwitchAgent>(s, dataplane_.at(s), channel_));
    switches_.back()->attach();
  }
  for (sdwan::ControllerId j = 0; j < net.controller_count(); ++j) {
    controllers_.push_back(std::make_unique<ControllerNode>(
        net, j, channel_, queue_, shared_, policy, config));
  }
  // Normal operation: every switch mastered by its domain controller.
  for (int s = 0; s < net.switch_count(); ++s) {
    const sdwan::ControllerId j = net.controller_of(s);
    switches_[static_cast<std::size_t>(s)]->set_initial_master(
        j, controller_endpoint(net, j));
  }
  for (auto& c : controllers_) c->start();
}

void ControlSimulation::fail_controller_at(sdwan::ControllerId j,
                                           double at_ms) {
  queue_.schedule_at(at_ms, [this, j] {
    // The channel's memoized pairwise delays were computed against the
    // pre-failure state; drop them so later sends re-derive (today the
    // topology itself is unchanged by a controller crash, but any
    // failure event that reweights/cuts links flows through this hook).
    channel_.invalidate_delays();
    controllers_[static_cast<std::size_t>(j)]->fail();
    for (sdwan::SwitchId s : net_->controller(j).domain) {
      switches_[static_cast<std::size_t>(s)]->orphan();
    }
  });
}

SimulationReport ControlSimulation::run(double until_ms) {
  queue_.run(until_ms);

  SimulationReport report;
  report.messages_sent = channel_.messages_sent();
  report.messages_by_kind = channel_.sent_by_kind();
  report.retransmissions = channel_.retransmissions();
  const FaultStats& faults = channel_.fault_stats();
  report.injected_drops = faults.injected_drops;
  report.injected_duplicates = faults.injected_duplicates;
  report.reordered_messages = faults.reordered;
  report.partition_drops = faults.partition_drops;
  for (const auto& c : controllers_) {
    report.duplicates_suppressed += c->duplicates_suppressed();
    if (!c->alive()) continue;
    report.spurious_detections += c->spurious_detections();
    if (c->first_detection_at() >= 0 &&
        (report.detected_at < 0 ||
         c->first_detection_at() < report.detected_at)) {
      report.detected_at = c->first_detection_at();
    }
    report.recovery_waves += c->recoveries_run();
  }
  for (const auto& a : switches_) {
    report.duplicates_suppressed += a->duplicates_suppressed();
  }
  report.converged_at = shared_.converged_at;
  report.degraded_flows = shared_.degraded_flows.size();
  report.degraded_switches = shared_.degraded_switches.size();

  // Data-plane audit.
  std::set<sdwan::FlowId> flows_with_entries;
  for (const auto& f : net_->flows()) {
    const auto trace = dataplane_.trace(f.src, {f.src, f.dst});
    if (&f == &net_->flows().front()) {
      report.all_flows_deliverable = trace.delivered;
    } else {
      report.all_flows_deliverable &= trace.delivered;
    }
  }
  for (int s = 0; s < net_->switch_count(); ++s) {
    if (dataplane_.at(s).flow_table_size() > 0) {
      for (const auto& f : net_->flows()) {
        const auto r = dataplane_.at(s).lookup({f.src, f.dst});
        if (r.matched_flow_table) flows_with_entries.insert(f.id);
      }
    }
    const auto& agent = *switches_[static_cast<std::size_t>(s)];
    if (agent.master() >= 0 &&
        agent.master() != net_->controller_of(s)) {
      ++report.adopted_switches;
    }
  }
  report.flows_with_entries = flows_with_entries.size();
  return report;
}

}  // namespace pm::ctrl
