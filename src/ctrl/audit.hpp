// Post-wave consistency auditor for transactional recovery.
//
// After a run, the data plane and switch agents must agree with the last
// COMMITTED plan — whatever crashed, raced or rolled back along the way.
// The auditor checks four invariant families:
//
//   orphaned-master  — no switch is mastered by a failed controller;
//   epoch            — no installed entry predates the committed epoch
//                      ("stale-epoch"), and no flow carries entries from
//                      two different epochs ("mixed-epoch");
//   over-capacity    — no active controller's normal + adopted load
//                      exceeds capacity x (1 + tolerance) under the
//                      committed plan;
//   plan-vs-state    — every committed (switch, flow) assignment of a
//                      non-degraded flow is installed with the path's
//                      next hop ("missing-entry" / "wrong-next-hop"),
//                      the plan's mapping is reflected in the agents'
//                      masters ("wrong-master"), and no entry exists
//                      outside the committed plan ("unplanned-entry").
//
// Degraded flows/switches are exempt from the plan-vs-state checks —
// degradation legitimately falls back to legacy routing — but NOT from
// the epoch checks: a degraded flow that still holds entries is exactly
// the half-applied state rollback exists to prevent.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "ctrl/controller.hpp"
#include "ctrl/switch_agent.hpp"
#include "sdwan/dataplane.hpp"

namespace pm::ctrl {

struct AuditViolation {
  /// Invariant family: "orphaned-master", "stale-epoch", "mixed-epoch",
  /// "over-capacity", "missing-entry", "wrong-next-hop", "wrong-master",
  /// "unplanned-entry".
  std::string invariant;
  std::string detail;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  std::size_t switches_checked = 0;
  std::size_t entries_checked = 0;
  std::size_t assignments_checked = 0;

  bool clean() const { return violations.empty(); }
  /// Violation counts per invariant family (for metrics labels).
  std::map<std::string, std::size_t> by_invariant() const;
};

/// Audits the end-of-run state. `agents` is indexed by switch id;
/// `controller_alive[j]` is controller j's liveness. Plan-dependent
/// checks are skipped while no wave has committed.
AuditReport audit_recovery(
    const sdwan::Network& net, const sdwan::Dataplane& dataplane,
    const std::vector<const SwitchAgent*>& agents,
    const std::vector<bool>& controller_alive,
    const SharedRecoveryState& shared, double overload_tolerance = 1e-9);

}  // namespace pm::ctrl
