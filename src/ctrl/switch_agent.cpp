#include "ctrl/switch_agent.hpp"

#include "obs/obs.hpp"

namespace pm::ctrl {

EndpointId controller_endpoint(const sdwan::Network& net,
                               sdwan::ControllerId j) {
  return net.switch_count() + j;
}

SwitchAgent::SwitchAgent(sdwan::SwitchId id, sdwan::HybridSwitch& sw,
                         ControlChannel& channel)
    : id_(id), switch_(&sw), channel_(&channel) {}

void SwitchAgent::attach() {
  channel_->attach(switch_endpoint(id_), id_,
                   [this](const Message& m) { on_message(m); });
}

void SwitchAgent::on_message(const Message& m) {
  if (const auto* role = std::get_if<RoleRequest>(&m.body)) {
    if (seen(m.seq)) {
      ++duplicates_suppressed_;
    } else {
      seen_seqs_.insert(m.seq);
      // Mode flip: the switch changes master (orphaned -> adopted, or a
      // re-adoption by a later wave).
      if (obs::Context* obs = channel_->observability();
          obs != nullptr && obs->tracer.enabled()) {
        obs->tracer.instant(
            channel_->queue_now(), "switch", "role.change",
            tracks::kSwitches,
            {{"switch", static_cast<int>(id_)},
             {"old_master", static_cast<int>(master_)},
             {"new_master", static_cast<int>(role->controller)}});
      }
      master_ = role->controller;
      master_endpoint_ = m.from;
    }
    // Always (re)reply: a duplicate request usually means our first
    // reply was lost on the way back.
    Message reply;
    reply.from = switch_endpoint(id_);
    reply.to = m.from;
    reply.body = RoleReply{id_, role->controller};
    channel_->send(reply);
    return;
  }
  if (const auto* mod = std::get_if<FlowMod>(&m.body)) {
    // Only the master may program the switch (OpenFlow master role).
    // A mod from anyone else is silently ignored (no ack, and the seq is
    // deliberately NOT marked seen: a retransmission arriving after the
    // role handover completes must still be applied).
    if (m.from != master_endpoint_) return;
    if (seen(m.seq)) {
      // Already applied — the ack got lost. Re-ack without re-applying
      // (a second install would duplicate the flow-table entry).
      ++duplicates_suppressed_;
      Message ack;
      ack.from = switch_endpoint(id_);
      ack.to = m.from;
      ack.body = FlowModAck{id_, mod->xid};
      channel_->send(ack);
      return;
    }
    seen_seqs_.insert(m.seq);
    if (mod->remove) {
      switch_->remove(mod->entry.match);
    } else {
      switch_->install(mod->entry);
    }
    ++flow_mods_applied_;
    if (obs::Context* obs = channel_->observability();
        obs != nullptr && obs->tracer.enabled()) {
      obs->tracer.instant(
          channel_->queue_now(), "switch", "flowmod.applied",
          tracks::kSwitches,
          {{"switch", static_cast<int>(id_)},
           {"xid", static_cast<std::int64_t>(mod->xid)},
           {"remove", mod->remove}});
    }
    Message ack;
    ack.from = switch_endpoint(id_);
    ack.to = m.from;
    ack.body = FlowModAck{id_, mod->xid};
    channel_->send(ack);
    return;
  }
  // Heartbeats / replies are controller-to-controller; ignore.
}

}  // namespace pm::ctrl
