#include "ctrl/switch_agent.hpp"

#include "obs/obs.hpp"

namespace pm::ctrl {

EndpointId controller_endpoint(const sdwan::Network& net,
                               sdwan::ControllerId j) {
  return net.switch_count() + j;
}

SwitchAgent::SwitchAgent(sdwan::SwitchId id, sdwan::HybridSwitch& sw,
                         ControlChannel& channel, bool epoch_guard)
    : id_(id), switch_(&sw), channel_(&channel),
      epoch_guard_(epoch_guard) {}

void SwitchAgent::attach() {
  channel_->attach(switch_endpoint(id_), id_,
                   [this](const Message& m) { on_message(m); });
}

void SwitchAgent::on_message(const Message& m) {
  if (const auto* role = std::get_if<RoleRequest>(&m.body)) {
    // Epoch guard: a request below the high-water mark is a deposed
    // master's retransmission from a superseded wave. Discard without
    // replying — the new wave's master already holds the switch.
    if (epoch_guard_ && role->epoch < epoch_) {
      ++stale_discarded_;
      return;
    }
    if (seen(m.seq)) {
      ++duplicates_suppressed_;
    } else {
      seen_seqs_.insert(m.seq);
      if (role->epoch > epoch_) epoch_ = role->epoch;
      // Mode flip: the switch changes master (orphaned -> adopted, or a
      // re-adoption by a later wave).
      if (obs::Context* obs = channel_->observability();
          obs != nullptr && obs->tracer.enabled()) {
        obs->tracer.instant(
            channel_->queue_now(), "switch", "role.change",
            tracks::kSwitches,
            {{"switch", static_cast<int>(id_)},
             {"old_master", static_cast<int>(master_)},
             {"new_master", static_cast<int>(role->controller)},
             {"epoch", static_cast<std::int64_t>(role->epoch)}});
      }
      master_ = role->controller;
      master_endpoint_ = m.from;
    }
    // Always (re)reply: a duplicate request usually means our first
    // reply was lost on the way back. Under the epoch guard the reply
    // carries the handover resync — every installed entry with its
    // epoch tag — so the new master can reconcile state left by a
    // crashed predecessor.
    Message reply;
    reply.from = switch_endpoint(id_);
    reply.to = m.from;
    RoleReply body{id_, role->controller, role->epoch, {}};
    if (epoch_guard_) {
      body.entries.reserve(entry_epochs_.size());
      for (const auto& [match, entry_epoch] : entry_epochs_) {
        body.entries.push_back({match.first, match.second, entry_epoch});
      }
    }
    reply.body = std::move(body);
    channel_->send(reply);
    return;
  }
  if (const auto* mod = std::get_if<FlowMod>(&m.body)) {
    // Only the master may program the switch (OpenFlow master role).
    // A mod from anyone else is silently ignored (no ack, and the seq is
    // deliberately NOT marked seen: a retransmission arriving after the
    // role handover completes must still be applied).
    if (m.from != master_endpoint_) return;
    // Epoch guard: the master endpoint can match across waves (plans are
    // seeded incrementally, so a re-adoption often keeps the adopter);
    // the epoch tells a superseded wave's mod apart. No ack — letting the
    // stale wave's machinery believe it succeeded would be worse.
    if (epoch_guard_ && mod->epoch < epoch_) {
      ++stale_discarded_;
      return;
    }
    if (seen(m.seq)) {
      // Already applied — the ack got lost. Re-ack without re-applying
      // (a second install would duplicate the flow-table entry).
      ++duplicates_suppressed_;
      Message ack;
      ack.from = switch_endpoint(id_);
      ack.to = m.from;
      ack.body = FlowModAck{id_, mod->xid, mod->epoch};
      channel_->send(ack);
      return;
    }
    seen_seqs_.insert(m.seq);
    if (mod->epoch > epoch_) epoch_ = mod->epoch;
    if (epoch_guard_) {
      const auto key =
          std::make_pair(mod->entry.match.src, mod->entry.match.dst);
      if (mod->remove) {
        switch_->remove(mod->entry.match);
        entry_epochs_.erase(key);
      } else {
        // Replace-on-install: a later wave re-programming the same match
        // supersedes the old entry instead of stacking a duplicate, and
        // the entry's epoch tag moves forward with it.
        if (entry_epochs_.contains(key)) {
          switch_->remove(mod->entry.match);
        }
        switch_->install(mod->entry);
        entry_epochs_[key] = mod->epoch;
      }
    } else if (mod->remove) {
      switch_->remove(mod->entry.match);
    } else {
      switch_->install(mod->entry);
    }
    ++flow_mods_applied_;
    if (obs::Context* obs = channel_->observability();
        obs != nullptr && obs->tracer.enabled()) {
      obs->tracer.instant(
          channel_->queue_now(), "switch", "flowmod.applied",
          tracks::kSwitches,
          {{"switch", static_cast<int>(id_)},
           {"xid", static_cast<std::int64_t>(mod->xid)},
           {"remove", mod->remove}});
    }
    Message ack;
    ack.from = switch_endpoint(id_);
    ack.to = m.from;
    ack.body = FlowModAck{id_, mod->xid, mod->epoch};
    channel_->send(ack);
    return;
  }
  // Heartbeats / replies are controller-to-controller; ignore.
}

}  // namespace pm::ctrl
