#include "ctrl/switch_agent.hpp"

namespace pm::ctrl {

EndpointId controller_endpoint(const sdwan::Network& net,
                               sdwan::ControllerId j) {
  return net.switch_count() + j;
}

SwitchAgent::SwitchAgent(sdwan::SwitchId id, sdwan::HybridSwitch& sw,
                         ControlChannel& channel)
    : id_(id), switch_(&sw), channel_(&channel) {}

void SwitchAgent::attach() {
  channel_->attach(switch_endpoint(id_), id_,
                   [this](const Message& m) { on_message(m); });
}

void SwitchAgent::on_message(const Message& m) {
  if (const auto* role = std::get_if<RoleRequest>(&m.body)) {
    master_ = role->controller;
    master_endpoint_ = m.from;
    Message reply;
    reply.from = switch_endpoint(id_);
    reply.to = m.from;
    reply.body = RoleReply{id_, master_};
    channel_->send(reply);
    return;
  }
  if (const auto* mod = std::get_if<FlowMod>(&m.body)) {
    // Only the master may program the switch (OpenFlow master role).
    // A mod from anyone else is silently ignored (no ack), which lets
    // the harness detect misbehaving plans by non-convergence.
    if (m.from != master_endpoint_) return;
    if (mod->remove) {
      switch_->remove(mod->entry.match);
    } else {
      switch_->install(mod->entry);
    }
    ++flow_mods_applied_;
    Message ack;
    ack.from = switch_endpoint(id_);
    ack.to = m.from;
    ack.body = FlowModAck{id_, mod->xid};
    channel_->send(ack);
    return;
  }
  // Heartbeats / replies are controller-to-controller; ignore.
}

}  // namespace pm::ctrl
