#include "ctrl/channel.hpp"

#include <stdexcept>
#include <utility>

#include "graph/shortest_path.hpp"
#include "obs/obs.hpp"

namespace pm::ctrl {

namespace {

/// Bucket bounds (ms) for the message-latency histogram: ATT propagation
/// delays sit in the low tens of ms; jitter and retransmission backoff
/// push the tail to the hundreds.
std::vector<double> latency_buckets() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500};
}

obs::Tracer::Args message_args(const Message& m, const std::string& kind) {
  return {{"kind", kind},
          {"from", m.from},
          {"to", m.to},
          {"seq", static_cast<std::int64_t>(m.seq)}};
}

}  // namespace

std::string message_kind(const Message& m) {
  struct Visitor {
    std::string operator()(const Heartbeat&) const { return "heartbeat"; }
    std::string operator()(const RoleRequest&) const {
      return "role-request";
    }
    std::string operator()(const RoleReply&) const { return "role-reply"; }
    std::string operator()(const FlowMod&) const { return "flow-mod"; }
    std::string operator()(const FlowModAck&) const {
      return "flow-mod-ack";
    }
  };
  return std::visit(Visitor{}, m.body);
}

void ControlChannel::attach(EndpointId id, sdwan::SwitchId location,
                            Handler handler) {
  net_->topology().graph().check_node(location);
  endpoints_[id] = {location, std::move(handler), true};
}

void ControlChannel::detach(EndpointId id) {
  const auto it = endpoints_.find(id);
  if (it != endpoints_.end()) it->second.attached = false;
}

void ControlChannel::set_fault_model(const ChannelFaultModel& model) {
  faults_ = model.active() ? std::make_unique<FaultInjector>(model)
                           : nullptr;
}

const FaultStats& ControlChannel::fault_stats() const {
  static const FaultStats kNone;
  return faults_ ? faults_->stats() : kNone;
}

void ControlChannel::set_observability(obs::Context* obs) {
  obs_ = obs;
  latency_hist_ = nullptr;  // re-resolved lazily against the new registry
}

double ControlChannel::path_delay_ms(EndpointId a, EndpointId b) const {
  const auto ia = endpoints_.find(a);
  const auto ib = endpoints_.find(b);
  if (ia == endpoints_.end() || ib == endpoints_.end()) return 0.0;
  return shortest_delay(ia->second.location, ib->second.location);
}

std::uint64_t ControlChannel::send(Message m, double extra_latency_ms) {
  m.seq = ++next_seq_;
  const std::uint64_t seq = m.seq;
  dispatch(std::move(m), extra_latency_ms);
  return seq;
}

void ControlChannel::resend(Message m, double extra_latency_ms) {
  if (m.seq == 0) {
    throw std::logic_error("resend of a message that was never sent");
  }
  ++retransmissions_;
  if (obs_ != nullptr && obs_->tracer.enabled()) {
    obs_->tracer.instant(queue_->now(), "channel", "retransmit",
                         tracks::kChannel,
                         message_args(m, message_kind(m)));
  }
  dispatch(std::move(m), extra_latency_ms);
}

void ControlChannel::dispatch(Message m, double extra_latency_ms) {
  const auto from = endpoints_.find(m.from);
  if (from == endpoints_.end() || !from->second.attached) {
    throw std::logic_error("send from unattached endpoint " +
                           std::to_string(m.from));
  }
  const bool tracing = obs_ != nullptr && obs_->tracer.enabled();
  const auto to = endpoints_.find(m.to);
  if (to == endpoints_.end()) {
    ++dropped_;
    if (tracing) {
      auto args = message_args(m, message_kind(m));
      args.emplace_back("reason", "unknown-endpoint");
      obs_->tracer.instant(queue_->now(), "channel", "drop",
                           tracks::kChannel, std::move(args));
    }
    return;
  }
  const std::string kind = message_kind(m);
  ++sent_;
  ++by_kind_[kind];
  if (tracing) {
    obs_->tracer.instant(queue_->now(), "channel", "send",
                         tracks::kChannel, message_args(m, kind));
  }

  // Propagation delay between the endpoints' locations over the data
  // network (in-band control), via the precomputed all-pairs distances in
  // Network's delay matrix when one endpoint is a controller; otherwise
  // re-derive from the topology. Both locations are topology nodes, so
  // use the graph distance directly.
  const double base_delay =
      shortest_delay(from->second.location, to->second.location) +
      extra_latency_ms;

  if (!faults_) {
    deliver_in(base_delay, std::move(m));
    return;
  }

  // Fault-injected path. Draw order is fixed (partition, drop, delay,
  // duplicate) so a given seed replays the identical fault sequence.
  if (faults_->partitioned(m.from, m.to, queue_->now(), kind)) {
    if (tracing) {
      auto args = message_args(m, kind);
      args.emplace_back("reason", "partition");
      obs_->tracer.instant(queue_->now(), "channel", "drop",
                           tracks::kChannel, std::move(args));
    }
    return;
  }
  if (faults_->drop(kind)) {
    if (tracing) {
      auto args = message_args(m, kind);
      args.emplace_back("reason", "fault-injected");
      obs_->tracer.instant(queue_->now(), "channel", "drop",
                           tracks::kChannel, std::move(args));
    }
    return;
  }
  const double jittered = base_delay + faults_->extra_delay(kind);
  const bool dup = faults_->duplicate(kind);
  if (dup) {
    deliver_in(base_delay + faults_->extra_delay(kind), m);
  }
  deliver_in(jittered, std::move(m));
}

void ControlChannel::deliver_in(double delay, Message m) {
  const EndpointId target = m.to;
  const double sent_at = queue_->now();
  queue_->schedule_in(delay, [this, target, sent_at,
                              m = std::move(m)] {
    const auto it = endpoints_.find(target);
    if (it == endpoints_.end() || !it->second.attached ||
        !it->second.handler) {
      ++dropped_;
      if (obs_ != nullptr && obs_->tracer.enabled()) {
        auto args = message_args(m, message_kind(m));
        args.emplace_back("reason", "detached-endpoint");
        obs_->tracer.instant(queue_->now(), "channel", "drop",
                             tracks::kChannel, std::move(args));
      }
      return;
    }
    if (obs_ != nullptr && obs_->detailed_metrics) {
      if (latency_hist_ == nullptr) {
        latency_hist_ = &obs_->metrics.histogram(
            "pm_message_latency_ms",
            "Control-message delivery latency (simulated clock)",
            latency_buckets());
      }
      latency_hist_->observe(queue_->now() - sent_at);
    }
    if (obs_ != nullptr && obs_->tracer.enabled()) {
      auto args = message_args(m, message_kind(m));
      args.emplace_back("latency_ms", queue_->now() - sent_at);
      obs_->tracer.instant(queue_->now(), "channel", "recv",
                           tracks::kChannel, std::move(args));
    }
    it->second.handler(m);
  });
}

double ControlChannel::shortest_delay(sdwan::SwitchId a,
                                      sdwan::SwitchId b) const {
  if (a == b) return 0.0;
  // Network caches per-switch-to-controller delays only; derive the
  // general pairwise delay from a controller location when possible,
  // otherwise via a (cached) Dijkstra.
  const auto key = a < b ? std::pair{a, b} : std::pair{b, a};
  const auto it = delay_cache_.find(key);
  if (it != delay_cache_.end()) return it->second;
  const auto sssp = graph::dijkstra(net_->topology().graph(), a);
  for (int v = 0; v < net_->switch_count(); ++v) {
    const auto k = a < v ? std::pair{a, v} : std::pair{v, a};
    delay_cache_[k] = sssp.dist[static_cast<std::size_t>(v)];
  }
  return delay_cache_.at(key);
}

}  // namespace pm::ctrl
