#include "ctrl/channel.hpp"

#include <stdexcept>
#include <utility>

#include "graph/shortest_path.hpp"

namespace pm::ctrl {

std::string message_kind(const Message& m) {
  struct Visitor {
    std::string operator()(const Heartbeat&) const { return "heartbeat"; }
    std::string operator()(const RoleRequest&) const {
      return "role-request";
    }
    std::string operator()(const RoleReply&) const { return "role-reply"; }
    std::string operator()(const FlowMod&) const { return "flow-mod"; }
    std::string operator()(const FlowModAck&) const {
      return "flow-mod-ack";
    }
  };
  return std::visit(Visitor{}, m.body);
}

void ControlChannel::attach(EndpointId id, sdwan::SwitchId location,
                            Handler handler) {
  net_->topology().graph().check_node(location);
  endpoints_[id] = {location, std::move(handler), true};
}

void ControlChannel::detach(EndpointId id) {
  const auto it = endpoints_.find(id);
  if (it != endpoints_.end()) it->second.attached = false;
}

void ControlChannel::set_fault_model(const ChannelFaultModel& model) {
  faults_ = model.active() ? std::make_unique<FaultInjector>(model)
                           : nullptr;
}

const FaultStats& ControlChannel::fault_stats() const {
  static const FaultStats kNone;
  return faults_ ? faults_->stats() : kNone;
}

double ControlChannel::path_delay_ms(EndpointId a, EndpointId b) const {
  const auto ia = endpoints_.find(a);
  const auto ib = endpoints_.find(b);
  if (ia == endpoints_.end() || ib == endpoints_.end()) return 0.0;
  return shortest_delay(ia->second.location, ib->second.location);
}

std::uint64_t ControlChannel::send(Message m, double extra_latency_ms) {
  m.seq = ++next_seq_;
  const std::uint64_t seq = m.seq;
  dispatch(std::move(m), extra_latency_ms);
  return seq;
}

void ControlChannel::resend(Message m, double extra_latency_ms) {
  if (m.seq == 0) {
    throw std::logic_error("resend of a message that was never sent");
  }
  ++retransmissions_;
  dispatch(std::move(m), extra_latency_ms);
}

void ControlChannel::dispatch(Message m, double extra_latency_ms) {
  const auto from = endpoints_.find(m.from);
  if (from == endpoints_.end() || !from->second.attached) {
    throw std::logic_error("send from unattached endpoint " +
                           std::to_string(m.from));
  }
  const auto to = endpoints_.find(m.to);
  if (to == endpoints_.end()) {
    ++dropped_;
    return;
  }
  const std::string kind = message_kind(m);
  ++sent_;
  ++by_kind_[kind];

  // Propagation delay between the endpoints' locations over the data
  // network (in-band control), via the precomputed all-pairs distances in
  // Network's delay matrix when one endpoint is a controller; otherwise
  // re-derive from the topology. Both locations are topology nodes, so
  // use the graph distance directly.
  const double base_delay =
      shortest_delay(from->second.location, to->second.location) +
      extra_latency_ms;

  if (!faults_) {
    deliver_in(base_delay, std::move(m));
    return;
  }

  // Fault-injected path. Draw order is fixed (partition, drop, delay,
  // duplicate) so a given seed replays the identical fault sequence.
  if (faults_->partitioned(m.from, m.to, queue_->now(), kind)) return;
  if (faults_->drop(kind)) return;
  const double jittered = base_delay + faults_->extra_delay(kind);
  const bool dup = faults_->duplicate(kind);
  if (dup) {
    deliver_in(base_delay + faults_->extra_delay(kind), m);
  }
  deliver_in(jittered, std::move(m));
}

void ControlChannel::deliver_in(double delay, Message m) {
  const EndpointId target = m.to;
  queue_->schedule_in(delay, [this, target, m = std::move(m)] {
    const auto it = endpoints_.find(target);
    if (it == endpoints_.end() || !it->second.attached ||
        !it->second.handler) {
      ++dropped_;
      return;
    }
    it->second.handler(m);
  });
}

double ControlChannel::shortest_delay(sdwan::SwitchId a,
                                      sdwan::SwitchId b) const {
  if (a == b) return 0.0;
  // Network caches per-switch-to-controller delays only; derive the
  // general pairwise delay from a controller location when possible,
  // otherwise via a (cached) Dijkstra.
  const auto key = a < b ? std::pair{a, b} : std::pair{b, a};
  const auto it = delay_cache_.find(key);
  if (it != delay_cache_.end()) return it->second;
  const auto sssp = graph::dijkstra(net_->topology().graph(), a);
  for (int v = 0; v < net_->switch_count(); ++v) {
    const auto k = a < v ? std::pair{a, v} : std::pair{v, a};
    delay_cache_[k] = sssp.dist[static_cast<std::size_t>(v)];
  }
  return delay_cache_.at(key);
}

}  // namespace pm::ctrl
