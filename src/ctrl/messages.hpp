// Control-plane message vocabulary — an OpenFlow-flavoured protocol for
// the message-level simulation in pm::ctrl.
//
// Endpoints are switches and controllers on one id space: switch s keeps
// its topology node id; controller j gets switch_count + j. Messages are
// plain data; the channel (channel.hpp) delivers them with propagation
// delay and the agents (switch_agent.hpp, controller.hpp) react.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "sdwan/hybrid_switch.hpp"
#include "sdwan/types.hpp"

namespace pm::ctrl {

using EndpointId = int;

/// Controller -> controller liveness beacon.
struct Heartbeat {
  sdwan::ControllerId from = -1;
  std::uint64_t sequence = 0;
};

/// Controller -> switch: become (or stop being) my subordinate.
struct RoleRequest {
  sdwan::ControllerId controller = -1;
};

/// Switch -> controller: role accepted.
struct RoleReply {
  sdwan::SwitchId sw = -1;
  sdwan::ControllerId accepted = -1;
};

/// Controller -> switch: install or remove one flow entry.
struct FlowMod {
  sdwan::FlowEntry entry;
  bool remove = false;
  /// Correlates the ack; also used to count convergence.
  std::uint64_t xid = 0;
};

/// Switch -> controller: flow-mod applied (barrier semantics).
struct FlowModAck {
  sdwan::SwitchId sw = -1;
  std::uint64_t xid = 0;
};

using MessageBody =
    std::variant<Heartbeat, RoleRequest, RoleReply, FlowMod, FlowModAck>;

struct Message {
  EndpointId from = -1;
  EndpointId to = -1;
  MessageBody body;
  /// Channel-assigned sequence number, unique per logical message; a
  /// retransmission reuses the original's seq so receivers can suppress
  /// duplicates (both channel-injected copies and redundant retries).
  /// 0 = not yet assigned.
  std::uint64_t seq = 0;
};

/// Human-readable tag for traces ("heartbeat", "flow-mod", ...).
std::string message_kind(const Message& m);

}  // namespace pm::ctrl
