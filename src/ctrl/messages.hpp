// Control-plane message vocabulary — an OpenFlow-flavoured protocol for
// the message-level simulation in pm::ctrl.
//
// Endpoints are switches and controllers on one id space: switch s keeps
// its topology node id; controller j gets switch_count + j. Messages are
// plain data; the channel (channel.hpp) delivers them with propagation
// delay and the agents (switch_agent.hpp, controller.hpp) react.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sdwan/hybrid_switch.hpp"
#include "sdwan/types.hpp"

namespace pm::ctrl {

using EndpointId = int;

/// Controller -> controller liveness beacon.
struct Heartbeat {
  sdwan::ControllerId from = -1;
  std::uint64_t sequence = 0;
};

/// Controller -> switch: become (or stop being) my subordinate.
///
/// `epoch` is the recovery wave's transaction epoch (monotonically
/// increasing across waves). A switch remembers the highest epoch it has
/// accepted and discards requests below it, so a deposed master's stale
/// retransmissions cannot reclaim the switch after a newer wave.
struct RoleRequest {
  sdwan::ControllerId controller = -1;
  std::uint64_t epoch = 0;
};

/// One installed flow entry as reported by a switch: the match plus the
/// epoch of the wave that installed it.
struct ReportedEntry {
  sdwan::SwitchId src = -1;
  sdwan::SwitchId dst = -1;
  std::uint64_t epoch = 0;
};

/// Switch -> controller: role accepted. Echoes the request's epoch so
/// controllers can ignore replies that belong to a superseded wave.
///
/// `entries` is the handover resync (OpenFlow reads flow stats on a
/// master change for the same reason): the switch reports what it has
/// installed, so a new master learns about entries whose installing
/// controller died before the ack came back — the only way such state
/// ever becomes visible to the surviving control plane.
struct RoleReply {
  sdwan::SwitchId sw = -1;
  sdwan::ControllerId accepted = -1;
  std::uint64_t epoch = 0;
  std::vector<ReportedEntry> entries;
};

/// Controller -> switch: install or remove one flow entry. Carries the
/// wave epoch; the switch discards mods older than its epoch high-water
/// mark (a deposed master programming against a superseded plan).
struct FlowMod {
  sdwan::FlowEntry entry;
  bool remove = false;
  /// Correlates the ack; also used to count convergence.
  std::uint64_t xid = 0;
  std::uint64_t epoch = 0;
};

/// Switch -> controller: flow-mod applied (barrier semantics). Echoes
/// the mod's epoch; an ack from a superseded wave must not complete (or
/// un-degrade) work in the current one.
struct FlowModAck {
  sdwan::SwitchId sw = -1;
  std::uint64_t xid = 0;
  std::uint64_t epoch = 0;
};

using MessageBody =
    std::variant<Heartbeat, RoleRequest, RoleReply, FlowMod, FlowModAck>;

struct Message {
  EndpointId from = -1;
  EndpointId to = -1;
  MessageBody body;
  /// Channel-assigned sequence number, unique per logical message; a
  /// retransmission reuses the original's seq so receivers can suppress
  /// duplicates (both channel-injected copies and redundant retries).
  /// 0 = not yet assigned.
  std::uint64_t seq = 0;
};

/// Human-readable tag for traces ("heartbeat", "flow-mod", ...).
std::string message_kind(const Message& m);

}  // namespace pm::ctrl
