// Switch-side protocol agent: owns one HybridSwitch of the data plane and
// reacts to control messages — RoleRequest changes its master controller,
// FlowMod installs/removes entries (acked, barrier-style). A switch whose
// master is gone keeps forwarding with whatever tables it has (that is
// the whole premise of hybrid recovery: the legacy table keeps working).
//
// Reliable delivery: every delivered message carries the channel's
// sequence number. The agent remembers the seqs it has acted on, so a
// duplicate (channel-injected copy or controller retransmission) is
// suppressed instead of re-applied — but still re-acknowledged, because
// the duplicate usually means the first ack was lost.
//
// Transactional recovery: the agent keeps an epoch high-water mark over
// the RoleRequests/FlowMods it has accepted. A message whose epoch is
// below the mark comes from a deposed master's superseded wave and is
// discarded (counted, no ack) — so a coordinator that crashed mid-wave
// cannot keep programming switches after its successor re-ran the wave.
// Each installed entry remembers the epoch that installed it (the
// consistency auditor checks no flow mixes epochs), and a re-install of
// the same match replaces the old entry instead of stacking a duplicate.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>

#include "ctrl/channel.hpp"
#include "ctrl/messages.hpp"
#include "sdwan/hybrid_switch.hpp"

namespace pm::ctrl {

class SwitchAgent {
 public:
  /// `sw` must outlive the agent (it lives in the shared Dataplane).
  /// `epoch_guard` = false reproduces the pre-transactional protocol
  /// (epochs carried but never enforced); used for A/B comparisons.
  SwitchAgent(sdwan::SwitchId id, sdwan::HybridSwitch& sw,
              ControlChannel& channel, bool epoch_guard = true);

  sdwan::SwitchId id() const { return id_; }

  /// Current master controller, or -1 when orphaned.
  sdwan::ControllerId master() const { return master_; }

  void set_initial_master(sdwan::ControllerId j, EndpointId endpoint) {
    master_ = j;
    master_endpoint_ = endpoint;
  }

  /// Marks the master as dead (the agent itself has no failure detector;
  /// the simulation harness informs it, modeling the OpenFlow channel
  /// teardown). Tables are untouched.
  void orphan() {
    master_ = -1;
    master_endpoint_ = -1;
  }

  std::uint64_t flow_mods_applied() const { return flow_mods_applied_; }

  /// Messages whose seq was already processed (retransmits + channel
  /// duplicates) and were therefore not re-applied.
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

  /// Highest recovery epoch this switch has accepted a message from.
  std::uint64_t epoch() const { return epoch_; }

  /// RoleRequests/FlowMods discarded because their epoch was below the
  /// high-water mark (a deposed master's superseded wave).
  std::uint64_t stale_discarded() const { return stale_discarded_; }

  /// The epoch that installed each currently present flow-table entry,
  /// keyed by the entry's (src, dst) match. The consistency auditor
  /// reads this to detect mixed-epoch flow state.
  const std::map<std::pair<sdwan::SwitchId, sdwan::SwitchId>,
                 std::uint64_t>&
  entry_epochs() const {
    return entry_epochs_;
  }

  /// Wire this agent's handler into the channel.
  void attach();

 private:
  void on_message(const Message& m);
  bool seen(std::uint64_t seq) const {
    return seq != 0 && seen_seqs_.contains(seq);
  }

  sdwan::SwitchId id_;
  sdwan::HybridSwitch* switch_;
  ControlChannel* channel_;
  bool epoch_guard_;
  sdwan::ControllerId master_ = -1;
  EndpointId master_endpoint_ = -1;
  std::uint64_t epoch_ = 0;
  std::uint64_t flow_mods_applied_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t stale_discarded_ = 0;
  std::unordered_set<std::uint64_t> seen_seqs_;
  std::map<std::pair<sdwan::SwitchId, sdwan::SwitchId>, std::uint64_t>
      entry_epochs_;
};

/// Endpoint id helpers shared by agents and the harness.
inline EndpointId switch_endpoint(sdwan::SwitchId s) { return s; }
EndpointId controller_endpoint(const sdwan::Network& net,
                               sdwan::ControllerId j);

}  // namespace pm::ctrl
