#include "milp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace pm::milp {

int Model::add_variable(const std::string& name, double lower, double upper,
                        double objective_coeff, VarType type) {
  if (type == VarType::kBinary) {
    lower = std::max(lower, 0.0);
    upper = std::min(upper, 1.0);
  }
  if (lower > upper) {
    throw std::invalid_argument("variable '" + name +
                                "': lower bound exceeds upper bound");
  }
  variables_.push_back({name, lower, upper, objective_coeff, type});
  return variable_count() - 1;
}

int Model::add_constraint(const std::string& name, std::vector<Term> terms,
                          Sense sense, double rhs) {
  std::map<int, double> merged;
  for (const Term& t : terms) {
    if (t.var < 0 || t.var >= variable_count()) {
      throw std::invalid_argument("constraint '" + name +
                                  "': variable index out of range");
    }
    if (!std::isfinite(t.coeff)) {
      throw std::invalid_argument("constraint '" + name +
                                  "': non-finite coefficient");
    }
    merged[t.var] += t.coeff;
  }
  Constraint c;
  c.name = name;
  c.sense = sense;
  c.rhs = rhs;
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) c.terms.push_back({var, coeff});
  }
  constraints_.push_back(std::move(c));
  return constraint_count() - 1;
}

bool Model::has_integer_variables() const {
  return std::any_of(variables_.begin(), variables_.end(),
                     [](const Variable& v) {
                       return v.type != VarType::kContinuous;
                     });
}

double Model::objective_value(const std::vector<double>& x) const {
  double obj = 0.0;
  for (int i = 0; i < variable_count(); ++i) {
    obj += variables_[static_cast<std::size_t>(i)].objective *
           x[static_cast<std::size_t>(i)];
  }
  return obj;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != variable_count()) return false;
  for (int i = 0; i < variable_count(); ++i) {
    const Variable& v = variables_[static_cast<std::size_t>(i)];
    const double xi = x[static_cast<std::size_t>(i)];
    if (xi < v.lower - tol || xi > v.upper + tol) return false;
    if (v.type != VarType::kContinuous &&
        std::abs(xi - std::round(xi)) > tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) {
      lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    }
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace pm::milp
