// Branch-and-bound MILP solver on top of the simplex LP relaxation.
//
// Features mirroring how the paper uses GUROBI (Sec. VI-B-1):
//  * warm start — an incumbent can be injected (we seed it with PM's
//    heuristic solution, standard MIP practice), so the solver always
//    reports a solution at least as good as the heuristic;
//  * node / time limits with honest status reporting: when a limit stops
//    the search before the gap closes, the status says so — this is the
//    behaviour behind the paper's Fig. 6, where "Optimal" produces results
//    in only 12 of 20 three-failure cases;
//  * best-bound tracking for the optimality gap;
//  * a rounding heuristic at every node to find incumbents early.
//
// Branching: most-fractional integer variable; depth-first search, with
// the child closer to the LP value explored first.
#pragma once

#include <optional>
#include <vector>

#include "milp/model.hpp"
#include "milp/simplex.hpp"

namespace pm::milp {

struct MipOptions {
  double time_limit_seconds = 60.0;
  long node_limit = 100000;
  /// Relative optimality gap at which the search stops.
  double gap_tolerance = 1e-6;
  /// Tolerance for treating an LP value as integral.
  double integrality_tolerance = 1e-6;
  /// Optional feasible starting solution (checked; ignored if infeasible).
  std::optional<std::vector<double>> warm_start;
  /// Run the presolve reductions (milp/presolve.hpp) before the search.
  bool presolve = true;
  SimplexOptions lp;
};

enum class MipStatus {
  kOptimal,        ///< incumbent proven optimal (gap closed)
  kFeasible,       ///< limit hit; incumbent available but not proven
  kInfeasible,     ///< proven infeasible
  kNoSolutionFound,///< limit hit before any incumbent appeared
  kUnbounded,
};

struct MipResult {
  MipStatus status = MipStatus::kNoSolutionFound;
  double objective = 0.0;          ///< incumbent objective (model sense).
  std::vector<double> x;           ///< incumbent; empty if none.
  double best_bound = 0.0;         ///< proven bound on the optimum.
  long nodes_explored = 0;
  double seconds = 0.0;

  bool has_solution() const {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasible;
  }
};

std::string to_string(MipStatus status);

MipResult solve_mip(const Model& model, const MipOptions& options = {});

}  // namespace pm::milp
