#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "obs/profile.hpp"

namespace pm::milp {

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

enum class VarState { kBasic, kAtLower, kAtUpper, kFreeAtZero };

struct SparseEntry {
  int row = 0;
  double value = 0.0;
};

/// Internal solver working on the equality form with slacks + artificials.
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& options)
      : model_(model), options_(options) {
    build();
  }

  LpResult run() {
    LpResult result;
    // ---- Phase 1 (only when the slack basis is infeasible). ----
    if (need_phase1_) {
      set_phase1_costs();
      const LpStatus phase1 = iterate(result.iterations);
      if (phase1 == LpStatus::kIterationLimit) {
        result.status = phase1;
        return result;
      }
      if (phase1 == LpStatus::kUnbounded) {
        // Phase-1 objective is bounded below by 0; numerical noise.
        result.status = LpStatus::kIterationLimit;
        return result;
      }
      if (phase1_objective() > 1e-6) {
        result.status = LpStatus::kInfeasible;
        return result;
      }
    }
    // ---- Phase 2: original costs; artificials pinned to zero. ----
    set_phase2_costs();
    const LpStatus phase2 = iterate(result.iterations);
    if (phase2 != LpStatus::kOptimal) {
      result.status = phase2;
      return result;
    }
    result.status = LpStatus::kOptimal;
    result.x = extract_structural();
    result.objective = model_.objective_value(result.x);
    return result;
  }

 private:
  // ------------------------------------------------------------------
  // Problem construction.
  // ------------------------------------------------------------------
  void build() {
    m_ = model_.constraint_count();
    n_structural_ = model_.variable_count();
    const int total = n_structural_ + m_ /*slacks*/ + m_ /*artificials*/;
    cols_.resize(static_cast<std::size_t>(total));
    lb_.assign(static_cast<std::size_t>(total), 0.0);
    ub_.assign(static_cast<std::size_t>(total), kInfinity);
    cost_.assign(static_cast<std::size_t>(total), 0.0);
    state_.assign(static_cast<std::size_t>(total), VarState::kAtLower);
    b_.assign(static_cast<std::size_t>(m_), 0.0);

    const double sign = model_.objective_sense() == Objective::kMaximize
                            ? -1.0
                            : 1.0;
    for (int j = 0; j < n_structural_; ++j) {
      const Variable& v = model_.variable(j);
      lb_[static_cast<std::size_t>(j)] = v.lower;
      ub_[static_cast<std::size_t>(j)] = v.upper;
      objective_cost_of_[static_cast<std::size_t>(j)] = sign * v.objective;
      state_[static_cast<std::size_t>(j)] = resting_state(v.lower, v.upper);
    }
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model_.constraint(i);
      b_[static_cast<std::size_t>(i)] = c.rhs;
      for (const Term& t : c.terms) {
        cols_[static_cast<std::size_t>(t.var)].push_back({i, t.coeff});
      }
      // Slack column.
      const int s = n_structural_ + i;
      cols_[static_cast<std::size_t>(s)].push_back({i, 1.0});
      switch (c.sense) {
        case Sense::kLe:
          lb_[static_cast<std::size_t>(s)] = 0.0;
          ub_[static_cast<std::size_t>(s)] = kInfinity;
          break;
        case Sense::kGe:
          lb_[static_cast<std::size_t>(s)] = -kInfinity;
          ub_[static_cast<std::size_t>(s)] = 0.0;
          break;
        case Sense::kEq:
          lb_[static_cast<std::size_t>(s)] = 0.0;
          ub_[static_cast<std::size_t>(s)] = 0.0;
          break;
      }
      state_[static_cast<std::size_t>(s)] =
          resting_state(lb_[static_cast<std::size_t>(s)],
                        ub_[static_cast<std::size_t>(s)]);
    }

    // Initial basis. Rows whose slack can absorb the residual (given all
    // structural variables at their resting bounds) start with the slack
    // basic — the common case for models whose all-at-bounds point is
    // feasible, which then skips phase 1 entirely. Only rows the slack
    // cannot cover get an artificial, sign-adjusted to start nonnegative.
    basis_.resize(static_cast<std::size_t>(m_));
    std::vector<double> residual = b_;
    for (int j = 0; j < n_structural_; ++j) {
      const double xj = resting_value(j);
      if (xj == 0.0) continue;
      for (const SparseEntry& e : cols_[static_cast<std::size_t>(j)]) {
        residual[static_cast<std::size_t>(e.row)] -= e.value * xj;
      }
    }
    need_phase1_ = false;
    for (int i = 0; i < m_; ++i) {
      const int s = n_structural_ + i;
      const int a = n_structural_ + m_ + i;
      const double r = residual[static_cast<std::size_t>(i)];
      lb_[static_cast<std::size_t>(a)] = 0.0;
      ub_[static_cast<std::size_t>(a)] = kInfinity;
      if (r >= lb_[static_cast<std::size_t>(s)] - 1e-12 &&
          r <= ub_[static_cast<std::size_t>(s)] + 1e-12) {
        // Slack covers the row: slack basic, artificial nonbasic at 0.
        cols_[static_cast<std::size_t>(a)].push_back({i, 1.0});
        state_[static_cast<std::size_t>(s)] = VarState::kBasic;
        state_[static_cast<std::size_t>(a)] = VarState::kAtLower;
        basis_[static_cast<std::size_t>(i)] = s;
      } else {
        cols_[static_cast<std::size_t>(a)].push_back(
            {i, r >= 0 ? 1.0 : -1.0});
        state_[static_cast<std::size_t>(a)] = VarState::kBasic;
        basis_[static_cast<std::size_t>(i)] = a;
        need_phase1_ = true;
      }
    }
    // Initial basis inverse: basis columns are all +-e_i (slacks are e_i,
    // artificials are sign * e_i), so B^-1 is diagonal.
    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
                 0.0);
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[static_cast<std::size_t>(i)];
      binv_[idx(i, i)] = cols_[static_cast<std::size_t>(bj)][0].value;
    }
    compute_basic_values();
  }

  static VarState resting_state(double lb, double ub) {
    if (std::isfinite(lb)) return VarState::kAtLower;
    if (std::isfinite(ub)) return VarState::kAtUpper;
    return VarState::kFreeAtZero;
  }

  double resting_value(int j) const {
    switch (state_[static_cast<std::size_t>(j)]) {
      case VarState::kAtLower: return lb_[static_cast<std::size_t>(j)];
      case VarState::kAtUpper: return ub_[static_cast<std::size_t>(j)];
      case VarState::kFreeAtZero: return 0.0;
      case VarState::kBasic: break;
    }
    throw std::logic_error("resting_value called on basic variable");
  }

  std::size_t idx(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(c);
  }

  void set_phase1_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      cost_[static_cast<std::size_t>(n_structural_ + m_ + i)] = 1.0;
    }
  }

  void set_phase2_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (const auto& [j, c] : objective_cost_of_) cost_[j] = c;
    // Pin artificials to zero so they cannot re-enter with value > 0.
    for (int i = 0; i < m_; ++i) {
      const int a = n_structural_ + m_ + i;
      ub_[static_cast<std::size_t>(a)] = 0.0;
      if (state_[static_cast<std::size_t>(a)] != VarState::kBasic) {
        state_[static_cast<std::size_t>(a)] = VarState::kAtLower;
      }
    }
  }

  /// Sum of (basic) artificial values — zero iff the original problem is
  /// feasible. Nonbasic artificials rest at their lower bound 0.
  double phase1_objective() const {
    double obj = 0.0;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[static_cast<std::size_t>(r)];
      if (j >= n_structural_ + m_) {
        obj += std::max(0.0, xb_[static_cast<std::size_t>(r)]);
      }
    }
    return obj;
  }

  // ------------------------------------------------------------------
  // Linear algebra helpers.
  // ------------------------------------------------------------------

  /// xb = B^-1 (b - A_N x_N)
  void compute_basic_values() {
    std::vector<double> rhs = b_;
    const int total = static_cast<int>(cols_.size());
    for (int j = 0; j < total; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
      const double xj = resting_value(j);
      if (xj == 0.0) continue;
      for (const SparseEntry& e : cols_[static_cast<std::size_t>(j)]) {
        rhs[static_cast<std::size_t>(e.row)] -= e.value * xj;
      }
    }
    xb_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      double acc = 0.0;
      for (int k = 0; k < m_; ++k) {
        acc += binv_[idx(r, k)] * rhs[static_cast<std::size_t>(k)];
      }
      xb_[static_cast<std::size_t>(r)] = acc;
    }
  }

  /// Rebuilds binv_ from the basis columns by Gauss-Jordan with partial
  /// pivoting. Returns false if the basis matrix is numerically singular.
  bool refactorize() {
    std::vector<double> mat(static_cast<std::size_t>(m_) *
                                static_cast<std::size_t>(m_),
                            0.0);
    for (int c = 0; c < m_; ++c) {
      for (const SparseEntry& e :
           cols_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(c)])]) {
        mat[idx(e.row, c)] = e.value;
      }
    }
    std::vector<double> inv(static_cast<std::size_t>(m_) *
                                static_cast<std::size_t>(m_),
                            0.0);
    for (int i = 0; i < m_; ++i) inv[idx(i, i)] = 1.0;

    for (int col = 0; col < m_; ++col) {
      int pivot_row = col;
      double best = std::abs(mat[idx(col, col)]);
      for (int r = col + 1; r < m_; ++r) {
        const double v = std::abs(mat[idx(r, col)]);
        if (v > best) {
          best = v;
          pivot_row = r;
        }
      }
      if (best < 1e-12) return false;
      if (pivot_row != col) {
        for (int c = 0; c < m_; ++c) {
          std::swap(mat[idx(pivot_row, c)], mat[idx(col, c)]);
          std::swap(inv[idx(pivot_row, c)], inv[idx(col, c)]);
        }
      }
      const double pivot = mat[idx(col, col)];
      for (int c = 0; c < m_; ++c) {
        mat[idx(col, c)] /= pivot;
        inv[idx(col, c)] /= pivot;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = mat[idx(r, col)];
        if (f == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          mat[idx(r, c)] -= f * mat[idx(col, c)];
          inv[idx(r, c)] -= f * inv[idx(col, c)];
        }
      }
    }
    binv_ = std::move(inv);
    return true;
  }

  // ------------------------------------------------------------------
  // The simplex loop (minimization).
  // ------------------------------------------------------------------
  LpStatus iterate(int& iteration_counter) {
    int degenerate_run = 0;
    while (true) {
      if (iteration_counter >= options_.max_iterations) {
        return LpStatus::kIterationLimit;
      }
      ++iteration_counter;
      if (iteration_counter % options_.refactor_every == 0) {
        if (!refactorize()) return LpStatus::kIterationLimit;
        compute_basic_values();
      }

      // Simplex multipliers y = c_B^T B^-1.
      std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
      for (int r = 0; r < m_; ++r) {
        const double cb =
            cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
        if (cb == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          y[static_cast<std::size_t>(k)] += cb * binv_[idx(r, k)];
        }
      }

      // Pricing.
      const bool bland = degenerate_run > 64;
      int entering = -1;
      int direction = 0;  // +1 = increase, -1 = decrease
      double best_score = options_.tol;
      const int total = static_cast<int>(cols_.size());
      for (int j = 0; j < total; ++j) {
        const VarState st = state_[static_cast<std::size_t>(j)];
        if (st == VarState::kBasic) continue;
        if (lb_[static_cast<std::size_t>(j)] ==
            ub_[static_cast<std::size_t>(j)]) {
          continue;  // fixed variable can never improve
        }
        double d = cost_[static_cast<std::size_t>(j)];
        for (const SparseEntry& e : cols_[static_cast<std::size_t>(j)]) {
          d -= y[static_cast<std::size_t>(e.row)] * e.value;
        }
        int dir = 0;
        if ((st == VarState::kAtLower || st == VarState::kFreeAtZero) &&
            d < -options_.tol) {
          dir = +1;
        } else if ((st == VarState::kAtUpper ||
                    st == VarState::kFreeAtZero) &&
                   d > options_.tol) {
          dir = -1;
        }
        if (dir == 0) continue;
        if (bland) {
          entering = j;
          direction = dir;
          break;
        }
        if (std::abs(d) > best_score) {
          best_score = std::abs(d);
          entering = j;
          direction = dir;
        }
      }
      if (entering < 0) return LpStatus::kOptimal;

      // w = B^-1 a_entering.
      std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
      for (const SparseEntry& e : cols_[static_cast<std::size_t>(entering)]) {
        for (int r = 0; r < m_; ++r) {
          w[static_cast<std::size_t>(r)] +=
              binv_[idx(r, e.row)] * e.value;
        }
      }

      // Ratio test: entering moves by t >= 0 in `direction`;
      // basic values change by -direction * t * w.
      double t_max = kInfinity;
      int leaving_row = -1;
      bool leaving_at_upper = false;
      for (int r = 0; r < m_; ++r) {
        const double delta = direction * w[static_cast<std::size_t>(r)];
        if (std::abs(delta) < 1e-11) continue;
        const int jb = basis_[static_cast<std::size_t>(r)];
        const double xr = xb_[static_cast<std::size_t>(r)];
        double limit;
        bool hits_upper;
        if (delta > 0) {  // basic value decreases toward its lower bound
          const double lo = lb_[static_cast<std::size_t>(jb)];
          if (!std::isfinite(lo)) continue;
          limit = (xr - lo) / delta;
          hits_upper = false;
        } else {  // basic value increases toward its upper bound
          const double hi = ub_[static_cast<std::size_t>(jb)];
          if (!std::isfinite(hi)) continue;
          limit = (xr - hi) / delta;
          hits_upper = true;
        }
        limit = std::max(limit, 0.0);
        if (limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 && leaving_row >= 0 &&
             std::abs(w[static_cast<std::size_t>(r)]) >
                 std::abs(w[static_cast<std::size_t>(leaving_row)]))) {
          t_max = limit;
          leaving_row = r;
          leaving_at_upper = hits_upper;
        }
      }
      // Bound flip of the entering variable itself.
      const double range = ub_[static_cast<std::size_t>(entering)] -
                           lb_[static_cast<std::size_t>(entering)];
      const bool can_flip = std::isfinite(range);
      if (can_flip && range <= t_max + 1e-12 &&
          state_[static_cast<std::size_t>(entering)] !=
              VarState::kFreeAtZero) {
        // Flip lower <-> upper; basis unchanged.
        for (int r = 0; r < m_; ++r) {
          xb_[static_cast<std::size_t>(r)] -=
              direction * range * w[static_cast<std::size_t>(r)];
        }
        state_[static_cast<std::size_t>(entering)] =
            state_[static_cast<std::size_t>(entering)] == VarState::kAtLower
                ? VarState::kAtUpper
                : VarState::kAtLower;
        degenerate_run = range < 1e-10 ? degenerate_run + 1 : 0;
        continue;
      }
      if (leaving_row < 0) return LpStatus::kUnbounded;

      degenerate_run = t_max < 1e-10 ? degenerate_run + 1 : 0;

      // Pivot: entering takes value resting + direction * t_max.
      const double entering_value =
          (state_[static_cast<std::size_t>(entering)] == VarState::kFreeAtZero
               ? 0.0
               : resting_value(entering)) +
          direction * t_max;
      for (int r = 0; r < m_; ++r) {
        xb_[static_cast<std::size_t>(r)] -=
            direction * t_max * w[static_cast<std::size_t>(r)];
      }
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      state_[static_cast<std::size_t>(leaving)] =
          leaving_at_upper ? VarState::kAtUpper : VarState::kAtLower;
      if (!std::isfinite(
              leaving_at_upper ? ub_[static_cast<std::size_t>(leaving)]
                               : lb_[static_cast<std::size_t>(leaving)])) {
        state_[static_cast<std::size_t>(leaving)] = VarState::kFreeAtZero;
      }
      basis_[static_cast<std::size_t>(leaving_row)] = entering;
      state_[static_cast<std::size_t>(entering)] = VarState::kBasic;
      xb_[static_cast<std::size_t>(leaving_row)] = entering_value;

      // Update B^-1: divide pivot row, eliminate elsewhere.
      const double pivot = w[static_cast<std::size_t>(leaving_row)];
      for (int c = 0; c < m_; ++c) {
        binv_[idx(leaving_row, c)] /= pivot;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == leaving_row) continue;
        const double f = w[static_cast<std::size_t>(r)];
        if (f == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          binv_[idx(r, c)] -= f * binv_[idx(leaving_row, c)];
        }
      }
    }
  }

  std::vector<double> extract_structural() const {
    std::vector<double> x(static_cast<std::size_t>(n_structural_), 0.0);
    for (int j = 0; j < n_structural_; ++j) {
      if (state_[static_cast<std::size_t>(j)] != VarState::kBasic) {
        x[static_cast<std::size_t>(j)] =
            state_[static_cast<std::size_t>(j)] == VarState::kFreeAtZero
                ? 0.0
                : (state_[static_cast<std::size_t>(j)] == VarState::kAtLower
                       ? lb_[static_cast<std::size_t>(j)]
                       : ub_[static_cast<std::size_t>(j)]);
      }
    }
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[static_cast<std::size_t>(r)];
      if (j < n_structural_) {
        x[static_cast<std::size_t>(j)] = xb_[static_cast<std::size_t>(r)];
      }
    }
    // Snap to bounds to clean up numerical fuzz.
    for (int j = 0; j < n_structural_; ++j) {
      auto& v = x[static_cast<std::size_t>(j)];
      v = std::clamp(v, lb_[static_cast<std::size_t>(j)],
                     ub_[static_cast<std::size_t>(j)]);
    }
    return x;
  }

  const Model& model_;
  SimplexOptions options_;
  int m_ = 0;
  int n_structural_ = 0;
  std::vector<std::vector<SparseEntry>> cols_;
  std::vector<double> lb_, ub_, cost_, b_, xb_, binv_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  std::map<std::size_t, double> objective_cost_of_;
  bool need_phase1_ = true;
};

}  // namespace

LpResult solve_lp(const Model& model, const SimplexOptions& options) {
  OBS_SPAN("milp.simplex");
  if (model.constraint_count() == 0) {
    // Pure bound optimization.
    LpResult r;
    r.status = LpStatus::kOptimal;
    r.x.resize(static_cast<std::size_t>(model.variable_count()));
    const double sign =
        model.objective_sense() == Objective::kMaximize ? -1.0 : 1.0;
    for (int j = 0; j < model.variable_count(); ++j) {
      const Variable& v = model.variable(j);
      const double c = sign * v.objective;
      double val = 0.0;
      if (c > 0) {
        val = v.lower;
      } else if (c < 0) {
        val = v.upper;
      } else {
        val = std::isfinite(v.lower) ? v.lower
                                     : (std::isfinite(v.upper) ? v.upper : 0.0);
      }
      if (!std::isfinite(val)) {
        r.status = LpStatus::kUnbounded;
        return r;
      }
      r.x[static_cast<std::size_t>(j)] = val;
    }
    r.objective = model.objective_value(r.x);
    return r;
  }
  Simplex solver(model, options);
  return solver.run();
}

}  // namespace pm::milp
