// Presolve: standard reductions applied before the simplex/B&B —
// iterated to a fixed point:
//
//   * integer bound rounding          (lb = ceil(lb), ub = floor(ub))
//   * fixed-variable substitution     (lb == ub folds into the rhs)
//   * singleton-row bound tightening  (a*x <= b becomes a bound; the row
//                                      disappears)
//   * empty-row feasibility checks    (0 <= rhs either trivial or
//                                      infeasible)
//
// The reductions preserve the optimal value exactly; restore() lifts a
// reduced-space solution back to the original variable order. solve_mip
// runs presolve by default (MipOptions::presolve).
#pragma once

#include <vector>

#include "milp/model.hpp"

namespace pm::milp {

struct PresolveResult {
  bool infeasible = false;
  Model reduced;
  /// reduced variable index -> original variable index.
  std::vector<int> original_index;
  /// Per original variable: the value presolve fixed it to (only
  /// meaningful where `is_fixed` is true).
  std::vector<double> fixed_value;
  std::vector<char> is_fixed;
  int rows_removed = 0;
  int variables_fixed = 0;

  /// Lifts a solution of `reduced` back to the original space.
  std::vector<double> restore(const std::vector<double>& reduced_x) const;
};

PresolveResult presolve(const Model& model);

}  // namespace pm::milp
