#include "milp/presolve.hpp"

#include <cmath>

#include "obs/profile.hpp"

namespace pm::milp {

namespace {

constexpr double kTol = 1e-9;

struct WorkingVar {
  double lower;
  double upper;
  double objective;
  VarType type;
  std::string name;
  bool fixed = false;
};

struct WorkingRow {
  std::vector<Term> terms;  // over original variable indices
  Sense sense;
  double rhs;
  std::string name;
  bool removed = false;
};

/// Rounds integer bounds inward; returns false if the domain empties.
bool tighten_integrality(WorkingVar& v) {
  if (v.type == VarType::kContinuous) return true;
  v.lower = std::ceil(v.lower - kTol);
  v.upper = std::floor(v.upper + kTol);
  return v.lower <= v.upper + kTol;
}

}  // namespace

std::vector<double> PresolveResult::restore(
    const std::vector<double>& reduced_x) const {
  std::vector<double> out(is_fixed.size(), 0.0);
  for (std::size_t i = 0; i < is_fixed.size(); ++i) {
    if (is_fixed[i]) out[i] = fixed_value[i];
  }
  for (std::size_t r = 0; r < original_index.size(); ++r) {
    out[static_cast<std::size_t>(
        original_index[r])] = reduced_x[r];
  }
  return out;
}

PresolveResult presolve(const Model& model) {
  OBS_SPAN("milp.presolve");
  PresolveResult result;
  const int n = model.variable_count();
  std::vector<WorkingVar> vars;
  vars.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    vars.push_back({v.lower, v.upper, v.objective, v.type, v.name, false});
  }
  std::vector<WorkingRow> rows;
  rows.reserve(static_cast<std::size_t>(model.constraint_count()));
  for (int i = 0; i < model.constraint_count(); ++i) {
    const Constraint& c = model.constraint(i);
    rows.push_back({c.terms, c.sense, c.rhs, c.name, false});
  }
  result.is_fixed.assign(static_cast<std::size_t>(n), 0);
  result.fixed_value.assign(static_cast<std::size_t>(n), 0.0);

  auto fix_var = [&](int j, double value) {
    vars[static_cast<std::size_t>(j)].fixed = true;
    vars[static_cast<std::size_t>(j)].lower = value;
    vars[static_cast<std::size_t>(j)].upper = value;
    result.is_fixed[static_cast<std::size_t>(j)] = 1;
    result.fixed_value[static_cast<std::size_t>(j)] = value;
    ++result.variables_fixed;
  };

  // Initial integrality rounding + detection of already-fixed variables.
  for (int j = 0; j < n; ++j) {
    auto& v = vars[static_cast<std::size_t>(j)];
    if (!tighten_integrality(v)) {
      result.infeasible = true;
      return result;
    }
  }

  bool changed = true;
  while (changed && !result.infeasible) {
    changed = false;

    // Fold newly fixed variables into rows.
    for (int j = 0; j < n; ++j) {
      auto& v = vars[static_cast<std::size_t>(j)];
      if (v.fixed || v.upper - v.lower > kTol) continue;
      const double value = v.lower;
      fix_var(j, value);
      changed = true;
      for (auto& row : rows) {
        if (row.removed) continue;
        for (auto it = row.terms.begin(); it != row.terms.end(); ++it) {
          if (it->var == j) {
            row.rhs -= it->coeff * value;
            row.terms.erase(it);
            break;
          }
        }
      }
    }

    for (auto& row : rows) {
      if (row.removed) continue;
      // Empty row: feasibility check, then drop.
      if (row.terms.empty()) {
        const bool ok = (row.sense == Sense::kLe && row.rhs >= -kTol) ||
                        (row.sense == Sense::kGe && row.rhs <= kTol) ||
                        (row.sense == Sense::kEq &&
                         std::abs(row.rhs) <= kTol);
        if (!ok) {
          result.infeasible = true;
          return result;
        }
        row.removed = true;
        ++result.rows_removed;
        changed = true;
        continue;
      }
      // Singleton row: becomes a bound.
      if (row.terms.size() == 1) {
        const Term t = row.terms.front();
        auto& v = vars[static_cast<std::size_t>(t.var)];
        const double bound = row.rhs / t.coeff;
        switch (row.sense) {
          case Sense::kLe:
            if (t.coeff > 0) v.upper = std::min(v.upper, bound);
            else v.lower = std::max(v.lower, bound);
            break;
          case Sense::kGe:
            if (t.coeff > 0) v.lower = std::max(v.lower, bound);
            else v.upper = std::min(v.upper, bound);
            break;
          case Sense::kEq:
            v.lower = std::max(v.lower, bound);
            v.upper = std::min(v.upper, bound);
            break;
        }
        if (!tighten_integrality(v) || v.lower > v.upper + kTol) {
          result.infeasible = true;
          return result;
        }
        row.removed = true;
        ++result.rows_removed;
        changed = true;
      }
    }
  }

  // Assemble the reduced model.
  std::vector<int> new_index(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    const auto& v = vars[static_cast<std::size_t>(j)];
    if (v.fixed) continue;
    new_index[static_cast<std::size_t>(j)] =
        result.reduced.add_variable(v.name, v.lower, v.upper, v.objective,
                                    v.type);
    result.original_index.push_back(j);
  }
  result.reduced.set_objective_sense(model.objective_sense());
  for (const auto& row : rows) {
    if (row.removed) continue;
    std::vector<Term> terms;
    terms.reserve(row.terms.size());
    for (const Term& t : row.terms) {
      terms.push_back({new_index[static_cast<std::size_t>(t.var)], t.coeff});
    }
    result.reduced.add_constraint(row.name, std::move(terms), row.sense,
                                  row.rhs);
  }
  return result;
}

}  // namespace pm::milp
