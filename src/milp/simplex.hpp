// Bounded-variable two-phase primal revised simplex.
//
// Solves the LP relaxation of a Model (integrality ignored):
//
//     min / max  c x
//     s.t.       A x {<=, >=, =} b,   l <= x <= u
//
// Implementation notes:
//  * Revised simplex with a dense explicit basis inverse, refactorized
//    periodically by Gauss-Jordan for numerical hygiene. Constraint
//    columns stay sparse, so pricing is cheap even for the FMSSM-sized
//    instances (thousands of columns).
//  * Variable bounds are handled implicitly (nonbasic variables rest at a
//    finite bound and may "bound-flip"), so binaries do not inflate the
//    row count.
//  * Phase 1 minimizes the sum of one artificial per row; leftover basic
//    artificials are pinned to [0, 0] for phase 2.
//  * Dantzig pricing with a Bland's-rule fallback after a run of
//    degenerate pivots, which guarantees termination.
#pragma once

#include <string>
#include <vector>

#include "milp/model.hpp"

namespace pm::milp {

struct SimplexOptions {
  int max_iterations = 50000;  ///< across both phases.
  double tol = 1e-7;           ///< feasibility/optimality tolerance.
  int refactor_every = 500;    ///< basis-inverse rebuild period.
};

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  /// Objective in the model's own sense; meaningful for kOptimal.
  double objective = 0.0;
  /// Values of the model's structural variables; meaningful for kOptimal.
  std::vector<double> x;
  int iterations = 0;
};

std::string to_string(LpStatus status);

/// Solves the LP relaxation of `model`.
LpResult solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace pm::milp
