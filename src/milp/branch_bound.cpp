#include "milp/branch_bound.hpp"

#include <algorithm>

#include "milp/presolve.hpp"
#include <chrono>
#include <cmath>
#include <limits>
#include <tuple>

#include "obs/profile.hpp"

namespace pm::milp {

std::string to_string(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal: return "optimal";
    case MipStatus::kFeasible: return "feasible (limit hit)";
    case MipStatus::kInfeasible: return "infeasible";
    case MipStatus::kNoSolutionFound: return "no solution found";
    case MipStatus::kUnbounded: return "unbounded";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

struct Node {
  /// Bound overrides relative to the root model: (var, lower, upper).
  std::vector<std::tuple<int, double, double>> bound_changes;
  double parent_bound;  ///< LP bound of the parent (for pruning order).
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MipOptions& options)
      : model_(model), options_(options),
        maximize_(model.objective_sense() == Objective::kMaximize) {}

  MipResult run() {
    const auto start = Clock::now();
    MipResult result;

    if (options_.warm_start && model_.is_feasible(*options_.warm_start)) {
      incumbent_ = *options_.warm_start;
      incumbent_value_ = model_.objective_value(incumbent_);
      have_incumbent_ = true;
    }

    // DFS over nodes; each node re-solves the LP with its bound changes.
    std::vector<Node> stack;
    stack.push_back({{}, maximize_ ? kInfinity : -kInfinity});
    double best_open_bound = stack.back().parent_bound;
    bool any_limit_hit = false;
    bool root_infeasible = false;

    while (!stack.empty()) {
      if (result.nodes_explored >= options_.node_limit ||
          elapsed_seconds(start) > options_.time_limit_seconds) {
        any_limit_hit = true;
        break;
      }
      Node node = std::move(stack.back());
      stack.pop_back();
      ++result.nodes_explored;

      // Prune by the parent's bound before paying for the LP.
      if (have_incumbent_ && !improves(node.parent_bound)) continue;

      Model local = apply_bounds(node);
      const LpResult lp = solve_lp(local, options_.lp);
      if (lp.status == LpStatus::kInfeasible) {
        if (result.nodes_explored == 1) root_infeasible = true;
        continue;
      }
      if (lp.status == LpStatus::kUnbounded) {
        // An unbounded relaxation at the root makes the MIP unbounded or
        // infeasible; report unbounded and stop.
        result.status = MipStatus::kUnbounded;
        result.seconds = elapsed_seconds(start);
        return result;
      }
      if (lp.status == LpStatus::kIterationLimit) {
        any_limit_hit = true;
        continue;  // cannot trust this subtree's bound; drop it (honest:
                   // status will say "feasible", not "optimal")
      }
      if (result.nodes_explored == 1) best_open_bound = lp.objective;

      if (have_incumbent_ && !improves(lp.objective)) continue;

      const int frac = most_fractional(lp.x);
      if (frac < 0) {
        // Integral: new incumbent.
        offer_incumbent(round_integers(lp.x));
        continue;
      }

      // Rounding heuristic: may produce an incumbent cheaply.
      try_rounding(lp.x);

      const double val = lp.x[static_cast<std::size_t>(frac)];
      Node down{node.bound_changes, lp.objective};
      down.bound_changes.emplace_back(
          frac, model_.variable(frac).lower, std::floor(val));
      Node up{node.bound_changes, lp.objective};
      up.bound_changes.emplace_back(frac, std::ceil(val),
                                    model_.variable(frac).upper);
      // Explore the child nearer the LP value first (pushed last).
      if (val - std::floor(val) < 0.5) {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      } else {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      }
    }

    result.seconds = elapsed_seconds(start);
    // Best bound: the strongest value the unexplored tree could attain.
    double open_bound = have_incumbent_ ? incumbent_value_
                                        : (maximize_ ? -kInfinity : kInfinity);
    for (const Node& n : stack) {
      open_bound = maximize_ ? std::max(open_bound, n.parent_bound)
                             : std::min(open_bound, n.parent_bound);
    }
    if (!any_limit_hit) {
      // Search ran to completion.
      if (have_incumbent_) {
        result.status = MipStatus::kOptimal;
        result.best_bound = incumbent_value_;
      } else {
        result.status = MipStatus::kInfeasible;
        (void)root_infeasible;
      }
    } else {
      result.status = have_incumbent_ ? MipStatus::kFeasible
                                      : MipStatus::kNoSolutionFound;
      result.best_bound = stack.empty() ? best_open_bound : open_bound;
    }
    if (have_incumbent_) {
      result.objective = incumbent_value_;
      result.x = incumbent_;
      if (result.status == MipStatus::kFeasible && gap_closed(open_bound)) {
        result.status = MipStatus::kOptimal;
        result.best_bound = incumbent_value_;
      }
    }
    return result;
  }

 private:
  static double elapsed_seconds(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }

  bool improves(double bound) const {
    if (!have_incumbent_) return true;
    const double margin = 1e-9 * (1.0 + std::abs(incumbent_value_));
    return maximize_ ? bound > incumbent_value_ + margin
                     : bound < incumbent_value_ - margin;
  }

  bool gap_closed(double bound) const {
    if (!have_incumbent_) return false;
    const double gap = std::abs(bound - incumbent_value_) /
                       (1.0 + std::abs(incumbent_value_));
    return gap <= options_.gap_tolerance;
  }

  Model apply_bounds(const Node& node) const {
    return with_bounds(model_, node.bound_changes);
  }

  static Model with_bounds(
      const Model& base,
      const std::vector<std::tuple<int, double, double>>& changes) {
    Model out;
    out.set_objective_sense(base.objective_sense());
    std::vector<double> lo(static_cast<std::size_t>(base.variable_count()));
    std::vector<double> hi(static_cast<std::size_t>(base.variable_count()));
    for (int j = 0; j < base.variable_count(); ++j) {
      lo[static_cast<std::size_t>(j)] = base.variable(j).lower;
      hi[static_cast<std::size_t>(j)] = base.variable(j).upper;
    }
    for (const auto& [var, l, u] : changes) {
      lo[static_cast<std::size_t>(var)] =
          std::max(lo[static_cast<std::size_t>(var)], l);
      hi[static_cast<std::size_t>(var)] =
          std::min(hi[static_cast<std::size_t>(var)], u);
    }
    for (int j = 0; j < base.variable_count(); ++j) {
      const Variable& v = base.variable(j);
      double l = lo[static_cast<std::size_t>(j)];
      double u = hi[static_cast<std::size_t>(j)];
      if (l > u) {
        // Empty domain: encode as an infeasible pair of bounds the LP
        // detects (l = u with a violated fixed value is messy; instead fix
        // to l and add an impossible constraint below).
        u = l;
        out.add_variable(v.name, l, u, v.objective, VarType::kContinuous);
        // mark to add infeasible row after vars
        continue;
      }
      out.add_variable(v.name, l, u, v.objective, VarType::kContinuous);
    }
    for (int i = 0; i < base.constraint_count(); ++i) {
      const Constraint& c = base.constraint(i);
      out.add_constraint(c.name, c.terms, c.sense, c.rhs);
    }
    // If any domain was empty, force infeasibility explicitly.
    for (const auto& [var, l, u] : changes) {
      (void)l;
      (void)u;
      if (lo[static_cast<std::size_t>(var)] >
          hi[static_cast<std::size_t>(var)]) {
        out.add_constraint("empty_domain", {{0, 0.0}}, Sense::kGe, 1.0);
        break;
      }
    }
    return out;
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_dist = options_.integrality_tolerance;
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(j).type == VarType::kContinuous) continue;
      const double v = x[static_cast<std::size_t>(j)];
      const double dist = std::abs(v - std::round(v));
      const double frac_score = std::min(v - std::floor(v),
                                         std::ceil(v) - v);
      if (dist > options_.integrality_tolerance && frac_score > best_dist) {
        best = j;
        best_dist = frac_score;
      }
    }
    return best;
  }

  std::vector<double> round_integers(std::vector<double> x) const {
    for (int j = 0; j < model_.variable_count(); ++j) {
      if (model_.variable(j).type != VarType::kContinuous) {
        x[static_cast<std::size_t>(j)] =
            std::round(x[static_cast<std::size_t>(j)]);
      }
    }
    return x;
  }

  void try_rounding(const std::vector<double>& x) {
    offer_incumbent(round_integers(x));
  }

  void offer_incumbent(std::vector<double> x) {
    if (!model_.is_feasible(x)) return;
    const double value = model_.objective_value(x);
    if (!have_incumbent_ ||
        (maximize_ ? value > incumbent_value_ : value < incumbent_value_)) {
      incumbent_ = std::move(x);
      incumbent_value_ = value;
      have_incumbent_ = true;
    }
  }

  const Model& model_;
  MipOptions options_;
  bool maximize_;
  std::vector<double> incumbent_;
  double incumbent_value_ = 0.0;
  bool have_incumbent_ = false;
};

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& options) {
  OBS_SPAN("milp.branch_bound");
  if (options.presolve) {
    PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      MipResult r;
      r.status = MipStatus::kInfeasible;
      return r;
    }
    MipOptions inner = options;
    inner.presolve = false;
    // Project the warm start into the reduced space; drop it when it
    // contradicts a presolve fixing.
    if (options.warm_start &&
        options.warm_start->size() == static_cast<std::size_t>(
                                          model.variable_count())) {
      bool consistent = true;
      for (std::size_t j = 0; j < pre.is_fixed.size(); ++j) {
        if (pre.is_fixed[j] &&
            std::abs((*options.warm_start)[j] - pre.fixed_value[j]) >
                1e-6) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        std::vector<double> reduced_ws;
        reduced_ws.reserve(pre.original_index.size());
        for (int orig : pre.original_index) {
          reduced_ws.push_back(
              (*options.warm_start)[static_cast<std::size_t>(orig)]);
        }
        inner.warm_start = std::move(reduced_ws);
      } else {
        inner.warm_start.reset();
      }
    }
    MipResult r = solve_mip(pre.reduced, inner);
    // Objective contribution of the variables presolve fixed.
    double fixed_obj = 0.0;
    for (std::size_t j = 0; j < pre.is_fixed.size(); ++j) {
      if (pre.is_fixed[j]) {
        fixed_obj +=
            model.variable(static_cast<int>(j)).objective *
            pre.fixed_value[j];
      }
    }
    if (r.has_solution()) {
      r.x = pre.restore(r.x);
      r.objective = model.objective_value(r.x);
    }
    if (r.status != MipStatus::kInfeasible &&
        r.status != MipStatus::kUnbounded) {
      r.best_bound += fixed_obj;
    }
    return r;
  }
  if (!model.has_integer_variables()) {
    // Pure LP: translate the result.
    const LpResult lp = solve_lp(model, options.lp);
    MipResult r;
    r.nodes_explored = 1;
    switch (lp.status) {
      case LpStatus::kOptimal:
        r.status = MipStatus::kOptimal;
        r.objective = lp.objective;
        r.best_bound = lp.objective;
        r.x = lp.x;
        break;
      case LpStatus::kInfeasible:
        r.status = MipStatus::kInfeasible;
        break;
      case LpStatus::kUnbounded:
        r.status = MipStatus::kUnbounded;
        break;
      case LpStatus::kIterationLimit:
        r.status = MipStatus::kNoSolutionFound;
        break;
    }
    return r;
  }
  BranchAndBound solver(model, options);
  return solver.run();
}

}  // namespace pm::milp
