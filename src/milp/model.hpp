// Mixed-integer linear program model container.
//
// This is the repository's substitute for the GUROBI model API the paper
// uses (DESIGN.md, substitution 2): callers declare variables with bounds
// and type, add linear constraints, and hand the model to solve_lp() /
// solve_mip(). The container is solver-agnostic and validates its inputs
// eagerly so solver code can assume a well-formed problem.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace pm::milp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType { kContinuous, kBinary, kInteger };
enum class Sense { kLe, kGe, kEq };
enum class Objective { kMinimize, kMaximize };

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
};

/// One linear term: coefficient * variable.
struct Term {
  int var = 0;
  double coeff = 0.0;
};

struct Constraint {
  std::string name;
  std::vector<Term> terms;  ///< deduplicated, ascending var index.
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

class Model {
 public:
  /// Adds a variable; returns its index. Binary variables get bounds
  /// clamped into [0, 1]. Throws std::invalid_argument if lower > upper.
  int add_variable(const std::string& name, double lower, double upper,
                   double objective_coeff, VarType type);

  int add_continuous(const std::string& name, double lower, double upper,
                     double objective_coeff) {
    return add_variable(name, lower, upper, objective_coeff,
                        VarType::kContinuous);
  }
  int add_binary(const std::string& name, double objective_coeff) {
    return add_variable(name, 0.0, 1.0, objective_coeff, VarType::kBinary);
  }

  /// Adds `terms * x  sense  rhs`. Terms with duplicate variable indices
  /// are merged; zero coefficients dropped. Returns the constraint index.
  int add_constraint(const std::string& name, std::vector<Term> terms,
                     Sense sense, double rhs);

  void set_objective_sense(Objective sense) { objective_sense_ = sense; }
  Objective objective_sense() const { return objective_sense_; }

  int variable_count() const { return static_cast<int>(variables_.size()); }
  int constraint_count() const {
    return static_cast<int>(constraints_.size());
  }
  const Variable& variable(int i) const { return variables_.at(static_cast<std::size_t>(i)); }
  const Constraint& constraint(int i) const {
    return constraints_.at(static_cast<std::size_t>(i));
  }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  bool has_integer_variables() const;

  /// Objective value of assignment `x` (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// True if `x` satisfies bounds, integrality and all constraints within
  /// `tol`. Used for warm-start validation and in tests.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  Objective objective_sense_ = Objective::kMinimize;
};

}  // namespace pm::milp
