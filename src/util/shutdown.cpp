#include "util/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace pm::util {

namespace {

std::atomic<bool> g_shutdown{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free flag");

void pm_shutdown_handler(int signum) {
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    // Second signal: give up on graceful flushing and let the default
    // disposition terminate the process.
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
}

}  // namespace

void install_shutdown_handler() {
  std::signal(SIGINT, pm_shutdown_handler);
  std::signal(SIGTERM, pm_shutdown_handler);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() {
  g_shutdown.store(true, std::memory_order_relaxed);
}

void reset_shutdown_flag_for_tests() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

}  // namespace pm::util
