// Fixed-size worker pool with a deterministic parallel_map primitive.
//
// Determinism contract (DESIGN.md "Parallel execution & caching"): the
// sweep drivers treat every scenario — topology x failure-count x seed x
// algorithm — as an independent task whose inputs are fully determined
// by its submission index. parallel_map(items, fn) calls fn(index, item)
// exactly once per item, collects results in submission order and
// rethrows the lowest-index exception, so a task function that reads
// only its arguments (seeding any RNG from the index, never from shared
// state) produces output byte-identical to the serial loop it replaced,
// regardless of thread count or scheduling.
//
// Sizing: a pool of `jobs` runs at most `jobs` tasks concurrently. It
// owns jobs-1 worker threads and the calling thread works alongside
// them, so --jobs=1 owns no threads at all and runs everything inline —
// the serial path stays the serial path, not a one-thread simulation of
// it. parallel_map called from inside a pool task runs its batch inline
// on that worker, so nested submission cannot deadlock on pool slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace pm::util {

class TaskPool {
 public:
  /// `jobs` < 1 is clamped to 1; jobs == 1 spawns no threads.
  explicit TaskPool(int jobs = 1);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Maximum concurrent tasks (worker threads + the calling thread).
  int jobs() const { return static_cast<int>(workers_.size()) + 1; }

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to report 0).
  static int hardware_jobs();

  /// Runs fn(i) for every i in [0, n) across the pool and returns when
  /// all have finished. If any task threw, rethrows the exception of the
  /// lowest failing index after the whole batch has run (every index is
  /// attempted, matching the parallel schedule where later tasks may
  /// already be in flight when an early one fails).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Applies fn(index, item) to every item; results in submission order.
  /// The result type must be move-constructible.
  template <typename T, typename Fn>
  auto parallel_map(const std::vector<T>& items, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}, items[0]))> {
    using R = decltype(fn(std::size_t{0}, items[0]));
    std::vector<std::optional<R>> slots(items.size());
    run_indexed(items.size(),
                [&](std::size_t i) { slots[i].emplace(fn(i, items[i])); });
    std::vector<R> out;
    out.reserve(items.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  void worker_loop();
  /// Claims and runs indices of the current batch until none are left.
  /// Called with `lock` held; returns with it held.
  void drain_batch(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  /// Serializes concurrent run_indexed callers (one batch at a time).
  std::mutex batch_gate_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  bool stop_ = false;
  // Current batch, guarded by mutex_.
  std::size_t batch_n_ = 0;
  std::size_t batch_next_ = 0;
  std::size_t batch_live_ = 0;  ///< Claimed but not yet finished.
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::vector<std::exception_ptr>* batch_errors_ = nullptr;
};

}  // namespace pm::util
