// Aligned ASCII table printer — benches print each paper figure as one of
// these tables so the series can be read directly from the terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pm::util {

/// Collects rows of string cells and renders them with padded columns.
///
///   TextTable t({"case", "PM", "Optimal"});
///   t.add_row({"(13,20)", "315%", "317%"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Rows shorter than the header are right-padded with empty cells; longer
  /// rows extend the column set.
  void add_row(std::vector<std::string> row);

  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pm::util
