#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace pm::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool parse_int(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ 11+.
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace pm::util
