#include "util/task_pool.hpp"

#include <algorithm>

namespace pm::util {

namespace {

/// True while this thread is executing a batch task. A nested
/// run_indexed from such a thread runs inline: waiting for pool slots
/// from inside a pool task can deadlock when every worker does it.
thread_local bool tls_in_batch = false;

struct BatchScope {
  bool previous = tls_in_batch;
  BatchScope() { tls_in_batch = true; }
  ~BatchScope() { tls_in_batch = previous; }
};

}  // namespace

TaskPool::TaskPool(int jobs) {
  const int n = std::max(1, jobs);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int TaskPool::hardware_jobs() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void TaskPool::drain_batch(std::unique_lock<std::mutex>& lock) {
  while (batch_next_ < batch_n_) {
    const std::size_t i = batch_next_++;
    ++batch_live_;
    auto* errors = batch_errors_;
    const auto* fn = batch_fn_;
    lock.unlock();
    {
      BatchScope scope;
      try {
        (*fn)(i);
      } catch (...) {
        (*errors)[i] = std::current_exception();
      }
    }
    lock.lock();
    --batch_live_;
  }
  if (batch_live_ == 0) batch_done_.notify_all();
}

void TaskPool::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [&] {
      return stop_ || (batch_fn_ != nullptr && batch_next_ < batch_n_);
    });
    if (stop_) return;
    drain_batch(lock);
  }
}

void TaskPool::run_indexed(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  if (workers_.empty() || tls_in_batch || n == 1) {
    // Serial path: a 1-job pool, a nested submission, or a single task.
    // Every index is attempted, exactly like the pool path.
    BatchScope scope;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::lock_guard gate(batch_gate_);
    std::unique_lock lock(mutex_);
    batch_n_ = n;
    batch_next_ = 0;
    batch_live_ = 0;
    batch_fn_ = &fn;
    batch_errors_ = &errors;
    work_ready_.notify_all();
    drain_batch(lock);  // the calling thread works alongside the pool
    batch_done_.wait(lock,
                     [&] { return batch_next_ >= batch_n_ && batch_live_ == 0; });
    batch_fn_ = nullptr;
    batch_errors_ = nullptr;
    batch_n_ = 0;
  }
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace pm::util
