#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pm::util {

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(JsonValue::Type want, JsonValue::Type got) {
  throw std::logic_error(std::string("expected ") + type_name(want) +
                         ", got " + type_name(got));
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  // JSON has no NaN/Inf literal; %g would emit "nan"/"inf" and corrupt
  // the document. The wire protocol (src/svc) depends on every writer
  // output being parseable, so non-finite numbers deterministically
  // degrade to null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  if (v == std::floor(v) &&
      std::abs(v) < 9.0e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    if (consume_word("null")) return JsonValue();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogates unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error(Type::kBool, type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error(Type::kNumber, type_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error(Type::kString, type_);
  return string_;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error(Type::kArray, type_);
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error(Type::kArray, type_);
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error(Type::kArray, type_);
  if (i >= array_.size()) throw std::out_of_range("json array index");
  return array_[i];
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error(Type::kObject, type_);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, JsonValue());
  return object_.back().second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error(Type::kObject, type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw std::out_of_range("missing json key '" + key + "'");
}

bool JsonValue::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error(Type::kObject, type_);
  return object_;
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (static_cast<std::size_t>(depth) + 1),
                                      ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: write_number(out, number_); return;
    case Type::kString: write_escaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        array_[i].write(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        out += pad;
        write_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.write(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

std::string JsonValue::to_string(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull: return true;
    case JsonValue::Type::kBool: return a.bool_ == b.bool_;
    case JsonValue::Type::kNumber: return a.number_ == b.number_;
    case JsonValue::Type::kString: return a.string_ == b.string_;
    case JsonValue::Type::kArray: return a.array_ == b.array_;
    case JsonValue::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace pm::util
