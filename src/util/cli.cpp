#include "util/cli.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/task_pool.hpp"

namespace pm::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!starts_with(tok, "--")) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos) {
      flags_[tok.substr(0, eq)].push_back(tok.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[tok].push_back(argv[++i]);
    } else {
      flags_[tok].push_back("true");
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.contains(name);
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second.back();
}

std::vector<std::string> CliArgs::get_strings(
    const std::string& name) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::vector<std::string>{} : it->second;
}

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  long long v = 0;
  return parse_int(it->second.back(), v) ? v : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double v = 0;
  return parse_double(it->second.back(), v) ? v : fallback;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string v = to_lower(it->second.back());
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

int parse_jobs_flag(CliArgs& args) {
  const std::string value = args.get_string("jobs", "1");
  if (to_lower(value) == "auto") return TaskPool::hardware_jobs();
  long long jobs = 1;
  if (!parse_int(value, jobs)) jobs = 1;
  return static_cast<int>(std::clamp<long long>(jobs, 1, 1024));
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace pm::util
