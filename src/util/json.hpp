// Minimal JSON value tree with a writer and a recursive-descent parser —
// used to persist recovery plans and reports (core/serialize.hpp) so
// plans can be audited, diffed and replayed across runs.
//
// Scope: the JSON subset needed here — null/bool/number/string/array/
// object, UTF-8 pass-through, \uXXXX escapes for BMP code points. Object
// member order is preserved (insertion order), which keeps serialized
// plans diffable. Non-finite numbers (NaN/Inf) have no JSON spelling and
// are written as null, so writer output is always parseable — a wire
// requirement for the JSONL service protocol (src/svc).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pm::util {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error("JSON error at offset " +
                           std::to_string(offset) + ": " + message),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}
  JsonValue(std::int64_t n) : JsonValue(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Typed accessors; throw std::logic_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  // Array interface.
  void push_back(JsonValue v);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;

  // Object interface. operator[] inserts null on first access (write
  // path); at() throws on a missing key (read path).
  JsonValue& operator[](const std::string& key);
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string to_string(int indent = 0) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static JsonValue parse(std::string_view text);

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace pm::util
