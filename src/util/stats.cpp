#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pm::util {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

BoxStats box_stats(std::span<const double> sample) {
  BoxStats s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.mean = mean(sample);
  return s;
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  return sum(sample) / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double acc = 0.0;
  for (double v : sample) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(sample.size() - 1));
}

double sum(std::span<const double> sample) {
  return std::accumulate(sample.begin(), sample.end(), 0.0);
}

std::size_t bucket_index(std::span<const double> upper_bounds, double v) {
  // NaN belongs in the +Inf overflow bucket; lower_bound would place it
  // in bucket 0 (every `bound < NaN` comparison is false).
  if (std::isnan(v)) return upper_bounds.size();
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), v);
  return static_cast<std::size_t>(it - upper_bounds.begin());
}

std::vector<std::uint64_t> histogram_counts(
    std::span<const double> sample, std::span<const double> upper_bounds) {
  std::vector<std::uint64_t> counts(upper_bounds.size() + 1, 0);
  for (double v : sample) ++counts[bucket_index(upper_bounds, v)];
  return counts;
}

}  // namespace pm::util
