// Cooperative shutdown flag for long-running binaries (the recovery
// service and the sweep benches). install_shutdown_handler() routes
// SIGINT/SIGTERM to a process-wide atomic flag; loops poll
// shutdown_requested() at convenient boundaries (between sweep cells,
// between accepted connections) and flush whatever partial output they
// hold instead of dying mid-write.
//
// The handler only sets the flag — it is async-signal-safe and never
// allocates, logs or exits. A second signal while the flag is already
// set restores the default disposition, so a hung flush can still be
// interrupted the usual way.
#pragma once

namespace pm::util {

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
/// Idempotent; call once from main before entering the long loop.
void install_shutdown_handler();

/// True once a shutdown signal was received (or request_shutdown ran).
bool shutdown_requested();

/// Programmatic trigger — lets in-process harnesses and tests drive the
/// same exit path a signal would.
void request_shutdown();

/// Clears the flag (tests only; real binaries never un-request).
void reset_shutdown_flag_for_tests();

}  // namespace pm::util
