#include "util/table.hpp"

#include <algorithm>

namespace pm::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      out << "| " << cell << std::string(width[c] - cell.size(), ' ') << ' ';
    }
    out << "|\n";
  };

  auto print_sep = [&] {
    for (std::size_t c = 0; c < cols; ++c)
      out << '+' << std::string(width[c] + 2, '-');
    out << "+\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& r : rows_) print_row(r);
  print_sep();
}

}  // namespace pm::util
