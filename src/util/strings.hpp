// Small string helpers shared by the GML parser, CSV writer and CLI.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pm::util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

std::string to_lower(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses an integer/double; returns false on malformed input (no throw).
bool parse_int(std::string_view s, long long& out);
bool parse_double(std::string_view s, double& out);

/// printf-style formatting into std::string.
std::string format_double(double v, int precision);

}  // namespace pm::util
