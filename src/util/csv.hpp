// Minimal CSV writer used by benches to dump figure series next to the
// human-readable tables, so results can be re-plotted outside this repo.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace pm::util {

/// Streams rows as RFC-4180-ish CSV (fields containing comma, quote or
/// newline are quoted; quotes are doubled). The writer does not own the
/// stream; keep it alive for the writer's lifetime.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields);

  /// Convenience for mixed string/number rows built by the caller.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace pm::util
