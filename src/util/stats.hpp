// Descriptive statistics used by the evaluation harness.
//
// The paper's Figs. 4(a), 5(a) and 6(a) are box plots of per-flow path
// programmability; BoxStats carries exactly the five numbers such a plot
// shows (min, Q1, median, Q3, max) plus mean/count so the benches can print
// the same series in text form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pm::util {

/// Five-number summary (plus mean) of a sample, as drawn by a box plot.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;

  friend bool operator==(const BoxStats&, const BoxStats&) = default;
};

/// Computes the five-number summary of `sample`. Quartiles use linear
/// interpolation between order statistics (type-7, the numpy default).
/// An empty sample yields an all-zero summary with count == 0.
BoxStats box_stats(std::span<const double> sample);

/// Linear-interpolated quantile `q` in [0, 1] of `sorted`, which must be
/// sorted ascending and non-empty.
double quantile_sorted(std::span<const double> sorted, double q);

double mean(std::span<const double> sample);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(std::span<const double> sample);

double sum(std::span<const double> sample);

/// Index of the fixed-bucket histogram bucket holding `v`: the first i
/// with v <= upper_bounds[i] (bounds ascending), or upper_bounds.size()
/// for the implicit +Inf overflow bucket. NaN lands in the overflow
/// bucket. The observability histograms (obs/metrics) and any offline
/// bucketing share this rule so exports can never disagree.
std::size_t bucket_index(std::span<const double> upper_bounds, double v);

/// Per-bucket counts of `sample` against `upper_bounds`; the result has
/// upper_bounds.size() + 1 entries, the last being the +Inf bucket.
std::vector<std::uint64_t> histogram_counts(
    std::span<const double> sample, std::span<const double> upper_bounds);

/// Convenience: converts any numeric container to double for the stats API.
template <typename Container>
std::vector<double> to_doubles(const Container& c) {
  std::vector<double> out;
  out.reserve(std::size(c));
  for (const auto& v : c) out.push_back(static_cast<double>(v));
  return out;
}

}  // namespace pm::util
