// Tiny --flag=value / --flag value command-line parser for examples and
// benches. Deliberately minimal: flags are looked up by name with a typed
// default; unknown flags are reported so typos do not silently change runs.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pm::util {

class CliArgs {
 public:
  /// Parses argv. Accepts "--name=value", "--name value" and bare "--name"
  /// (boolean true). Non-flag tokens are collected as positional arguments.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Every value a repeatable flag was given, in command-line order
  /// (e.g. --kill-at=900:0 --kill-at=950:1). Empty when absent. The
  /// single-value getters above return the LAST occurrence.
  std::vector<std::string> get_strings(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line that were never queried via get_*.
  /// Call at the end of flag handling to warn about typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::vector<std::string>> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

/// The shared --jobs=N flag: scenario-level parallelism for the sweep
/// drivers (util::TaskPool size). Accepts "auto" (hardware concurrency)
/// or an integer; anything below 1 — including unparsable values —
/// clamps to 1, the bit-identical serial default.
int parse_jobs_flag(CliArgs& args);

}  // namespace pm::util
