// Controller-failure scenarios and the derived view the recovery
// algorithms work on (the quantities of Sec. IV-A):
//   offline switches S, active controllers C, offline flows F,
//   residual capacities A_j^rest, flow counts gamma_i, delays D_ij and the
//   ideal-case delay budget G of Eq. (6).
#pragma once

#include <string>
#include <vector>

#include "sdwan/network.hpp"

namespace pm::sdwan {

struct FailureScenario {
  /// Failed controller ids, ascending. May be empty (no failure).
  std::vector<ControllerId> failed;

  /// Human-readable label using the controllers' node names, e.g.
  /// "(13, 20)" for the paper's two-failure case notation.
  std::string label(const Network& net) const;
};

/// All C(controller_count, k) scenarios with exactly `k` failed
/// controllers, in lexicographic order — the 6 / 15 / 20 cases of
/// Figs. 4, 5, 6.
std::vector<FailureScenario> enumerate_failures(const Network& net, int k);

/// Immutable derived view of the network under one failure scenario.
/// Keeps a reference to the Network; the Network must outlive it.
class FailureState {
 public:
  FailureState(const Network& net, FailureScenario scenario);

  const Network& network() const { return *net_; }
  const FailureScenario& scenario() const { return scenario_; }

  /// Active controllers (the set C, size M), ascending id.
  const std::vector<ControllerId>& active_controllers() const {
    return active_;
  }
  /// Offline switches (the set S, size N), ascending id.
  const std::vector<SwitchId>& offline_switches() const { return offline_; }
  /// Offline flows (the set F): flows traversing >= 1 offline switch,
  /// ascending id.
  const std::vector<FlowId>& offline_flows() const { return offline_flows_; }

  /// The subset of offline flows with at least one recovery opportunity
  /// (a beta = 1 offline switch on the path). A flow whose only offline
  /// switch is its own destination has no forwarding choice left to
  /// recover, so no algorithm — including the paper's Optimal — can make
  /// it programmable again; the FMSSM instance (the set of L flows) and
  /// the recovery-percentage metrics are defined over this set.
  const std::vector<FlowId>& recoverable_flows() const {
    return recoverable_flows_;
  }

  bool is_offline_switch(SwitchId i) const;
  bool is_active_controller(ControllerId j) const;

  /// A_j^rest — controller j's capacity left after its normal load.
  /// Clamped at 0. Only meaningful for active controllers.
  double rest_capacity(ControllerId j) const;

  double total_rest_capacity() const;

  /// gamma_i — number of flows traversing offline switch `i` (its
  /// switch-level control cost, as in RetroFlow's model).
  int gamma(SwitchId i) const { return net_->flow_count_at(i); }

  /// A recovery opportunity of an offline flow: an offline switch on its
  /// path where beta = 1, and the programmability p gained by running the
  /// flow in SDN mode there.
  struct Opportunity {
    SwitchId sw = 0;
    std::int64_t p = 0;
  };
  /// Opportunities of offline flow `l`, in path order. Empty for flows
  /// that cannot regain any programmability (all their offline switches
  /// have diversity < 2).
  const std::vector<Opportunity>& opportunities(FlowId l) const;

  /// Active controllers sorted by ascending D_ij from switch `i` (the
  /// paper's C(i) ordering; ties broken by controller id). Precomputed for
  /// every switch at construction — the planners walk these orderings in
  /// their inner loops, so the per-call sort they used to pay is gone.
  const std::vector<ControllerId>& controllers_by_delay(SwitchId i) const;

  /// The nearest active controller to switch `i`.
  ControllerId nearest_active_controller(SwitchId i) const;

  /// G of Eq. (6): total control propagation delay if every offline switch
  /// were mapped to its nearest active controller, weighted by gamma_i.
  double ideal_total_delay() const { return ideal_total_delay_; }

  /// TOTAL_ITERATIONS of Algorithm 1: the maximum number of offline
  /// switches on any offline flow's original path.
  int max_offline_switches_on_path() const {
    return max_offline_on_path_;
  }

 private:
  const Network* net_;
  FailureScenario scenario_;
  std::vector<ControllerId> active_;
  std::vector<SwitchId> offline_;
  std::vector<FlowId> offline_flows_;
  std::vector<FlowId> recoverable_flows_;
  std::vector<char> offline_switch_mask_;
  std::vector<char> active_mask_;
  std::vector<double> rest_capacity_;  // indexed by ControllerId
  /// Indexed by FlowId; empty vectors for flows that are not offline.
  std::vector<std::vector<Opportunity>> opportunities_;
  /// by_delay_[i] = active controllers in ascending-D_ij order from
  /// switch i (ties by id). One sort per switch at construction.
  std::vector<std::vector<ControllerId>> by_delay_;
  double ideal_total_delay_ = 0.0;
  int max_offline_on_path_ = 0;
};

}  // namespace pm::sdwan
