// Traffic model: per-flow rates and link utilization.
//
// Path programmability exists to serve traffic engineering — the paper's
// motivation (Sec. I) is that programmable flows can be rerouted under
// traffic variation, as in SWAN [1] and B4 [2]. This module provides the
// substrate the rerouting engine (core/reroute.hpp) optimizes over:
// synthetic traffic matrices, surge injection, and link-load accounting.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sdwan/network.hpp"

namespace pm::sdwan {

/// Per-flow offered rate in Mbps, indexed by FlowId.
struct TrafficMatrix {
  std::vector<double> rate;

  double total() const;
  double of(FlowId l) const { return rate.at(static_cast<std::size_t>(l)); }
};

/// Every flow offers the same rate.
TrafficMatrix uniform_traffic(const Network& net, double per_flow_mbps);

/// Gravity model: flow (s, d) rate proportional to weight(s) * weight(d),
/// where a node's weight is its degree (a standard proxy for PoP size),
/// scaled so the matrix totals `total_mbps`. Deterministic.
TrafficMatrix gravity_traffic(const Network& net, double total_mbps);

/// Multiplies the rate of every flow with the given source node by
/// `factor` (a regional traffic surge).
void apply_source_surge(TrafficMatrix& tm, const Network& net,
                        SwitchId source, double factor);

/// Multiplies `fraction` of flows (every k-th by id) by `factor` — a
/// dispersed surge. Deterministic.
void apply_dispersed_surge(TrafficMatrix& tm, double fraction,
                           double factor);

/// An undirected link identified by its ordered endpoints (u < v).
using LinkId = std::pair<SwitchId, SwitchId>;

LinkId make_link(SwitchId a, SwitchId b);

/// Link loads for a routing: every flow follows `paths[l]` when present,
/// its default shortest path otherwise.
struct LinkLoads {
  std::map<LinkId, double> load_mbps;
  /// max over links of load / capacity.
  double max_utilization = 0.0;
  LinkId busiest_link{-1, -1};
  /// Number of links with load above capacity.
  int congested_links = 0;
};

LinkLoads compute_link_loads(
    const Network& net, const TrafficMatrix& tm, double link_capacity_mbps,
    const std::map<FlowId, std::vector<SwitchId>>& path_overrides = {});

}  // namespace pm::sdwan
