#include "sdwan/dataplane.hpp"

#include <stdexcept>

namespace pm::sdwan {

Dataplane::Dataplane(const topo::Topology& topo, RoutingMode initial_mode) {
  auto legacy = compute_legacy_tables(topo.graph());
  switches_.reserve(legacy.size());
  for (std::size_t s = 0; s < legacy.size(); ++s) {
    switches_.emplace_back(static_cast<SwitchId>(s), initial_mode,
                           std::move(legacy[s]));
  }
}

HybridSwitch& Dataplane::at(SwitchId id) {
  if (id < 0 || id >= switch_count()) throw std::out_of_range("switch id");
  return switches_[static_cast<std::size_t>(id)];
}

const HybridSwitch& Dataplane::at(SwitchId id) const {
  if (id < 0 || id >= switch_count()) throw std::out_of_range("switch id");
  return switches_[static_cast<std::size_t>(id)];
}

TraceResult Dataplane::trace(SwitchId ingress, const Packet& packet) const {
  TraceResult result;
  std::vector<char> visited(switches_.size(), 0);
  SwitchId current = ingress;
  const int ttl = 4 * switch_count();
  for (int step = 0; step <= ttl; ++step) {
    result.hops.push_back(current);
    if (current == packet.dst) {
      result.delivered = true;
      return result;
    }
    if (visited[static_cast<std::size_t>(current)]) {
      result.failure_reason =
          "forwarding loop at " + std::to_string(current);
      return result;
    }
    visited[static_cast<std::size_t>(current)] = 1;
    const LookupResult hop = at(current).lookup(packet);
    if (!hop.next_hop) {
      result.failure_reason = "dropped at " + std::to_string(current);
      return result;
    }
    current = *hop.next_hop;
  }
  result.failure_reason = "ttl exceeded";
  return result;
}

}  // namespace pm::sdwan
