#include "sdwan/failure.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pm::sdwan {

std::string FailureScenario::label(const Network& net) const {
  std::string out = "(";
  for (std::size_t k = 0; k < failed.size(); ++k) {
    if (k > 0) out += ", ";
    out += std::to_string(net.controller(failed[k]).location);
  }
  out += ")";
  return out;
}

std::vector<FailureScenario> enumerate_failures(const Network& net, int k) {
  const int m = net.controller_count();
  if (k < 0 || k > m) {
    throw std::invalid_argument("cannot fail " + std::to_string(k) + " of " +
                                std::to_string(m) + " controllers");
  }
  std::vector<FailureScenario> out;
  std::vector<ControllerId> combo(static_cast<std::size_t>(k));
  // Iterative combination enumeration in lexicographic order.
  for (int i = 0; i < k; ++i) combo[static_cast<std::size_t>(i)] = i;
  if (k == 0) {
    out.push_back({});
    return out;
  }
  while (true) {
    out.push_back({combo});
    int pos = k - 1;
    while (pos >= 0 &&
           combo[static_cast<std::size_t>(pos)] == m - k + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++combo[static_cast<std::size_t>(pos)];
    for (int i = pos + 1; i < k; ++i) {
      combo[static_cast<std::size_t>(i)] =
          combo[static_cast<std::size_t>(i - 1)] + 1;
    }
  }
  return out;
}

FailureState::FailureState(const Network& net, FailureScenario scenario)
    : net_(&net), scenario_(std::move(scenario)) {
  const int m = net.controller_count();
  active_mask_.assign(static_cast<std::size_t>(m), 1);
  for (ControllerId j : scenario_.failed) {
    if (j < 0 || j >= m) throw std::invalid_argument("bad controller id");
    if (!active_mask_[static_cast<std::size_t>(j)]) {
      throw std::invalid_argument("duplicate failed controller");
    }
    active_mask_[static_cast<std::size_t>(j)] = 0;
  }
  std::sort(scenario_.failed.begin(), scenario_.failed.end());

  offline_switch_mask_.assign(static_cast<std::size_t>(net.switch_count()),
                              0);
  for (ControllerId j = 0; j < m; ++j) {
    if (active_mask_[static_cast<std::size_t>(j)]) {
      active_.push_back(j);
    } else {
      for (SwitchId s : net.controller(j).domain) {
        offline_switch_mask_[static_cast<std::size_t>(s)] = 1;
        offline_.push_back(s);
      }
    }
  }
  std::sort(offline_.begin(), offline_.end());
  if (active_.empty() && !scenario_.failed.empty()) {
    throw std::invalid_argument(
        "all controllers failed: nothing can recover the network");
  }

  // Residual capacities.
  rest_capacity_.assign(static_cast<std::size_t>(m), 0.0);
  for (ControllerId j : active_) {
    rest_capacity_[static_cast<std::size_t>(j)] =
        std::max(0.0, net.controller(j).capacity - net.normal_load(j));
  }

  // Offline flows and their recovery opportunities.
  opportunities_.resize(static_cast<std::size_t>(net.flow_count()));
  for (const Flow& f : net.flows()) {
    bool offline = false;
    int offline_on_path = 0;
    for (SwitchId s : f.path) {
      if (offline_switch_mask_[static_cast<std::size_t>(s)]) {
        offline = true;
        ++offline_on_path;
      }
    }
    if (!offline) continue;
    offline_flows_.push_back(f.id);
    max_offline_on_path_ = std::max(max_offline_on_path_, offline_on_path);
    auto& opps = opportunities_[static_cast<std::size_t>(f.id)];
    for (std::size_t k = 0; k < f.path.size(); ++k) {
      const SwitchId s = f.path[k];
      if (!offline_switch_mask_[static_cast<std::size_t>(s)]) continue;
      const std::int64_t p = net.diversity(f.id, s);
      if (p >= 2) opps.push_back({s, p});
    }
    if (!opps.empty()) recoverable_flows_.push_back(f.id);
  }

  // Precomputed C(i) orderings. The planners walk controllers-by-delay in
  // their inner loops for every candidate switch, so sort once per switch
  // here instead of once per query there. stable_sort on the ascending
  // active_ list breaks delay ties by controller id, matching the
  // first-minimum scan of nearest_active_controller.
  by_delay_.assign(static_cast<std::size_t>(net.switch_count()), active_);
  for (SwitchId i = 0; i < net.switch_count(); ++i) {
    auto& order = by_delay_[static_cast<std::size_t>(i)];
    std::stable_sort(order.begin(), order.end(),
                     [&](ControllerId a, ControllerId b) {
                       return net.delay_ms(i, a) < net.delay_ms(i, b);
                     });
  }

  // G of Eq. (6).
  for (SwitchId i : offline_) {
    const ControllerId j = nearest_active_controller(i);
    ideal_total_delay_ +=
        static_cast<double>(gamma(i)) * net.delay_ms(i, j);
  }
}

bool FailureState::is_offline_switch(SwitchId i) const {
  net_->topology().graph().check_node(i);
  return offline_switch_mask_[static_cast<std::size_t>(i)] != 0;
}

bool FailureState::is_active_controller(ControllerId j) const {
  if (j < 0 || j >= net_->controller_count()) return false;
  return active_mask_[static_cast<std::size_t>(j)] != 0;
}

double FailureState::rest_capacity(ControllerId j) const {
  if (!is_active_controller(j)) {
    throw std::invalid_argument("controller " + std::to_string(j) +
                                " is not active");
  }
  return rest_capacity_[static_cast<std::size_t>(j)];
}

double FailureState::total_rest_capacity() const {
  double total = 0.0;
  for (ControllerId j : active_) {
    total += rest_capacity_[static_cast<std::size_t>(j)];
  }
  return total;
}

const std::vector<FailureState::Opportunity>& FailureState::opportunities(
    FlowId l) const {
  if (l < 0 || l >= net_->flow_count()) throw std::out_of_range("flow id");
  return opportunities_[static_cast<std::size_t>(l)];
}

const std::vector<ControllerId>& FailureState::controllers_by_delay(
    SwitchId i) const {
  net_->topology().graph().check_node(i);
  return by_delay_[static_cast<std::size_t>(i)];
}

ControllerId FailureState::nearest_active_controller(SwitchId i) const {
  if (active_.empty()) throw std::logic_error("no active controllers");
  return controllers_by_delay(i).front();
}

}  // namespace pm::sdwan
