// Legacy (OSPF-style) routing substrate: per-switch destination-based
// next-hop tables computed from link-state shortest paths. These are the
// low-priority tables the hybrid SDN/legacy mode of Fig. 2(c) falls back
// to when the OpenFlow table misses.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sdwan/types.hpp"

namespace pm::sdwan {

/// Destination-based forwarding table of one switch: next_hop(dst).
class LegacyRoutingTable {
 public:
  LegacyRoutingTable() = default;
  LegacyRoutingTable(SwitchId self, std::vector<SwitchId> next_hop)
      : self_(self), next_hop_(std::move(next_hop)) {}

  SwitchId self() const { return self_; }

  /// Next hop toward `dst`; -1 when dst == self or unreachable.
  SwitchId next_hop(SwitchId dst) const;

  /// Replaces one route (used by tests and by manual reconfiguration).
  void set_route(SwitchId dst, SwitchId next_hop);

 private:
  SwitchId self_ = -1;
  std::vector<SwitchId> next_hop_;
};

/// Runs the link-state computation for every switch in the graph:
/// tables[s].next_hop(d) is the first hop of the deterministic shortest
/// path s -> d (the same tie-breaking as graph::shortest_path, so legacy
/// forwarding reproduces the flows' default paths exactly).
std::vector<LegacyRoutingTable> compute_legacy_tables(const graph::Graph& g);

}  // namespace pm::sdwan
