// The hybrid SDN/legacy switch of Sec. III-A (modeled on the Brocade
// MLX-8 PE): a priority-ordered OpenFlow flow table in front of a
// destination-based legacy routing table, with the packet pipeline of
// Fig. 2:
//   kSdn    — flow table only; a miss drops the packet (table-miss without
//             a fallback entry).
//   kLegacy — legacy routing table only.
//   kHybrid — flow table first; the default low-priority entry sends
//             unmatched packets to the legacy table.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sdwan/ospf.hpp"
#include "sdwan/types.hpp"

namespace pm::sdwan {

enum class RoutingMode { kSdn, kLegacy, kHybrid };

/// What an OpenFlow entry matches on. Wildcards are expressed with
/// kAnyField (-1).
inline constexpr SwitchId kAnyField = -1;

struct FlowMatch {
  SwitchId src = kAnyField;
  SwitchId dst = kAnyField;

  bool matches(SwitchId packet_src, SwitchId packet_dst) const {
    return (src == kAnyField || src == packet_src) &&
           (dst == kAnyField || dst == packet_dst);
  }
};

struct FlowEntry {
  std::int32_t priority = 0;  ///< higher wins.
  FlowMatch match;
  SwitchId next_hop = -1;
};

struct Packet {
  SwitchId src = -1;
  SwitchId dst = -1;
};

/// Result of a pipeline lookup, for observability in tests and demos.
struct LookupResult {
  /// Next hop, or nullopt when the packet is dropped.
  std::optional<SwitchId> next_hop;
  /// True if the decision came from the OpenFlow table (vs legacy).
  bool matched_flow_table = false;
};

class HybridSwitch {
 public:
  HybridSwitch(SwitchId id, RoutingMode mode, LegacyRoutingTable legacy)
      : id_(id), mode_(mode), legacy_(std::move(legacy)) {}

  SwitchId id() const { return id_; }
  RoutingMode mode() const { return mode_; }
  void set_mode(RoutingMode mode) { mode_ = mode; }

  /// Installs an entry; entries are kept sorted by descending priority and
  /// insertion order breaks ties (first-installed wins), as in OpenFlow.
  void install(FlowEntry entry);

  /// Removes all entries whose match equals `match` exactly.
  /// Returns the number removed.
  std::size_t remove(const FlowMatch& match);

  std::size_t flow_table_size() const { return flow_table_.size(); }

  const LegacyRoutingTable& legacy_table() const { return legacy_; }
  LegacyRoutingTable& legacy_table() { return legacy_; }

  /// Runs the Fig. 2 pipeline for `packet`.
  LookupResult lookup(const Packet& packet) const;

 private:
  SwitchId id_;
  RoutingMode mode_;
  std::vector<FlowEntry> flow_table_;  // sorted by descending priority
  LegacyRoutingTable legacy_;
};

}  // namespace pm::sdwan
