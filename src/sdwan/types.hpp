// Shared id types of the SD-WAN model. All three are dense indices:
// switches share ids with topology nodes; controllers and flows are indexed
// in their containers' order.
#pragma once

#include "graph/graph.hpp"

namespace pm::sdwan {

using SwitchId = graph::NodeId;
using ControllerId = int;
using FlowId = int;

}  // namespace pm::sdwan
