#include "sdwan/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/diversity_cache.hpp"
#include "graph/shortest_path.hpp"

namespace pm::sdwan {

Network::Network(topo::Topology topology,
                 std::map<SwitchId, std::vector<SwitchId>> domains,
                 NetworkConfig config)
    : topology_(std::move(topology)), config_(config) {
  const int n = topology_.node_count();
  if (n == 0) throw std::invalid_argument("empty topology");
  if (!graph::is_connected(topology_.graph())) {
    throw std::invalid_argument("topology must be connected");
  }
  if (domains.empty()) throw std::invalid_argument("no controller domains");

  // Controllers and the switch -> controller map.
  controller_of_switch_.assign(static_cast<std::size_t>(n), -1);
  for (const auto& [location, members] : domains) {
    topology_.graph().check_node(location);
    Controller c;
    c.name = "C" + std::to_string(location);
    c.location = location;
    c.capacity = config_.controller_capacity;
    c.domain = members;
    std::sort(c.domain.begin(), c.domain.end());
    const auto j = static_cast<ControllerId>(controllers_.size());
    bool controls_own_node = false;
    for (SwitchId s : c.domain) {
      topology_.graph().check_node(s);
      auto& owner = controller_of_switch_[static_cast<std::size_t>(s)];
      if (owner != -1) {
        throw std::invalid_argument("switch " + std::to_string(s) +
                                    " assigned to two domains");
      }
      owner = j;
      if (s == location) controls_own_node = true;
    }
    if (!controls_own_node) {
      throw std::invalid_argument("controller node " +
                                  std::to_string(location) +
                                  " must be inside its own domain");
    }
    controllers_.push_back(std::move(c));
  }
  for (int s = 0; s < n; ++s) {
    if (controller_of_switch_[static_cast<std::size_t>(s)] == -1) {
      throw std::invalid_argument("switch " + std::to_string(s) +
                                  " belongs to no domain");
    }
  }

  // All-pairs deterministic shortest-path flows (Sec. VI-A: a flow between
  // any two nodes), plus the switch -> controller delay matrix.
  flows_at_switch_.assign(static_cast<std::size_t>(n), {});
  delay_.assign(static_cast<std::size_t>(n),
                std::vector<double>(controllers_.size(), 0.0));
  std::vector<graph::DijkstraResult> sssp;
  sssp.reserve(static_cast<std::size_t>(n));
  for (int src = 0; src < n; ++src) {
    sssp.push_back(graph::dijkstra(topology_.graph(), src));
  }
  for (int i = 0; i < n; ++i) {
    for (ControllerId j = 0; j < controller_count(); ++j) {
      delay_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          sssp[static_cast<std::size_t>(i)]
              .dist[static_cast<std::size_t>(controllers_[static_cast<std::size_t>(j)].location)];
    }
  }

  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      Flow f;
      f.id = static_cast<FlowId>(flows_.size());
      f.src = src;
      f.dst = dst;
      f.path = graph::extract_path(sssp[static_cast<std::size_t>(src)], dst);
      for (SwitchId s : f.path) {
        flows_at_switch_[static_cast<std::size_t>(s)].push_back(f.id);
      }
      flows_.push_back(std::move(f));
    }
  }

  // Programmability quantities. Path diversity from a node to a
  // destination does not depend on the flow, so memoize per (node, dst);
  // the cache also shares one BFS distance vector across every query
  // against the same destination. Diversity at the destination itself is 0
  // (no forwarding choice remains).
  graph::DiversityCache diversity_cache(config_.path_count);
  auto diversity_of = [&](SwitchId i, SwitchId dst) -> std::int64_t {
    if (i == dst) return 0;
    return diversity_cache.diversity(topology_.graph(), i, dst);
  };

  diversity_.resize(flows_.size());
  beta_switches_.resize(flows_.size());
  max_programmability_.assign(flows_.size(), 0);
  for (const Flow& f : flows_) {
    auto& div = diversity_[static_cast<std::size_t>(f.id)];
    div.reserve(f.path.size());
    for (SwitchId s : f.path) {
      const std::int64_t d = diversity_of(s, f.dst);
      div.push_back(d);
      if (d >= 2) {
        beta_switches_[static_cast<std::size_t>(f.id)].push_back(s);
        max_programmability_[static_cast<std::size_t>(f.id)] += d;
      }
    }
  }
}

const Controller& Network::controller(ControllerId j) const {
  if (j < 0 || j >= controller_count()) {
    throw std::out_of_range("controller id out of range");
  }
  return controllers_[static_cast<std::size_t>(j)];
}

ControllerId Network::controller_of(SwitchId i) const {
  topology_.graph().check_node(i);
  return controller_of_switch_[static_cast<std::size_t>(i)];
}

const Flow& Network::flow(FlowId l) const {
  if (l < 0 || l >= flow_count()) throw std::out_of_range("flow id");
  return flows_[static_cast<std::size_t>(l)];
}

const std::vector<FlowId>& Network::flows_at(SwitchId i) const {
  topology_.graph().check_node(i);
  return flows_at_switch_[static_cast<std::size_t>(i)];
}

double Network::normal_load(ControllerId j) const {
  const Controller& c = controller(j);
  double load = 0.0;
  for (SwitchId s : c.domain) load += flow_count_at(s);
  return load;
}

double Network::delay_ms(SwitchId i, ControllerId j) const {
  topology_.graph().check_node(i);
  if (j < 0 || j >= controller_count()) {
    throw std::out_of_range("controller id out of range");
  }
  return delay_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
}

std::int64_t Network::diversity(FlowId l, SwitchId i) const {
  const Flow& f = flow(l);
  topology_.graph().check_node(i);
  for (std::size_t k = 0; k < f.path.size(); ++k) {
    if (f.path[k] == i) {
      return diversity_[static_cast<std::size_t>(l)][k];
    }
  }
  return 0;
}

const std::vector<SwitchId>& Network::programmable_switches(FlowId l) const {
  if (l < 0 || l >= flow_count()) throw std::out_of_range("flow id");
  return beta_switches_[static_cast<std::size_t>(l)];
}

std::int64_t Network::max_programmability(FlowId l) const {
  if (l < 0 || l >= flow_count()) throw std::out_of_range("flow id");
  return max_programmability_[static_cast<std::size_t>(l)];
}

}  // namespace pm::sdwan
