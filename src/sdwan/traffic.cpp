#include "sdwan/traffic.hpp"

#include <numeric>
#include <stdexcept>

namespace pm::sdwan {

double TrafficMatrix::total() const {
  return std::accumulate(rate.begin(), rate.end(), 0.0);
}

TrafficMatrix uniform_traffic(const Network& net, double per_flow_mbps) {
  TrafficMatrix tm;
  tm.rate.assign(static_cast<std::size_t>(net.flow_count()), per_flow_mbps);
  return tm;
}

TrafficMatrix gravity_traffic(const Network& net, double total_mbps) {
  const int n = net.switch_count();
  std::vector<double> weight(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    weight[static_cast<std::size_t>(s)] =
        static_cast<double>(net.topology().graph().degree(s));
  }
  TrafficMatrix tm;
  tm.rate.assign(static_cast<std::size_t>(net.flow_count()), 0.0);
  double mass = 0.0;
  for (const Flow& f : net.flows()) {
    const double w = weight[static_cast<std::size_t>(f.src)] *
                     weight[static_cast<std::size_t>(f.dst)];
    tm.rate[static_cast<std::size_t>(f.id)] = w;
    mass += w;
  }
  if (mass <= 0.0) throw std::logic_error("degenerate gravity weights");
  for (double& r : tm.rate) r *= total_mbps / mass;
  return tm;
}

void apply_source_surge(TrafficMatrix& tm, const Network& net,
                        SwitchId source, double factor) {
  for (const Flow& f : net.flows()) {
    if (f.src == source) {
      tm.rate.at(static_cast<std::size_t>(f.id)) *= factor;
    }
  }
}

void apply_dispersed_surge(TrafficMatrix& tm, double fraction,
                           double factor) {
  if (fraction <= 0.0) return;
  const auto stride =
      static_cast<std::size_t>(1.0 / std::min(fraction, 1.0));
  for (std::size_t l = 0; l < tm.rate.size(); l += stride) {
    tm.rate[l] *= factor;
  }
}

LinkId make_link(SwitchId a, SwitchId b) {
  return a < b ? LinkId{a, b} : LinkId{b, a};
}

LinkLoads compute_link_loads(
    const Network& net, const TrafficMatrix& tm, double link_capacity_mbps,
    const std::map<FlowId, std::vector<SwitchId>>& path_overrides) {
  if (link_capacity_mbps <= 0.0) {
    throw std::invalid_argument("link capacity must be positive");
  }
  LinkLoads out;
  for (const auto& e : net.topology().graph().edges()) {
    out.load_mbps[{e.u, e.v}] = 0.0;
  }
  for (const Flow& f : net.flows()) {
    const auto it = path_overrides.find(f.id);
    const std::vector<SwitchId>& path =
        it == path_overrides.end() ? f.path : it->second;
    const double r = tm.of(f.id);
    if (r == 0.0) continue;
    for (std::size_t i = 1; i < path.size(); ++i) {
      out.load_mbps.at(make_link(path[i - 1], path[i])) += r;
    }
  }
  for (const auto& [link, load] : out.load_mbps) {
    const double u = load / link_capacity_mbps;
    if (u > out.max_utilization) {
      out.max_utilization = u;
      out.busiest_link = link;
    }
    if (load > link_capacity_mbps) ++out.congested_links;
  }
  return out;
}

}  // namespace pm::sdwan
