// A whole-network data plane built from HybridSwitch instances. Used by
// the hybrid-routing demo and by integration tests to check that a
// recovery plan's mode assignments actually forward packets end-to-end.
#pragma once

#include <string>
#include <vector>

#include "sdwan/hybrid_switch.hpp"
#include "topo/topology.hpp"

namespace pm::sdwan {

/// Outcome of tracing one packet through the data plane.
struct TraceResult {
  /// Visited switches, starting at the ingress. On success the last entry
  /// is the destination.
  std::vector<SwitchId> hops;
  bool delivered = false;
  /// Human-readable reason when not delivered ("dropped at 7",
  /// "forwarding loop at 3", "ttl exceeded").
  std::string failure_reason;
};

class Dataplane {
 public:
  /// Builds one switch per topology node, all in `initial_mode`, with
  /// legacy tables precomputed from the topology's link-state view.
  explicit Dataplane(const topo::Topology& topo,
                     RoutingMode initial_mode = RoutingMode::kHybrid);

  int switch_count() const { return static_cast<int>(switches_.size()); }
  HybridSwitch& at(SwitchId id);
  const HybridSwitch& at(SwitchId id) const;

  /// Forwards a packet from `ingress` until delivery, drop, loop, or TTL
  /// exhaustion (TTL = 4 * switch_count, ample for simple paths).
  TraceResult trace(SwitchId ingress, const Packet& packet) const;

 private:
  std::vector<HybridSwitch> switches_;
};

}  // namespace pm::sdwan
