#include "sdwan/hybrid_switch.hpp"

#include <algorithm>

namespace pm::sdwan {

void HybridSwitch::install(FlowEntry entry) {
  // Insert after the last entry with priority >= the new one, so equal
  // priorities preserve installation order.
  const auto pos = std::find_if(
      flow_table_.begin(), flow_table_.end(),
      [&](const FlowEntry& e) { return e.priority < entry.priority; });
  flow_table_.insert(pos, entry);
}

std::size_t HybridSwitch::remove(const FlowMatch& match) {
  const auto old_size = flow_table_.size();
  std::erase_if(flow_table_, [&](const FlowEntry& e) {
    return e.match.src == match.src && e.match.dst == match.dst;
  });
  return old_size - flow_table_.size();
}

LookupResult HybridSwitch::lookup(const Packet& packet) const {
  const bool use_flow_table =
      mode_ == RoutingMode::kSdn || mode_ == RoutingMode::kHybrid;
  if (use_flow_table) {
    for (const FlowEntry& e : flow_table_) {
      if (e.match.matches(packet.src, packet.dst)) {
        return {e.next_hop, true};
      }
    }
    if (mode_ == RoutingMode::kSdn) {
      return {std::nullopt, false};  // table-miss drop
    }
  }
  // Legacy path (kLegacy, or kHybrid fall-through).
  const SwitchId nh = legacy_.next_hop(packet.dst);
  if (nh < 0) return {std::nullopt, false};
  return {nh, false};
}

}  // namespace pm::sdwan
