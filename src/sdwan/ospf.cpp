#include "sdwan/ospf.hpp"

#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace pm::sdwan {

SwitchId LegacyRoutingTable::next_hop(SwitchId dst) const {
  if (dst < 0 || dst >= static_cast<SwitchId>(next_hop_.size())) {
    throw std::out_of_range("destination out of range");
  }
  return next_hop_[static_cast<std::size_t>(dst)];
}

void LegacyRoutingTable::set_route(SwitchId dst, SwitchId next_hop) {
  if (dst < 0 || dst >= static_cast<SwitchId>(next_hop_.size())) {
    throw std::out_of_range("destination out of range");
  }
  next_hop_[static_cast<std::size_t>(dst)] = next_hop;
}

std::vector<LegacyRoutingTable> compute_legacy_tables(const graph::Graph& g) {
  const int n = g.node_count();
  std::vector<LegacyRoutingTable> tables;
  tables.reserve(static_cast<std::size_t>(n));
  for (SwitchId s = 0; s < n; ++s) {
    const auto sssp = graph::dijkstra(g, s);
    std::vector<SwitchId> next(static_cast<std::size_t>(n), -1);
    for (SwitchId d = 0; d < n; ++d) {
      if (d == s) continue;
      const auto path = graph::extract_path(sssp, d);
      if (path.size() >= 2) next[static_cast<std::size_t>(d)] = path[1];
    }
    tables.emplace_back(s, std::move(next));
  }
  return tables;
}

}  // namespace pm::sdwan
