// The SD-WAN model of Sec. IV-A: a topology partitioned into controller
// domains, with a flow between every ordered node pair forwarded on the
// deterministic shortest path (Sec. VI-A), and with the per-(flow, switch)
// programmability quantities beta_i^l and p_i^l precomputed.
//
// Everything downstream (PM, the baselines, the MILP formulation and the
// metrics) reads this immutable view; failure scenarios are layered on top
// by sdwan::FailureState without copying it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/path_count.hpp"
#include "sdwan/types.hpp"
#include "topo/topology.hpp"

namespace pm::sdwan {

struct Controller {
  std::string name;        ///< e.g. "C13" — named after its location node.
  SwitchId location = 0;   ///< topology node hosting the controller.
  double capacity = 0.0;   ///< flows it can control (paper: 500).
  std::vector<SwitchId> domain;  ///< switches it controls normally.
};

struct Flow {
  FlowId id = 0;
  SwitchId src = 0;
  SwitchId dst = 0;
  /// Forwarding path, inclusive of both endpoints.
  std::vector<SwitchId> path;
};

struct NetworkConfig {
  /// Control capacity per controller, in (flow, switch) control units.
  double controller_capacity = 500.0;
  /// Policy used for the path-diversity quantity p_i^l.
  graph::PathCountOptions path_count;
};

class Network {
 public:
  /// Builds the model. `domains` maps a controller's location node to the
  /// switches of its domain; domains must partition the node set and each
  /// controller node must belong to its own domain.
  /// Throws std::invalid_argument on violations or a disconnected topology.
  Network(topo::Topology topology,
          std::map<SwitchId, std::vector<SwitchId>> domains,
          NetworkConfig config = {});

  const topo::Topology& topology() const { return topology_; }
  const NetworkConfig& config() const { return config_; }

  int switch_count() const { return topology_.node_count(); }
  int controller_count() const {
    return static_cast<int>(controllers_.size());
  }
  const Controller& controller(ControllerId j) const;
  const std::vector<Controller>& controllers() const { return controllers_; }

  /// The controller whose domain contains switch `i`.
  ControllerId controller_of(SwitchId i) const;

  int flow_count() const { return static_cast<int>(flows_.size()); }
  const Flow& flow(FlowId l) const;
  const std::vector<Flow>& flows() const { return flows_; }

  /// Ids of flows whose path traverses switch `i`.
  const std::vector<FlowId>& flows_at(SwitchId i) const;

  /// gamma_i — the number of flows traversing switch `i` (Table III).
  int flow_count_at(SwitchId i) const {
    return static_cast<int>(flows_at(i).size());
  }

  /// Normal-operation control load of controller `j`:
  /// sum of gamma_i over its domain (the unit is per-(flow, switch)
  /// control entries; this reproduces the paper's A_rest values).
  double normal_load(ControllerId j) const;

  /// D_ij of the formulation — control-channel propagation delay between
  /// switch `i` and controller `j`, along the shortest path in the data
  /// network (control traffic is in-band).
  double delay_ms(SwitchId i, ControllerId j) const;

  /// p_i^l — path diversity of flow `l` at switch `i`: the number of
  /// alternative routes from `i` to the flow's destination under the
  /// configured counting policy. 0 if `i` is not on the path or is the
  /// destination.
  std::int64_t diversity(FlowId l, SwitchId i) const;

  /// beta_i^l — 1 iff switch `i` is on flow `l`'s path and has at least
  /// two routes to the destination (diversity >= 2), per Sec. IV-A.
  bool beta(FlowId l, SwitchId i) const { return diversity(l, i) >= 2; }

  /// The switches i on flow l's path with beta_i^l = 1, in path order.
  const std::vector<SwitchId>& programmable_switches(FlowId l) const;

  /// Total programmability of flow l if it were SDN-routed at every
  /// beta-switch: sum of p_i^l (the flow-level upper bound).
  std::int64_t max_programmability(FlowId l) const;

 private:
  topo::Topology topology_;
  NetworkConfig config_;
  std::vector<Controller> controllers_;
  std::vector<ControllerId> controller_of_switch_;
  std::vector<Flow> flows_;
  std::vector<std::vector<FlowId>> flows_at_switch_;
  /// delay_[i][j] = D_ij for every switch i, controller j.
  std::vector<std::vector<double>> delay_;
  /// diversity_[l] maps path position -> p at that switch; aligned with
  /// flows_[l].path.
  std::vector<std::vector<std::int64_t>> diversity_;
  std::vector<std::vector<SwitchId>> beta_switches_;
  std::vector<std::int64_t> max_programmability_;
};

}  // namespace pm::sdwan
