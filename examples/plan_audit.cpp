// plan_audit — validate a stored recovery plan against a failure
// scenario: the operational "is this runbook still good?" check.
//
// Reads a plan JSON (as written by `att_failover --json=...`), rebuilds
// the failure state, validates every FMSSM constraint, recomputes the
// metrics, and diffs the plan against what PM would compute today — so
// topology or capacity drift since the plan was stored shows up as
// violations or churn.
//
// Usage:
//   ./build/examples/att_failover --fail=13,20 --json=plan.json
//   ./build/examples/plan_audit --fail=13,20 --plan=plan.json
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "core/serialize.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string fail_spec = args.get_string("fail", "13,20");
  const std::string plan_path = args.get_string("plan", "");
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }
  if (plan_path.empty()) {
    obs::log().error("usage: plan_audit --fail=<nodes> --plan=<plan.json>");
    return 2;
  }

  // Load the plan (accepts either a bare plan or a full case report).
  std::ifstream in(plan_path);
  if (!in) {
    obs::log().error("cannot open " + plan_path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  core::RecoveryPlan plan;
  try {
    const auto json = util::JsonValue::parse(buf.str());
    plan = core::plan_from_json(json.contains("plan") ? json.at("plan")
                                                      : json);
  } catch (const std::exception& e) {
    obs::log().error(std::string("failed to load plan: ") + e.what());
    return 2;
  }

  const sdwan::Network net = core::make_att_network();
  std::set<int> fail_nodes;
  for (const auto& tok : util::split(fail_spec, ',')) {
    long long v = 0;
    if (util::parse_int(tok, v)) fail_nodes.insert(static_cast<int>(v));
  }
  sdwan::FailureScenario scenario;
  for (int j = 0; j < net.controller_count(); ++j) {
    if (fail_nodes.contains(net.controller(j).location)) {
      scenario.failed.push_back(j);
    }
  }
  const sdwan::FailureState state(net, scenario);

  std::cout << "=== Auditing " << plan.algorithm << " plan from "
            << plan_path << " against failure " << scenario.label(net)
            << " ===\n";

  const auto violations = core::validate_plan(state, plan);
  if (violations.empty()) {
    std::cout << "constraints: all satisfied ✓\n";
  } else {
    std::cout << "constraints: " << violations.size() << " VIOLATION(S)\n";
    for (const auto& v : violations) std::cout << "  - " << v << "\n";
  }

  const auto metrics = core::evaluate_plan(state, plan);
  const core::RecoveryPlan fresh = core::run_pm(state);
  const auto fresh_metrics = core::evaluate_plan(state, fresh);
  const auto churn = core::plan_churn(plan, fresh);

  util::TextTable t({"", "stored plan", "fresh PM"});
  t.add_row({"least programmability",
             std::to_string(metrics.least_programmability),
             std::to_string(fresh_metrics.least_programmability)});
  t.add_row({"total programmability",
             std::to_string(metrics.total_programmability),
             std::to_string(fresh_metrics.total_programmability)});
  t.add_row({"recovered flows",
             util::format_double(100.0 * metrics.recovered_flow_fraction, 1)
                 + "%",
             util::format_double(
                 100.0 * fresh_metrics.recovered_flow_fraction, 1) + "%"});
  t.add_row({"per-flow overhead ms",
             util::format_double(metrics.per_flow_overhead_ms, 2),
             util::format_double(fresh_metrics.per_flow_overhead_ms, 2)});
  t.print(std::cout);

  std::cout << "drift vs fresh PM: " << churn.mappings_changed
            << " remappings, " << churn.entries_added << " entries to add, "
            << churn.entries_removed << " to remove ("
            << (churn.total() == 0 ? "plan is current"
                                   : "plan is stale — consider reinstall")
            << ")\n";
  return violations.empty() ? 0 : 1;
}
