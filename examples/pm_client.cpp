// pm_client — thin command-line client for pm_server.
//
// Prints one raw response line per request to stdout (pipe into jq or
// python for inspection). Exit code: 0 when every response said
// ok=true, 1 when the server answered a structured error, 2 on usage or
// connection problems.
//
// Usage:
//   ./build/examples/pm_client --port=7071 --failed=3,4 [--algorithm=pm]
//     [--deadline-ms=250] [--retroflow-candidates=2] [--repeat=2]
//   ./build/examples/pm_client --port=7071 --verb=health|metrics
//   ./build/examples/pm_client --port=7071 --raw='{"verb":"solve",...}'
//
// --repeat sends the same request N times on one connection — the
// second answer demonstrates the plan cache (\"cached\":true, same
// result bytes).
#include <iostream>

#include "obs/obs.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string host = args.get_string("host", "127.0.0.1");
  const int port = static_cast<int>(args.get_int("port", 7071));
  const std::string raw = args.get_string("raw", "");
  std::string verb = args.get_string("verb", "solve");
  const std::string failed_spec = args.get_string("failed", "");
  const std::string algorithm = args.get_string("algorithm", "pm");
  const double deadline_ms = args.get_double("deadline-ms", 0.0);
  const long long retroflow_candidates =
      args.get_int("retroflow-candidates", 2);
  const long long repeat = args.get_int("repeat", 1);
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  std::string line = raw;
  if (line.empty()) {
    util::JsonValue req = util::JsonValue::object();
    req["verb"] = util::JsonValue(verb);
    if (verb == "solve") {
      util::JsonValue failed = util::JsonValue::array();
      for (const std::string& tok : util::split(failed_spec, ',')) {
        long long id = 0;
        if (!util::parse_int(tok, id)) {
          std::cerr << "pm_client: bad --failed entry '" << tok << "'\n";
          return 2;
        }
        failed.push_back(util::JsonValue(static_cast<std::int64_t>(id)));
      }
      req["failed"] = std::move(failed);
      req["algorithm"] = util::JsonValue(algorithm);
      if (deadline_ms > 0.0) {
        req["deadline_ms"] = util::JsonValue(deadline_ms);
      }
      if (algorithm == "retroflow") {
        req["retroflow_candidates"] =
            util::JsonValue(static_cast<std::int64_t>(retroflow_candidates));
      }
    }
    line = req.to_string(0);
  }

  try {
    svc::Client client(host, port);
    bool all_ok = true;
    for (long long i = 0; i < std::max(1LL, repeat); ++i) {
      const std::string response = client.roundtrip_line(line);
      std::cout << response << "\n";
      try {
        const util::JsonValue doc = util::JsonValue::parse(response);
        all_ok &= doc.contains("ok") && doc.at("ok").as_bool();
      } catch (const std::exception&) {
        all_ok = false;
      }
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "pm_client: " << e.what() << "\n";
    return 2;
  }
}
