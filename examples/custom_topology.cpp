// custom_topology — run PM on YOUR network: load a Topology Zoo GML file
// or generate a synthetic WAN, auto-place controllers, fail some, and
// compare the recovery algorithms.
//
// Controller placement: greedy k-center (farthest-point) over propagation
// delays, then each switch joins its nearest controller's domain — a
// standard, reproducible placement for topologies without a published
// controller layout.
//
// Usage:
//   ./build/examples/custom_topology --gml=path/to/AttMpls.gml
//   ./build/examples/custom_topology --waxman=40 --controllers=5
//        --fail=2 --capacity=800
#include <algorithm>
#include <iostream>
#include <map>

#include "topo/placement.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

#include "core/runner.hpp"
#include "graph/shortest_path.hpp"
#include "topo/generators.hpp"
#include "topo/gml.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pm;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string gml = args.get_string("gml", "");
  const int waxman_n = static_cast<int>(args.get_int("waxman", 30));
  const int controllers = static_cast<int>(args.get_int("controllers", 4));
  const int fail = static_cast<int>(args.get_int("fail", 1));
  const double capacity = args.get_double("capacity", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  topo::Topology topology;
  try {
    topology = gml.empty() ? topo::waxman(waxman_n, 0.5, 0.25, seed)
                           : topo::load_gml_file(gml);
  } catch (const std::exception& e) {
    obs::log().error(std::string("failed to load topology: ") + e.what());
    return 1;
  }
  std::cout << "topology '" << topology.name() << "': "
            << topology.node_count() << " nodes, "
            << topology.link_count() << " links\n";
  if (controllers < 2 || controllers > topology.node_count()) {
    obs::log().error("--controllers must be in [2, node count]");
    return 1;
  }
  if (fail < 1 || fail >= controllers) {
    obs::log().error("--fail must be in [1, controllers)");
    return 1;
  }

  const auto domains = topo::k_center_domains(topology, controllers);
  sdwan::NetworkConfig config;
  // Default capacity: generous enough for normal operation plus slack.
  config.controller_capacity =
      capacity > 0.0
          ? capacity
          : 1.4 * topology.node_count() * (topology.node_count() - 1) *
                3.0 / controllers;
  const sdwan::Network net(std::move(topology), domains, config);

  std::cout << "controllers:";
  for (int j = 0; j < net.controller_count(); ++j) {
    std::cout << " " << net.controller(j).name << "("
              << net.controller(j).domain.size() << " switches, load "
              << util::format_double(net.normal_load(j), 0) << ")";
  }
  std::cout << "\n";

  // Fail the `fail` most-loaded controllers — the hardest case.
  std::vector<sdwan::ControllerId> by_load;
  for (int j = 0; j < net.controller_count(); ++j) by_load.push_back(j);
  std::sort(by_load.begin(), by_load.end(),
            [&](sdwan::ControllerId a, sdwan::ControllerId b) {
              return net.normal_load(a) > net.normal_load(b);
            });
  sdwan::FailureScenario scenario;
  scenario.failed.assign(by_load.begin(), by_load.begin() + fail);
  std::sort(scenario.failed.begin(), scenario.failed.end());

  core::RunnerOptions opts;
  opts.run_optimal = false;
  const core::CaseResult r = core::run_case(net, scenario, opts);

  std::cout << "\nfailure " << r.label << " (the " << fail
            << " most-loaded controllers):\n";
  util::TextTable t({"algorithm", "least", "total", "recovered flows",
                     "switches", "overhead ms/flow"});
  for (const auto& [name, m] : r.metrics) {
    t.add_row({name, std::to_string(m.least_programmability),
               std::to_string(m.total_programmability),
               util::format_double(100.0 * m.recovered_flow_fraction, 1) +
                   "%",
               std::to_string(m.recovered_switch_count) + "/" +
                   std::to_string(m.offline_switch_count),
               util::format_double(m.per_flow_overhead_ms, 2)});
  }
  t.print(std::cout);
  return 0;
}
