// traffic_surge — why programmability matters: a traffic surge hits the
// network while controllers are down, and only flows whose
// programmability was recovered can be steered off the hot links.
//
// The demo loads the ATT backbone with a gravity traffic matrix, fails
// controllers (default 13 and 20), injects a surge at a source node, and
// compares the congestion (maximum link utilization, MLU) reachable by
// rerouting under each algorithm's recovery plan.
//
// Default surge source: Houston (node 12), inside the failed region for
// the default (13, 20) failure — exactly where recovered programmability
// decides whether the congestion can be escaped at all.
//
// Usage: ./build/examples/traffic_surge [--fail=13,20] [--surge-node=12]
//        [--surge=8] [--total-traffic=200000] [--link-capacity=10000]
#include <iostream>
#include <set>

#include "core/naive.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/reroute.hpp"
#include "core/retroflow.hpp"
#include "core/scenario.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string fail_spec = args.get_string("fail", "13,20");
  const int surge_node = static_cast<int>(args.get_int("surge-node", 12));
  const double surge = args.get_double("surge", 8.0);
  const double total_traffic = args.get_double("total-traffic", 200000.0);
  const double link_capacity = args.get_double("link-capacity", 10000.0);
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  sdwan::FailureScenario scenario;
  std::set<int> fail_nodes;
  for (const auto& tok : util::split(fail_spec, ',')) {
    long long v = 0;
    if (util::parse_int(tok, v)) fail_nodes.insert(static_cast<int>(v));
  }
  for (int j = 0; j < net.controller_count(); ++j) {
    if (fail_nodes.contains(net.controller(j).location)) {
      scenario.failed.push_back(j);
    }
  }
  const sdwan::FailureState state(net, scenario);

  sdwan::TrafficMatrix tm = sdwan::gravity_traffic(net, total_traffic);
  sdwan::apply_source_surge(tm, net, surge_node, surge);
  const auto before =
      sdwan::compute_link_loads(net, tm, link_capacity);

  std::cout << "=== Traffic surge under failure " << scenario.label(net)
            << " ===\n"
            << "surge x" << surge << " at "
            << net.topology().node(surge_node).label << ", total offered "
            << util::format_double(tm.total(), 0) << " Mbps, link capacity "
            << util::format_double(link_capacity, 0) << " Mbps\n"
            << "MLU before any rerouting: "
            << util::format_double(100.0 * before.max_utilization, 1)
            << "% (busiest link "
            << net.topology().node(before.busiest_link.first).label << " - "
            << net.topology().node(before.busiest_link.second).label
            << ", " << before.congested_links << " congested links)\n\n";

  util::TextTable t({"recovery plan", "MLU after rerouting", "flows moved",
                     "congested links left"});
  core::RerouteOptions ropts;
  ropts.link_capacity_mbps = link_capacity;

  auto evaluate = [&](const core::RecoveryPlan& plan) {
    const auto rr = core::minimize_congestion(state, plan, tm, ropts);
    std::map<sdwan::FlowId, std::vector<sdwan::SwitchId>> overrides(
        rr.new_paths.begin(), rr.new_paths.end());
    const auto after =
        sdwan::compute_link_loads(net, tm, link_capacity, overrides);
    t.add_row({plan.algorithm,
               util::format_double(100.0 * rr.final_mlu, 1) + "%",
               std::to_string(rr.moves),
               std::to_string(after.congested_links)});
  };

  core::RecoveryPlan none;
  none.algorithm = "no recovery";
  evaluate(none);
  evaluate(core::run_retroflow(state));
  evaluate(core::run_pm(state));
  evaluate(core::run_pg(state));
  t.print(std::cout);

  std::cout << "\nOnline-domain switches can always steer their flows; "
               "the difference between rows is exactly the programmability "
               "each algorithm recovered at the offline switches.\n";
  return 0;
}
