// protocol_trace — the control-plane protocol end to end: heartbeats,
// timeout-based failure detection, coordinator election, role handover
// and flow-mod distribution, with the message counts and timeline a
// network operator would read off a packet capture. Optionally runs the
// whole exchange over a lossy channel (seeded fault injection) to show
// the reliable-delivery machinery at work.
//
// Usage: ./build/examples/protocol_trace [--fail=13,20]
//        [--second-failure-at=3000] [--until=10000]
//        [--kill-at=<time>:<controller>]... [--no-transactional]
//        [--heartbeat=50] [--timeout=200] [--suspicion-checks=1]
//        [--retries=5] [--backoff=2] [--rto-margin=60]
//        [--loss=0.1] [--dup=0.05] [--jitter=20]
//        [--reorder=0.01] [--reorder-delay=40] [--fault-seed=42]
//        [--trace-out=t.json] [--trace-jsonl=t.jsonl]
//        [--metrics-out=m.prom] [--metrics-json=m.json]
//        [--profile-out=p.json] [--log-level=info]
//
// --kill-at is repeatable and may land INSIDE a recovery window: killing
// the coordinator (or an adopting controller) mid-wave exercises the
// transactional failover/replan/rollback path. <controller> is a
// controller id or its topology node location (e.g. 850:0 or 850:4).
//
// --trace-out writes a Chrome trace_event file (load in Perfetto /
// chrome://tracing); --metrics-out writes Prometheus text exposition.
// Both derive from the simulated clock only, so same-seed runs produce
// byte-identical files.
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string fail_spec = args.get_string("fail", "13,20");
  const double second_at = args.get_double("second-failure-at", 3000.0);
  const double until = args.get_double("until", 10000.0);
  ctrl::ControllerConfig config;
  config.heartbeat_interval_ms = args.get_double("heartbeat", 50.0);
  config.detection_timeout_ms = args.get_double("timeout", 200.0);
  config.suspicion_checks =
      static_cast<int>(args.get_int("suspicion-checks", 1));
  config.max_retries = static_cast<int>(args.get_int("retries", 5));
  config.retransmit_backoff = args.get_double("backoff", 2.0);
  config.retransmit_margin_ms = args.get_double("rto-margin", 60.0);
  config.transactional = !args.get_bool("no-transactional", false);
  const std::vector<std::string> kill_specs = args.get_strings("kill-at");

  ctrl::ChannelFaultModel faults;
  faults.drop_probability = args.get_double("loss", 0.0);
  faults.duplicate_probability = args.get_double("dup", 0.0);
  faults.jitter_ms = args.get_double("jitter", 0.0);
  faults.reorder_probability = args.get_double("reorder", 0.0);
  faults.reorder_delay_ms = args.get_double("reorder-delay", 40.0);
  faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 42));
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  std::set<int> fail_nodes;
  for (const auto& tok : util::split(fail_spec, ',')) {
    long long v = 0;
    if (util::parse_int(tok, v)) fail_nodes.insert(static_cast<int>(v));
  }

  ctrl::ControlSimulation simulation(
      net,
      [](const sdwan::FailureState& state,
         const core::RecoveryPlan* previous) {
        core::PmOptions opts;
        opts.seed = previous;
        return core::run_pm(state, opts);
      },
      config);
  simulation.set_fault_model(faults);
  simulation.observability().tracer.set_enabled(
      obs_options.tracing_requested());
  simulation.observability().detailed_metrics =
      obs_options.detailed_requested();

  // Crash the named controllers: the first at t = 500 ms, any further
  // ones at --second-failure-at (successive-failure mode).
  double at = 500.0;
  std::cout << "=== Control-plane protocol trace ===\n";
  if (faults.active()) {
    std::cout << "channel faults: loss=" << faults.drop_probability
              << " dup=" << faults.duplicate_probability
              << " jitter=" << util::format_double(faults.jitter_ms, 1)
              << "ms reorder=" << faults.reorder_probability
              << " seed=" << faults.seed << "\n";
  }
  for (int j = 0; j < net.controller_count(); ++j) {
    if (!fail_nodes.contains(net.controller(j).location)) continue;
    std::cout << "scheduling crash of " << net.controller(j).name
              << " at t=" << util::format_double(at, 0) << " ms\n";
    simulation.fail_controller_at(j, at);
    at = second_at;
  }
  // Additional kills, usable inside the recovery window: each spec is
  // <time>:<controller>, controller given as id or node location.
  for (const std::string& spec : kill_specs) {
    const auto parts = util::split(spec, ':');
    double t = 0.0;
    long long who = -1;
    if (parts.size() != 2 || !util::parse_double(parts[0], t) ||
        !util::parse_int(parts[1], who)) {
      obs::log().warn("ignoring malformed --kill-at=" + spec);
      continue;
    }
    int target = -1;
    for (int j = 0; j < net.controller_count(); ++j) {
      if (net.controller(j).location == static_cast<int>(who)) target = j;
    }
    if (target < 0 && who >= 0 && who < net.controller_count()) {
      target = static_cast<int>(who);
    }
    if (target < 0) {
      obs::log().warn("ignoring --kill-at=" + spec +
                      ": no such controller");
      continue;
    }
    std::cout << "scheduling crash of " << net.controller(target).name
              << " at t=" << util::format_double(t, 0)
              << " ms (mid-recovery kill)\n";
    simulation.fail_controller_at(target, t);
  }

  const ctrl::SimulationReport report = simulation.run(until);

  std::cout << "\ntimeline:\n"
            << "  first detection   t="
            << (report.detected_at
                    ? util::format_double(*report.detected_at, 1) + " ms"
                    : std::string("never"))
            << "\n"
            << "  last wave acked   t="
            << (report.converged_at
                    ? util::format_double(*report.converged_at, 1) + " ms"
                    : std::string("never"))
            << "\n"
            << "  recovery waves    " << report.recovery_waves << "\n"
            << "  adopted switches  " << report.adopted_switches << "\n"
            << "  flows programmed  " << report.flows_with_entries << "\n"
            << "  data plane audit  "
            << (report.all_flows_deliverable ? "all flows deliverable ✓"
                                             : "DELIVERY BROKEN")
            << "\n";
  if (report.degraded_flows > 0 || report.degraded_switches > 0) {
    std::cout << "  degraded          " << report.degraded_flows
              << " flows, " << report.degraded_switches
              << " switches (legacy fallback)\n";
  }
  std::cout << "  consistency audit "
            << (report.audit_clean
                    ? "clean ✓"
                    : std::to_string(report.audit_violations) +
                          " violation(s)")
            << "\n";
  if (!report.audit_clean) {
    for (const auto& [invariant, count] :
         simulation.audit().by_invariant()) {
      std::cout << "    " << invariant << "  " << count << "\n";
    }
  }
  if (report.waves_aborted > 0 || report.coordinator_failovers > 0 ||
      report.rollback_removals > 0 || report.stale_discarded > 0) {
    std::cout << "\ntransactional recovery:\n"
              << "  waves aborted     " << report.waves_aborted << "\n"
              << "  coord failovers   " << report.coordinator_failovers
              << "\n"
              << "  rollback removes  " << report.rollback_removals
              << "\n"
              << "  stale discarded   " << report.stale_discarded
              << "\n";
  }
  if (faults.active()) {
    std::cout << "\nreliable delivery under faults:\n"
              << "  injected drops    " << report.injected_drops << "\n"
              << "  injected dups     " << report.injected_duplicates
              << "\n"
              << "  reordered         " << report.reordered_messages
              << "\n"
              << "  partition drops   " << report.partition_drops << "\n"
              << "  retransmissions   " << report.retransmissions << "\n"
              << "  dups suppressed   " << report.duplicates_suppressed
              << "\n"
              << "  spurious detects  " << report.spurious_detections
              << "\n";
  }
  std::cout << "\nmessages on the control channel:\n";
  util::TextTable t({"kind", "count"});
  for (const auto& [kind, count] : report.messages_by_kind) {
    t.add_row({kind, std::to_string(count)});
  }
  t.add_row({"total", std::to_string(report.messages_sent)});
  t.print(std::cout);

  obs::write_outputs(obs_options, simulation.observability());
  return report.all_flows_deliverable ? 0 : 1;
}
