// hybrid_routing_demo — the mechanism PM relies on, shown packet by
// packet (the paper's Fig. 2): a high-priority OpenFlow table in front of
// an OSPF legacy table, per switch.
//
// The demo builds the ATT data plane, traces a flow under pure legacy
// routing, installs SDN entries to divert it, shows the hybrid fallback
// when entries are removed, and demonstrates the SDN-mode table-miss
// drop.
//
// Usage: ./build/examples/hybrid_routing_demo [--src=21] [--dst=0]
#include <iostream>

#include "core/scenario.hpp"
#include "sdwan/dataplane.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"

namespace {

void print_trace(const pm::sdwan::Network& net, const std::string& title,
                 const pm::sdwan::TraceResult& trace) {
  std::cout << title << ": ";
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    if (i > 0) std::cout << " -> ";
    std::cout << net.topology().node(trace.hops[i]).label;
  }
  if (!trace.delivered) std::cout << "  [" << trace.failure_reason << "]";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const int src = static_cast<int>(args.get_int("src", 21));
  const int dst = static_cast<int>(args.get_int("dst", 0));
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  if (src < 0 || dst < 0 || src >= net.switch_count() ||
      dst >= net.switch_count() || src == dst) {
    obs::log().error("--src/--dst must be distinct nodes in [0, " +
                      std::to_string(net.switch_count()) + ")");
    return 1;
  }
  const sdwan::Packet packet{src, dst};

  std::cout << "=== Hybrid SDN/legacy routing (Fig. 2) ===\n"
            << "flow " << net.topology().node(src).label << " -> "
            << net.topology().node(dst).label << "\n\n";

  // (b) Pure legacy: OSPF tables forward along the shortest path.
  sdwan::Dataplane dp(net.topology(), sdwan::RoutingMode::kLegacy);
  print_trace(net, "legacy (OSPF) path    ", dp.trace(src, packet));

  // (c) Hybrid: install SDN entries diverting the first hop through the
  // second-best neighbor; unmatched packets still use OSPF.
  for (int s = 0; s < dp.switch_count(); ++s) {
    dp.at(s).set_mode(sdwan::RoutingMode::kHybrid);
  }
  // Find an alternative first hop: any neighbor that is not the OSPF
  // next hop and from which legacy routing reaches the destination
  // without coming back through src.
  const sdwan::SwitchId ospf_next =
      dp.at(src).legacy_table().next_hop(dst);
  for (const auto& arc : net.topology().graph().neighbors(src)) {
    if (arc.to == ospf_next) continue;
    dp.at(src).install({100, {src, dst}, arc.to});
    const auto diverted = dp.trace(src, packet);
    if (diverted.delivered) {
      std::cout << "install flow-mod at "
                << net.topology().node(src).label << ": next hop "
                << net.topology().node(arc.to).label
                << " (priority 100)\n";
      print_trace(net, "hybrid (SDN diverted) ", diverted);
      break;
    }
    dp.at(src).remove({src, dst});
  }

  // Remove the entry: hybrid falls back to the legacy table.
  dp.at(src).remove({src, dst});
  print_trace(net, "hybrid (after remove) ", dp.trace(src, packet));

  // (a) Pure SDN without entries: table-miss drops the packet.
  dp.at(src).set_mode(sdwan::RoutingMode::kSdn);
  print_trace(net, "pure SDN, empty table ", dp.trace(src, packet));

  std::cout << "\nThis per-flow choice between the two tables is exactly "
               "what lets PM set y_i^l per flow per switch (Sec. III).\n";
  return 0;
}
