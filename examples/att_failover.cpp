// att_failover — the paper's headline scenario, end to end, with the
// temporal recovery replay.
//
// Fails the controllers at the given nodes (default: 13 and 20, the
// paper's pivotal double failure), runs all algorithms, explains what
// happened to hub switch 13, and replays PM's recovery through the
// discrete-event control-plane simulator.
//
// Usage: ./build/examples/att_failover [--fail=13,20] [--optimal]
//        [--optimal-time=30] [--json=report.json]
#include <fstream>
#include <iostream>
#include <set>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "core/serialize.hpp"
#include "sim/control_plane.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string fail_spec = args.get_string("fail", "13,20");
  const bool with_optimal = args.get_bool("optimal", false);
  const double optimal_time = args.get_double("optimal-time", 30.0);
  const std::string json_path = args.get_string("json", "");
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();

  // Resolve failed controller ids from node ids.
  std::set<int> fail_nodes;
  for (const auto& tok : util::split(fail_spec, ',')) {
    long long node = 0;
    if (!util::parse_int(tok, node)) {
      obs::log().error("bad --fail value '" + tok + "'");
      return 1;
    }
    fail_nodes.insert(static_cast<int>(node));
  }
  sdwan::FailureScenario scenario;
  for (int j = 0; j < net.controller_count(); ++j) {
    if (fail_nodes.contains(net.controller(j).location)) {
      scenario.failed.push_back(j);
    }
  }
  if (scenario.failed.size() != fail_nodes.size()) {
    obs::log().error("--fail must name controller nodes (2,5,6,13,20,22)");
    return 1;
  }

  const sdwan::FailureState state(net, scenario);
  std::cout << "=== ATT failover, failure " << scenario.label(net)
            << " ===\n"
            << state.offline_switches().size() << " offline switches, "
            << state.recoverable_flows().size()
            << " recoverable offline flows, delay budget G = "
            << util::format_double(state.ideal_total_delay(), 1)
            << " ms\nresidual capacities:";
  for (sdwan::ControllerId j : state.active_controllers()) {
    std::cout << "  " << net.controller(j).name << "="
              << util::format_double(state.rest_capacity(j), 0);
  }
  std::cout << "\n";

  core::RunnerOptions opts;
  opts.run_optimal = with_optimal;
  opts.optimal.time_limit_seconds = optimal_time;
  const core::CaseResult r = core::run_case(net, scenario, opts);

  util::TextTable t({"algorithm", "least", "total", "recovered flows",
                     "switches", "capacity used", "overhead ms/flow",
                     "time"});
  for (const auto& [name, m] : r.metrics) {
    t.add_row({name, std::to_string(m.least_programmability),
               std::to_string(m.total_programmability),
               util::format_double(100.0 * m.recovered_flow_fraction, 1) +
                   "% (" + std::to_string(m.recovered_flow_count) + ")",
               std::to_string(m.recovered_switch_count) + "/" +
                   std::to_string(m.offline_switch_count),
               util::format_double(m.used_control_resource, 0) + "/" +
                   util::format_double(m.available_control_resource, 0),
               util::format_double(m.per_flow_overhead_ms, 2),
               util::format_double(m.solve_seconds * 1000.0, 2) + " ms"});
  }
  t.print(std::cout);

  // The hub story (Sec. VI-C-2): what happened to switch 13?
  if (state.is_offline_switch(13)) {
    std::cout << "\nhub switch 13 (gamma = " << state.gamma(13) << "):\n";
    const core::RecoveryPlan retro = core::run_retroflow(state);
    const core::RecoveryPlan pm = core::run_pm(state);
    if (!retro.mapping.contains(13)) {
      std::cout
          << "  RetroFlow: STRANDED — its whole-switch cost exceeds every "
             "controller's residual capacity\n";
    }
    if (pm.mapping.contains(13)) {
      std::size_t at13 = 0;
      for (const auto& [sw, flow] : pm.sdn_assignments) {
        (void)flow;
        if (sw == 13) ++at13;
      }
      std::cout << "  PM: recovered by mapping it to "
                << net.controller(pm.mapping.at(13)).name << " with "
                << at13 << " of " << state.gamma(13)
                << " flows in SDN mode (the rest ride the legacy table)\n";
    }
  }

  // Machine-readable report of PM's plan.
  if (!json_path.empty()) {
    const core::RecoveryPlan plan = core::run_pm(state);
    const auto json = core::case_report_to_json(
        scenario.label(net), plan, core::evaluate_plan(state, plan));
    std::ofstream out(json_path);
    out << json.to_string(2) << "\n";
    std::cout << "\n[PM plan written to " << json_path << "]\n";
  }

  // Temporal replay of PM's plan.
  const core::RecoveryPlan pm_plan = core::run_pm(state);
  const sim::RecoveryTimeline timeline =
      sim::simulate_recovery(state, pm_plan);
  std::cout << "\nPM recovery timeline (discrete-event replay):\n"
            << "  failure detected at  "
            << util::format_double(timeline.detected_at, 1) << " ms\n"
            << "  plan computed at     "
            << util::format_double(timeline.plan_ready_at, 1) << " ms\n"
            << "  all entries installed at "
            << util::format_double(timeline.completed_at, 1) << " ms ("
            << timeline.control_messages << " control messages)\n";
  return 0;
}
