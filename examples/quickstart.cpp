// Quickstart: the whole PM pipeline on a toy SD-WAN in ~60 lines of
// user code.
//
//   1. Build a topology (here: the 5-switch domain of the paper's Fig. 1
//      plus a second domain).
//   2. Wrap it in an sdwan::Network (all-pairs flows, programmability).
//   3. Declare a controller failure and derive the FailureState.
//   4. Run ProgrammabilityMedic and inspect the recovery plan.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/metrics.hpp"
#include "core/pm_algorithm.hpp"
#include "sdwan/failure.hpp"
#include "topo/topology.hpp"
#include "util/strings.hpp"

int main() {
  using namespace pm;

  // --- 1. Topology: two domains of a small WAN.
  topo::Topology topo("quickstart");
  // Domain A (the paper's Fig. 1 D2 shape).
  const auto s20 = topo.add_node({"s20", 39.0, -104.9});
  const auto s21 = topo.add_node({"s21", 39.8, -105.2});
  const auto s22 = topo.add_node({"s22", 38.9, -104.0});
  const auto s23 = topo.add_node({"s23", 39.9, -104.1});
  const auto s24 = topo.add_node({"s24", 39.5, -103.2});
  // Domain B.
  const auto s10 = topo.add_node({"s10", 41.0, -104.8});
  const auto s11 = topo.add_node({"s11", 41.5, -104.0});
  topo.add_link(s20, s21);
  topo.add_link(s20, s22);
  topo.add_link(s21, s23);
  topo.add_link(s22, s23);
  topo.add_link(s22, s24);
  topo.add_link(s23, s24);
  topo.add_link(s21, s10);
  topo.add_link(s23, s10);
  topo.add_link(s10, s11);
  topo.add_link(s23, s11);

  // --- 2. Network: controller at s22 controls domain A, controller at
  // s10 controls domain B; each can manage 40 flow entries beyond its
  // normal load.
  sdwan::NetworkConfig config;
  config.controller_capacity = 120.0;
  const sdwan::Network net(
      std::move(topo),
      {{s22, {s20, s21, s22, s23, s24}}, {s10, {s10, s11}}}, config);

  std::cout << "network: " << net.switch_count() << " switches, "
            << net.flow_count() << " flows, " << net.controller_count()
            << " controllers\n";

  // --- 3. Fail the controller of domain A (controller index 1 — ids
  // follow ascending location: C10 is 0, C22 is 1).
  const sdwan::FailureState state(net, {{1}});
  std::cout << "failure " << state.scenario().label(net) << ": "
            << state.offline_switches().size() << " offline switches, "
            << state.offline_flows().size() << " offline flows ("
            << state.recoverable_flows().size() << " recoverable)\n";

  // --- 4. Recover with ProgrammabilityMedic.
  const core::RecoveryPlan plan = core::run_pm(state);
  const core::RecoveryMetrics m = core::evaluate_plan(state, plan);

  std::cout << "\nPM plan: " << plan.mapping.size()
            << " switches remapped, " << plan.sdn_assignments.size()
            << " flow entries in SDN mode\n";
  for (const auto& [sw, ctrl] : plan.mapping) {
    std::cout << "  switch " << net.topology().node(sw).label << " -> "
              << net.controller(ctrl).name << "\n";
  }
  std::cout << "recovered " << m.recovered_flow_count << "/"
            << m.recoverable_flow_count
            << " flows; least programmability " << m.least_programmability
            << ", total " << m.total_programmability
            << ", per-flow overhead "
            << util::format_double(m.per_flow_overhead_ms, 3) << " ms\n";

  const auto violations = core::validate_plan(state, plan);
  std::cout << (violations.empty() ? "plan valid ✓"
                                   : "PLAN INVALID: " + violations.front())
            << "\n";
  return violations.empty() ? 0 : 1;
}
