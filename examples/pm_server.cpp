// pm_server — the recovery service, resident on the ATT backbone.
//
// Builds the evaluation network once, then serves "controllers {c...}
// just died — give me the plan" requests over JSONL/loopback-TCP until
// SIGINT/SIGTERM (graceful drain: queued requests are answered, caches
// and counters are reported, then the process exits 0).
//
// Usage:
//   ./build/examples/pm_server [--port=7071] [--port-file=port.txt]
//     [--jobs=N] [--cache-mb=64] [--max-queue=64] [--batch-max=16]
//     [--deadline-ms=0] [--log-level=info]
//
// --port=0 binds an ephemeral port; --port-file writes the resolved
// port for scripts (the CI smoke job uses exactly that). Try it:
//   printf '%s\n' '{"verb":"solve","failed":[3,4]}' | nc 127.0.0.1 7071
#include <fstream>
#include <iostream>

#include "core/scenario.hpp"
#include "obs/obs.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/shutdown.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  svc::ServerConfig server_config;
  server_config.port = static_cast<int>(args.get_int("port", 7071));
  server_config.max_queue =
      static_cast<int>(args.get_int("max-queue", 64));
  server_config.batch_max =
      static_cast<int>(args.get_int("batch-max", 16));
  server_config.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  const std::string port_file = args.get_string("port-file", "");
  svc::EngineConfig engine_config;
  engine_config.jobs = util::parse_jobs_flag(args);
  engine_config.cache_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 64)) << 20;
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  util::install_shutdown_handler();

  svc::Engine engine(core::make_att_network(), engine_config);
  svc::Server server(engine, server_config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "pm_server: " << e.what() << "\n";
    return 2;
  }
  std::cout << "pm_server: listening on 127.0.0.1:" << server.port()
            << " (jobs=" << engine_config.jobs
            << ", cache=" << (engine_config.cache_bytes >> 20)
            << " MiB, queue=" << server_config.max_queue << ")"
            << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }

  server.run_until_shutdown();

  const svc::PlanCache& cache = engine.cache();
  std::cout << "pm_server: drained and stopped — cache "
            << cache.entries() << " plans / " << cache.bytes()
            << " bytes, " << cache.hits() << " hits / " << cache.misses()
            << " misses / " << cache.evictions() << " evictions"
            << std::endl;
  return 0;
}
