// failure_sweep — run every k-controller-failure combination and dump one
// CSV row per (case, algorithm), ready for plotting.
//
// Usage: ./build/examples/failure_sweep [--k=2] [--optimal]
//        [--optimal-time=20] [--out=sweep.csv]
#include <fstream>
#include <iostream>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 2));
  const bool with_optimal = args.get_bool("optimal", false);
  const double optimal_time = args.get_double("optimal-time", 20.0);
  const std::string out_path = args.get_string("out", "sweep.csv");
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  core::RunnerOptions opts;
  opts.run_optimal = with_optimal;
  opts.optimal.time_limit_seconds = optimal_time;

  obs::log().info("sweeping " +
                  std::to_string(sdwan::enumerate_failures(net, k).size()) +
                  " cases with k=" + std::to_string(k) + "...");
  const auto results = core::run_failure_sweep(net, k, opts);

  std::ofstream out(out_path);
  if (!out) {
    obs::log().error("cannot write " + out_path);
    return 1;
  }
  util::CsvWriter csv(out);
  csv.write_row({"case", "algorithm", "least_programmability",
                 "total_programmability", "recovered_flow_pct",
                 "recovered_switches", "offline_switches",
                 "used_control_resource", "per_flow_overhead_ms",
                 "solve_ms"});
  for (const auto& r : results) {
    for (const auto& [name, m] : r.metrics) {
      csv.write_row(
          {r.label, name, std::to_string(m.least_programmability),
           std::to_string(m.total_programmability),
           util::format_double(100.0 * m.recovered_flow_fraction, 2),
           std::to_string(m.recovered_switch_count),
           std::to_string(m.offline_switch_count),
           util::format_double(m.used_control_resource, 0),
           util::format_double(m.per_flow_overhead_ms, 4),
           util::format_double(m.solve_seconds * 1000.0, 4)});
    }
  }
  obs::log().info("wrote " + out_path);
  return 0;
}
