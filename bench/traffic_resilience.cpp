// traffic_resilience (extension bench) — quantifies the paper's
// motivation across all two-failure cases: the congestion (MLU) the
// network can still escape from under a traffic surge depends on how much
// programmability each recovery algorithm restored.
//
// For every 2-failure case: gravity traffic + surge at the busiest node,
// then greedy MLU minimization constrained to each plan's programmability
// (core/reroute.hpp). Reported: mean/worst MLU after rerouting.
//
// Flags: --surge=<factor> --total-traffic=<Mbps> --link-capacity=<Mbps>
#include <iostream>

#include "bench_common.hpp"
#include "core/naive.hpp"
#include "core/reroute.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const double surge = args.get_double("surge", 8.0);
  const double total_traffic = args.get_double("total-traffic", 200000.0);
  const double link_capacity = args.get_double("link-capacity", 10000.0);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Traffic resilience under recovery (extension) ===\n"
            << "gravity matrix " << bench::num(total_traffic, 0)
            << " Mbps, surge x" << surge
            << " at the highest-degree OFFLINE node per case, capacity "
            << bench::num(link_capacity, 0) << " Mbps\n";

  struct Acc {
    double sum = 0.0;
    double worst = 0.0;
    void add(double v) {
      sum += v;
      worst = std::max(worst, v);
    }
  };
  std::map<std::string, Acc> mlu;
  Acc no_reroute;

  const auto scenarios = sdwan::enumerate_failures(net, 2);
  util::TextTable t({"case", "no reroute", "no recovery", "RetroFlow",
                     "PM", "PG"});
  core::RerouteOptions ropts;
  ropts.link_capacity_mbps = link_capacity;

  for (const auto& sc : scenarios) {
    const sdwan::FailureState state(net, sc);
    sdwan::TrafficMatrix tm = sdwan::gravity_traffic(net, total_traffic);
    // Surge at the busiest OFFLINE node: its flows lost programmability
    // with the failure, so what each plan recovered decides whether the
    // congestion can be escaped.
    sdwan::SwitchId surge_node = state.offline_switches().front();
    int best_degree = -1;
    for (int s = 0; s < net.switch_count(); ++s) {
      if (!state.is_offline_switch(s)) continue;
      const int d = net.topology().graph().degree(s);
      if (d > best_degree) {
        best_degree = d;
        surge_node = s;
      }
    }
    sdwan::apply_source_surge(tm, net, surge_node, surge);

    const auto before = sdwan::compute_link_loads(net, tm, link_capacity);
    no_reroute.add(before.max_utilization);
    std::vector<std::string> row{sc.label(net),
                                 bench::pct(before.max_utilization)};

    auto run = [&](const std::string& label,
                   const core::RecoveryPlan& plan) {
      const auto rr = core::minimize_congestion(state, plan, tm, ropts);
      mlu[label].add(rr.final_mlu);
      row.push_back(bench::pct(rr.final_mlu));
    };
    core::RecoveryPlan none;
    none.algorithm = "none";
    run("no recovery", none);
    run("RetroFlow", core::run_retroflow(state));
    run("PM", core::run_pm(state));
    run("PG", core::run_pg(state));
    t.add_row(row);
  }
  t.print(std::cout);

  const double n = static_cast<double>(scenarios.size());
  std::cout << "\nmean MLU:  no reroute " << bench::pct(no_reroute.sum / n);
  for (const auto& label : {"no recovery", "RetroFlow", "PM", "PG"}) {
    std::cout << ", " << label << " " << bench::pct(mlu[label].sum / n);
  }
  std::cout << "\nworst MLU: no reroute " << bench::pct(no_reroute.worst);
  for (const auto& label : {"no recovery", "RetroFlow", "PM", "PG"}) {
    std::cout << ", " << label << " " << bench::pct(mlu[label].worst);
  }
  std::cout << "\n(lower is better; PM/PG should track each other and "
               "beat RetroFlow, which cannot steer the hub's flows)\n";
  obs::write_profile(obs_options);
  return 0;
}
