// Google-benchmark microbenches of the hot paths: graph algorithms on the
// ATT backbone, the programmability extraction, PM / the baselines, the
// FMSSM model build and the simplex on synthetic LPs.
#include <benchmark/benchmark.h>

#include <random>

#include "core/fmssm.hpp"
#include "core/pg.hpp"
#include "core/pm_algorithm.hpp"
#include "core/retroflow.hpp"
#include "core/scenario.hpp"
#include "graph/path_count.hpp"
#include "graph/shortest_path.hpp"
#include "milp/simplex.hpp"
#include "sim/event_queue.hpp"
#include "topo/att.hpp"

namespace {

using namespace pm;

const sdwan::Network& att() {
  static const sdwan::Network net = core::make_att_network();
  return net;
}

const sdwan::FailureState& headline_state() {
  static const sdwan::FailureState state = [] {
    sdwan::FailureScenario sc;
    for (int j = 0; j < att().controller_count(); ++j) {
      const int loc = att().controller(j).location;
      if (loc == 13 || loc == 20) sc.failed.push_back(j);
    }
    return sdwan::FailureState(att(), sc);
  }();
  return state;
}

void BM_DijkstraAtt(benchmark::State& state) {
  const auto& g = att().topology().graph();
  for (auto _ : state) {
    for (int s = 0; s < g.node_count(); ++s) {
      benchmark::DoNotOptimize(graph::dijkstra(g, s));
    }
  }
}
BENCHMARK(BM_DijkstraAtt);

void BM_PathDiversityAtt(benchmark::State& state) {
  const auto& g = att().topology().graph();
  graph::PathCountOptions opts;
  opts.slack = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (int d = 0; d < g.node_count(); ++d) {
      acc += graph::path_diversity(g, 13, d, opts);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PathDiversityAtt)->Arg(1)->Arg(2)->Arg(3);

void BM_NetworkBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_att_network());
  }
}
BENCHMARK(BM_NetworkBuild);

void BM_FailureStateBuild(benchmark::State& state) {
  sdwan::FailureScenario sc{{3, 4}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdwan::FailureState(att(), sc));
  }
}
BENCHMARK(BM_FailureStateBuild);

void BM_PmHeadlineCase(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pm(headline_state()));
  }
}
BENCHMARK(BM_PmHeadlineCase);

void BM_RetroFlowHeadlineCase(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_retroflow(headline_state()));
  }
}
BENCHMARK(BM_RetroFlowHeadlineCase);

void BM_PgHeadlineCase(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_pg(headline_state()));
  }
}
BENCHMARK(BM_PgHeadlineCase);

void BM_FmssmModelBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_fmssm(headline_state()));
  }
}
BENCHMARK(BM_FmssmModelBuild);

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coeff(0.1, 5.0);
  milp::Model m;
  m.set_objective_sense(milp::Objective::kMaximize);
  for (int j = 0; j < n; ++j) {
    m.add_continuous("x" + std::to_string(j), 0.0, 10.0, coeff(rng));
  }
  for (int i = 0; i < n / 2; ++i) {
    std::vector<milp::Term> terms;
    for (int j = 0; j < n; ++j)

      terms.push_back({j, coeff(rng)});
    m.add_constraint("c" + std::to_string(i), std::move(terms),
                     milp::Sense::kLe, 20.0 + coeff(rng));
  }
  for (auto _ : state) {
    const auto r = milp::solve_lp(m);
    if (r.status != milp::LpStatus::kOptimal) state.SkipWithError("LP!");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(20)->Arg(60)->Arg(120);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    long long acc = 0;
    for (int i = 0; i < 10000; ++i) {
      q.schedule_at(static_cast<double>((i * 7919) % 10000),
                    [&acc] { ++acc; });
    }
    q.run();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace

BENCHMARK_MAIN();
