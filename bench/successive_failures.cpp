// successive_failures (extension bench) — the paper notes controllers
// "may fail simultaneously or fail successively" (Sec. I). When a second
// controller dies, an operator can recompute from scratch or extend the
// existing plan. This bench compares both on every ordered pair of
// failures: recovery quality (least/total programmability) and
// reconfiguration churn (remapped switches + flow entries touched).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Successive failures: incremental vs from-scratch PM "
               "(extension) ===\n";

  util::TextTable t({"sequence", "scratch total", "incr total",
                     "scratch least", "incr least", "scratch churn",
                     "incr churn"});
  double churn_scratch_sum = 0.0;
  double churn_incr_sum = 0.0;
  double total_scratch_sum = 0.0;
  double total_incr_sum = 0.0;
  int cases = 0;

  const int m = net.controller_count();
  for (int first = 0; first < m; ++first) {
    for (int second = 0; second < m; ++second) {
      if (second == first) continue;
      // Phase 1: `first` fails alone; recover.
      const sdwan::FailureState st1(net, {{first}});
      const core::RecoveryPlan plan1 = core::run_pm(st1);

      // Phase 2: `second` also fails.
      sdwan::FailureScenario sc2;
      sc2.failed = {std::min(first, second), std::max(first, second)};
      const sdwan::FailureState st2(net, sc2);

      const core::RecoveryPlan scratch = core::run_pm(st2);
      core::PmOptions incremental_opts;
      incremental_opts.seed = &plan1;
      const core::RecoveryPlan incremental =
          core::run_pm(st2, incremental_opts);

      const auto m_scratch = core::evaluate_plan(st2, scratch);
      const auto m_incr = core::evaluate_plan(st2, incremental);
      const auto churn_scratch = core::plan_churn(plan1, scratch);
      const auto churn_incr = core::plan_churn(plan1, incremental);

      const std::string label =
          "C" + std::to_string(net.controller(first).location) + " then C" +
          std::to_string(net.controller(second).location);
      t.add_row({label, std::to_string(m_scratch.total_programmability),
                 std::to_string(m_incr.total_programmability),
                 std::to_string(m_scratch.least_programmability),
                 std::to_string(m_incr.least_programmability),
                 std::to_string(churn_scratch.total()),
                 std::to_string(churn_incr.total())});
      churn_scratch_sum += static_cast<double>(churn_scratch.total());
      churn_incr_sum += static_cast<double>(churn_incr.total());
      total_scratch_sum +=
          static_cast<double>(m_scratch.total_programmability);
      total_incr_sum += static_cast<double>(m_incr.total_programmability);
      ++cases;
    }
  }
  t.print(std::cout);
  const double n = static_cast<double>(cases);
  std::cout << "\nmeans over " << cases << " ordered sequences: "
            << "churn scratch " << bench::num(churn_scratch_sum / n, 0)
            << " vs incremental " << bench::num(churn_incr_sum / n, 0)
            << " reconfigurations; total programmability scratch "
            << bench::num(total_scratch_sum / n, 0) << " vs incremental "
            << bench::num(total_incr_sum / n, 0)
            << "\n(PM is deterministic, so even from-scratch recomputation "
               "preserves most prior decisions; seeding guarantees the "
               "kept entries and never removes them)\n";
  obs::write_profile(obs_options);
  return 0;
}
