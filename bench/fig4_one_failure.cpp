// Fig. 4 — results of one controller failure: all 6 single-failure cases.
//
// Expected shape (Sec. VI-C-1): with one failure the remaining control
// plane has ample capacity, so every algorithm recovers (nearly) all
// recoverable flows with the same programmability; the algorithms only
// separate on per-flow communication overhead, where PG pays for its
// middle layer and PM is lowest.
//
// Flags: --no-optimal/--quick, --optimal-time=<sec>, --csv=<path>,
// --jobs=N (parallel cases; output identical at any N).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  const bench::BenchOptions options =
      bench::parse_bench_options(argc, argv, /*default_time_limit=*/10.0);

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Fig. 4: one controller failure (6 cases) ===\n";
  const auto results = core::run_failure_sweep(net, 1, options.runner());

  for (const auto& r : results) {
    for (const auto& [algo, violations] : r.violations) {
      for (const auto& v : violations) {
        obs::log().error("INVALID PLAN " + r.label + "/" + algo + ": " + v);
      }
    }
  }

  bench::print_failure_figure("Fig. 4", results,
                              /*with_switch_counts=*/false,
                              /*with_controller_loads=*/false);
  bench::print_improvement_summary(results);
  bench::maybe_write_csv(options, "fig4", results);
  obs::write_profile(options.obs);
  return 0;
}
