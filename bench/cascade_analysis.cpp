// cascade_analysis (extension bench) — the cascading-controller-failure
// risk the paper cites from Yao et al. [8]: a capacity-blind takeover can
// overload the adopting controller and knock it over too.
//
// For every 1- and 2-failure case, iterates failure -> recovery ->
// overload-induced failure to a fixed point under two policies:
//   NaiveNearest — whole-switch adoption by the nearest controller with
//                  no capacity check (default OpenFlow master failover);
//   PM           — capacity-respecting fine-grained recovery.
//
// Flags: --tolerance=<fraction> (overload a controller survives),
// --jobs=N (cases simulated in parallel; tables identical at any N).
#include <iostream>

#include "bench_common.hpp"
#include "core/naive.hpp"
#include "sim/cascade.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const double tolerance = args.get_double("tolerance", 0.0);
  const int jobs = util::parse_jobs_flag(args);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Cascading controller failures (extension; cf. [8]) ===\n"
            << "overload tolerance "
            << bench::num(100.0 * tolerance, 0) << "%\n";

  const sim::RecoveryPolicy naive = [](const sdwan::FailureState& st) {
    return core::run_naive_nearest(st);
  };
  const sim::RecoveryPolicy pm = [](const sdwan::FailureState& st) {
    return core::run_pm(st);
  };

  for (int k = 1; k <= 2; ++k) {
    std::cout << "\n--- " << k << " initial failure(s) ---\n";
    util::TextTable t({"case", "naive: induced", "naive: final failed",
                       "naive: peak load", "PM: induced",
                       "PM: peak load"});
    int naive_cascades = 0;
    int pm_cascades = 0;
    const auto scenarios = sdwan::enumerate_failures(net, k);
    std::vector<std::vector<sdwan::ControllerId>> initial_sets;
    initial_sets.reserve(scenarios.size());
    for (const auto& sc : scenarios) initial_sets.push_back(sc.failed);
    // The per-case trials run through the batch API so --jobs spreads
    // them over the pool; results come back in case order.
    const auto naive_runs =
        sim::simulate_cascades(net, initial_sets, naive, tolerance, jobs);
    const auto pm_runs =
        sim::simulate_cascades(net, initial_sets, pm, tolerance, jobs);
    for (std::size_t c = 0; c < scenarios.size(); ++c) {
      const auto& sc = scenarios[c];
      const auto& rn = naive_runs[c];
      const auto& rp = pm_runs[c];
      naive_cascades += rn.induced_failures() > 0 ? 1 : 0;
      pm_cascades += rp.induced_failures() > 0 ? 1 : 0;
      double naive_peak = 0.0;
      for (const auto& round : rn.rounds) {
        naive_peak = std::max(naive_peak, round.max_load_ratio);
      }
      double pm_peak = 0.0;
      for (const auto& round : rp.rounds) {
        pm_peak = std::max(pm_peak, round.max_load_ratio);
      }
      t.add_row({sc.label(net), std::to_string(rn.induced_failures()),
                 std::to_string(rn.final_failed.size()) +
                     (rn.collapsed ? " (collapse)" : ""),
                 bench::pct(naive_peak, 0),
                 std::to_string(rp.induced_failures()),
                 bench::pct(pm_peak, 0)});
    }
    t.print(std::cout);
    std::cout << "cascades: naive " << naive_cascades << ", PM "
              << pm_cascades << " (PM respects Eq. (3), so 0 by "
                 "construction)\n";
  }
  obs::write_profile(obs_options);
  return 0;
}
