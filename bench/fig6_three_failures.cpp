// Fig. 6 — results of three controller failures: all 20 cases.
//
// Expected shape (Sec. VI-C-3): severe capacity scarcity. RetroFlow
// recovers only a fraction of flows; PM stays close to PG; the solver
// behind Optimal no longer closes the gap within its budget on every
// case (the paper reports results for only 12 of 20 cases), which this
// bench reports explicitly.
//
// Flags: --no-optimal/--quick, --optimal-time=<sec>, --csv=<path>,
// --jobs=N (parallel cases; output identical at any N).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  const bench::BenchOptions options =
      bench::parse_bench_options(argc, argv, /*default_time_limit=*/25.0);

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Fig. 6: three controller failures (20 cases) ===\n";
  const auto results = core::run_failure_sweep(net, 3, options.runner());

  for (const auto& r : results) {
    for (const auto& [algo, violations] : r.violations) {
      for (const auto& v : violations) {
        obs::log().error("INVALID PLAN " + r.label + "/" + algo + ": " + v);
      }
    }
  }

  bench::print_failure_figure("Fig. 6", results,
                              /*with_switch_counts=*/true,
                              /*with_controller_loads=*/true);
  bench::print_improvement_summary(results);
  if (options.run_optimal) {
    int proven = 0;
    int available = 0;
    for (const auto& r : results) {
      available += r.optimal_available ? 1 : 0;
      proven += r.optimal_proven ? 1 : 0;
    }
    std::cout << "Optimal: incumbent in " << available << "/20 cases, "
              << "proven optimal in " << proven
              << "/20 — the paper reports Optimal results for 12/20 cases "
                 "(time limit "
              << bench::num(options.optimal_time_limit, 0) << "s)\n";
  }
  bench::maybe_write_csv(options, "fig6", results);
  obs::write_profile(options.obs);
  return 0;
}
