// Fig. 5 — results of two controller failures: all 15 cases.
//
// Expected shape (Sec. VI-C-2): RetroFlow's least programmability is 0
// (unrecovered flows) and its totals trail badly — the headline case
// (13, 20) strands hub switch 13 because its switch-level control cost
// exceeds every controller's residual capacity, while PM recovers it
// fine-grainedly. PM tracks PG/Optimal closely; PG pays the middle-layer
// overhead.
//
// Flags: --no-optimal/--quick, --optimal-time=<sec>, --csv=<path>,
// --jobs=N (parallel cases; output identical at any N).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  const bench::BenchOptions options =
      bench::parse_bench_options(argc, argv, /*default_time_limit=*/20.0);

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Fig. 5: two controller failures (15 cases) ===\n";
  const auto results = core::run_failure_sweep(net, 2, options.runner());

  for (const auto& r : results) {
    for (const auto& [algo, violations] : r.violations) {
      for (const auto& v : violations) {
        obs::log().error("INVALID PLAN " + r.label + "/" + algo + ": " + v);
      }
    }
  }

  bench::print_failure_figure("Fig. 5", results,
                              /*with_switch_counts=*/true,
                              /*with_controller_loads=*/true);
  bench::print_improvement_summary(results);
  if (options.run_optimal) {
    int proven = 0;
    int available = 0;
    for (const auto& r : results) {
      available += r.optimal_available ? 1 : 0;
      proven += r.optimal_proven ? 1 : 0;
    }
    std::cout << "Optimal: incumbent in " << available << "/15 cases, "
              << "proven optimal in " << proven << "/15 (time limit "
              << bench::num(options.optimal_time_limit, 0) << "s)\n";
  }
  bench::maybe_write_csv(options, "fig5", results);
  obs::write_profile(options.obs);
  return 0;
}
