// Shared reporting helpers for the figure-replication benches.
//
// Each bench regenerates one table/figure of the paper as aligned text
// tables (the same series a plot would show) and, with --csv=<path>,
// dumps machine-readable rows for external replotting. CSV files start
// with a `#`-comment run-metadata block (command line, build type,
// wall-clock timestamp) so an exported artifact is self-describing.
#pragma once

#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pm::bench {

inline const std::vector<std::string> kAlgorithms = {"RetroFlow", "PG",
                                                     "PM", "Optimal"};

/// Formats a double with `prec` decimals.
inline std::string num(double v, int prec = 1) {
  return util::format_double(v, prec);
}

inline std::string pct(double fraction, int prec = 1) {
  return util::format_double(100.0 * fraction, prec) + "%";
}

/// "min/q1/med/q3/max" of a box-plot series.
inline std::string box(const util::BoxStats& b) {
  return num(b.min, 0) + "/" + num(b.q1, 0) + "/" + num(b.median, 0) +
         "/" + num(b.q3, 0) + "/" + num(b.max, 0);
}

/// Standard bench options parsed from argv.
struct BenchOptions {
  bool run_optimal = true;
  double optimal_time_limit = 20.0;
  std::optional<std::string> csv_path;
  int retroflow_candidates = 1;
  /// Observability flags (--log-level, --profile-out, ...), applied to
  /// the global logger/profiler by parse_bench_options.
  obs::ObsOptions obs;
  /// The invocation, verbatim, for the CSV metadata block.
  std::string command_line;
  /// --jobs=N: scenario-level parallelism of the sweep. Output is
  /// byte-identical at any value; 1 (the default) runs fully serial.
  int jobs = 1;

  core::RunnerOptions runner() const {
    core::RunnerOptions opts;
    opts.run_optimal = run_optimal;
    opts.optimal.time_limit_seconds = optimal_time_limit;
    opts.jobs = jobs;
    return opts;
  }
};

inline BenchOptions parse_bench_options(int argc, char** argv,
                                        double default_time_limit) {
  util::CliArgs args(argc, argv);
  BenchOptions o;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) o.command_line += ' ';
    o.command_line += argv[i];
  }
  o.obs = obs::parse_obs_flags(args);
  o.optimal_time_limit =
      args.get_double("optimal-time", default_time_limit);
  o.run_optimal = !args.get_bool("no-optimal", false) &&
                  !args.get_bool("quick", false);
  o.jobs = util::parse_jobs_flag(args);
  if (args.has("csv")) o.csv_path = args.get_string("csv", "");
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }
  return o;
}

/// Run metadata stamped into every bench CSV: enough to re-run the
/// exact configuration and to tell apart Release/Debug artifacts. The
/// timestamp is wall-clock (UTC) and therefore the one deliberately
/// non-deterministic line.
struct RunMetadata {
  std::string experiment;
  std::string command_line;
  std::string build_type;
  std::string timestamp_utc;
};

inline RunMetadata make_run_metadata(const BenchOptions& options,
                                     const std::string& experiment) {
  RunMetadata meta;
  meta.experiment = experiment;
  meta.command_line = options.command_line;
#ifdef PM_BUILD_TYPE
  meta.build_type = PM_BUILD_TYPE;
#endif
  std::time_t now = std::time(nullptr);
  char buf[32];
  if (std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ",
                    std::gmtime(&now)) > 0) {
    meta.timestamp_utc = buf;
  }
  return meta;
}

/// Writes the metadata block as `#`-comment lines (readers that reject
/// comments can skip lines starting with '#').
inline void write_metadata_comments(std::ostream& out,
                                    const RunMetadata& meta) {
  out << "# experiment: " << meta.experiment << "\n";
  if (!meta.command_line.empty()) {
    out << "# command: " << meta.command_line << "\n";
  }
  if (!meta.build_type.empty()) {
    out << "# build_type: " << meta.build_type << "\n";
  }
  if (!meta.timestamp_utc.empty()) {
    out << "# generated_at: " << meta.timestamp_utc << "\n";
  }
}

/// Writes per-case/algorithm metric rows as CSV if requested.
inline void maybe_write_csv(const BenchOptions& options,
                            const std::string& experiment,
                            const std::vector<core::CaseResult>& results) {
  if (!options.csv_path) return;
  std::ofstream out(*options.csv_path);
  write_metadata_comments(out, make_run_metadata(options, experiment));
  util::CsvWriter csv(out);
  csv.write_row({"experiment", "case", "algorithm", "least_programmability",
                 "total_programmability", "recovered_flow_pct",
                 "recovered_switches", "offline_switches",
                 "used_control_resource", "available_control_resource",
                 "per_flow_overhead_ms", "solve_seconds"});
  for (const auto& r : results) {
    for (const auto& [name, m] : r.metrics) {
      csv.write_row({experiment, r.label, name,
                     std::to_string(m.least_programmability),
                     std::to_string(m.total_programmability),
                     num(100.0 * m.recovered_flow_fraction, 3),
                     std::to_string(m.recovered_switch_count),
                     std::to_string(m.offline_switch_count),
                     num(m.used_control_resource, 0),
                     num(m.available_control_resource, 0),
                     num(m.per_flow_overhead_ms, 4),
                     num(m.solve_seconds, 6)});
    }
  }
  std::cout << "\n[csv written to " << *options.csv_path << "]\n";
}

/// Prints the standard sub-figure tables shared by Figs. 4, 5 and 6.
/// `fig` is e.g. "Fig. 5" and `subfigs` selects which panels exist.
inline void print_failure_figure(const std::string& fig,
                                 const std::vector<core::CaseResult>& results,
                                 bool with_switch_counts,
                                 bool with_controller_loads) {
  using util::TextTable;

  auto metric_or = [&](const core::CaseResult& r, const std::string& algo)
      -> const core::RecoveryMetrics* {
    const auto it = r.metrics.find(algo);
    return it == r.metrics.end() ? nullptr : &it->second;
  };

  {  // (a) programmability of recovered flows (box-plot series)
    std::cout << "\n" << fig
              << "(a) Path programmability of recovered flows "
                 "(min/q1/median/q3/max; higher = better)\n";
    TextTable t({"case", "RetroFlow", "PG", "PM", "Optimal"});
    for (const auto& r : results) {
      std::vector<std::string> row{r.label};
      for (const auto& algo : kAlgorithms) {
        const auto* m = metric_or(r, algo);
        row.push_back(m ? box(m->programmability) : "-");
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  {  // (b) total programmability normalized to RetroFlow
    std::cout << "\n" << fig
              << "(b) Total path programmability, % of RetroFlow "
                 "(higher = better)\n";
    TextTable t({"case", "RetroFlow", "PG", "PM", "Optimal"});
    for (const auto& r : results) {
      const auto* retro = metric_or(r, "RetroFlow");
      const double base =
          retro == nullptr ? 0.0
                           : static_cast<double>(retro->total_programmability);
      std::vector<std::string> row{r.label};
      for (const auto& algo : kAlgorithms) {
        const auto* m = metric_or(r, algo);
        if (m == nullptr) {
          row.push_back("-");
        } else if (base <= 0.0) {
          row.push_back("inf");
        } else {
          row.push_back(
              num(100.0 * static_cast<double>(m->total_programmability) /
                  base, 0) + "%");
        }
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  {  // (c) % recovered programmable flows
    std::cout << "\n" << fig
              << "(c) Recovered programmable flows (% of recoverable "
                 "offline flows; higher = better)\n";
    TextTable t({"case", "RetroFlow", "PG", "PM", "Optimal"});
    for (const auto& r : results) {
      std::vector<std::string> row{r.label};
      for (const auto& algo : kAlgorithms) {
        const auto* m = metric_or(r, algo);
        row.push_back(m ? pct(m->recovered_flow_fraction) : "-");
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  if (with_switch_counts) {  // (d) recovered switches
    std::cout << "\n" << fig
              << "(d) Recovered offline switches (higher = better)\n";
    TextTable t({"case", "offline", "RetroFlow", "PG", "PM", "Optimal"});
    for (const auto& r : results) {
      std::vector<std::string> row{r.label};
      bool first = true;
      for (const auto& algo : kAlgorithms) {
        const auto* m = metric_or(r, algo);
        if (first) {
          row.push_back(
              m ? std::to_string(m->offline_switch_count) : "-");
          first = false;
        }
        row.push_back(m ? std::to_string(m->recovered_switch_count) : "-");
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  if (with_controller_loads) {  // (e) control resource usage
    std::cout << "\n" << fig
              << "(e) Control resource used / available, per algorithm\n";
    TextTable t({"case", "available", "RetroFlow", "PG", "PM", "Optimal"});
    for (const auto& r : results) {
      std::vector<std::string> row{r.label};
      bool first = true;
      for (const auto& algo : kAlgorithms) {
        const auto* m = metric_or(r, algo);
        if (first) {
          row.push_back(m ? num(m->available_control_resource, 0) : "-");
          first = false;
        }
        row.push_back(m ? num(m->used_control_resource, 0) : "-");
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  {  // (f) per-flow communication overhead
    std::cout << "\n" << fig
              << (with_switch_counts ? "(f)" : "(d)")
              << " Per-flow communication overhead in ms "
                 "(lower = better)\n";
    TextTable t({"case", "RetroFlow", "PG", "PM", "Optimal"});
    for (const auto& r : results) {
      std::vector<std::string> row{r.label};
      for (const auto& algo : kAlgorithms) {
        const auto* m = metric_or(r, algo);
        row.push_back(m ? num(m->per_flow_overhead_ms, 2) : "-");
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }
}

/// Summary line for the headline claim of a sweep.
inline void print_improvement_summary(
    const std::vector<core::CaseResult>& results) {
  double best = 0.0;
  std::string best_case;
  double worst = 1e18;
  for (const auto& r : results) {
    const auto pm = r.metrics.find("PM");
    const auto retro = r.metrics.find("RetroFlow");
    if (pm == r.metrics.end() || retro == r.metrics.end()) continue;
    if (retro->second.total_programmability <= 0) continue;
    const double ratio =
        static_cast<double>(pm->second.total_programmability) /
        static_cast<double>(retro->second.total_programmability);
    if (ratio > best) {
      best = ratio;
      best_case = r.label;
    }
    worst = std::min(worst, ratio);
  }
  if (best > 0.0) {
    std::cout << "\nPM total programmability vs RetroFlow: from "
              << num(100.0 * worst, 0) << "% to " << num(100.0 * best, 0)
              << "% (best case " << best_case << ")\n";
  }
}

}  // namespace pm::bench
