// Ablation bench (extension beyond the paper): quantifies the design
// choices DESIGN.md calls out, on the two-failure sweep.
//
//   1. PM stage 2 (utilization pass) on/off — the paper's third design
//      consideration ("fully utilize controllers' control resource").
//   2. PM switch-selection rule: most-least-programmability-flows (the
//      paper's line 12) vs. first-viable switch.
//   3. RetroFlow controller candidates 1..4 — how much of PM's advantage
//      is granularity vs. merely smarter switch packing.
//   4. Path-diversity policy (bounded simple paths with slack 1/2,
//      shortest-path DAG, next-hop count) — substitution 3 in DESIGN.md.
//   5. lambda sweep for the combined objective of problem (P).
//
// Flags: --csv=<path>.
#include <iostream>

#include "bench_common.hpp"
#include "core/fmssm.hpp"
#include "milp/branch_bound.hpp"

namespace {

using namespace pm;

struct SweepStats {
  double mean_least = 0.0;
  double mean_total = 0.0;
  double mean_recovered = 0.0;
  double mean_overhead = 0.0;
};

template <typename PlanFn>
SweepStats sweep(const sdwan::Network& net, int k, PlanFn&& make_plan) {
  SweepStats s;
  const auto scenarios = sdwan::enumerate_failures(net, k);
  for (const auto& sc : scenarios) {
    const sdwan::FailureState state(net, sc);
    const core::RecoveryPlan plan = make_plan(state);
    const auto m = core::evaluate_plan(state, plan);
    s.mean_least += static_cast<double>(m.least_programmability);
    s.mean_total += static_cast<double>(m.total_programmability);
    s.mean_recovered += m.recovered_flow_fraction;
    s.mean_overhead += m.per_flow_overhead_ms;
  }
  const double n = static_cast<double>(scenarios.size());
  s.mean_least /= n;
  s.mean_total /= n;
  s.mean_recovered /= n;
  s.mean_overhead /= n;
  return s;
}

void add_row(util::TextTable& t, const std::string& name,
             const SweepStats& s) {
  t.add_row({name, bench::num(s.mean_least, 2), bench::num(s.mean_total, 0),
             bench::pct(s.mean_recovered), bench::num(s.mean_overhead, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  std::cout << "=== Ablation: PM design choices (two-failure sweep means) "
               "===\n";
  const sdwan::Network net = core::make_att_network();

  {
    std::cout << "\n[1] PM utilization pass (Algorithm 1 lines 42-50)\n";
    util::TextTable t({"variant", "mean least", "mean total",
                       "mean recovered", "mean overhead ms"});
    add_row(t, "PM (full)", sweep(net, 2, [](const auto& st) {
              return core::run_pm(st);
            }));
    add_row(t, "PM w/o stage 2", sweep(net, 2, [](const auto& st) {
              return core::run_pm(st, {.skip_utilization_pass = true});
            }));
    t.print(std::cout);
  }

  {
    std::cout << "\n[2] PM switch-selection rule (line 12)\n";
    util::TextTable t({"variant", "mean least", "mean total",
                       "mean recovered", "mean overhead ms"});
    add_row(t, "most least-pro flows", sweep(net, 2, [](const auto& st) {
              return core::run_pm(st);
            }));
    add_row(t, "first viable switch", sweep(net, 2, [](const auto& st) {
              return core::run_pm(st, {.greedy_switch_selection = false});
            }));
    t.print(std::cout);
  }

  {
    std::cout << "\n[3] RetroFlow nearest-controller candidates\n";
    util::TextTable t({"variant", "mean least", "mean total",
                       "mean recovered", "mean overhead ms"});
    for (int c = 1; c <= 4; ++c) {
      add_row(t, "candidates=" + std::to_string(c),
              sweep(net, 2, [c](const auto& st) {
                return core::run_retroflow(st,
                                           {.controller_candidates = c});
              }));
    }
    add_row(t, "PM (reference)", sweep(net, 2, [](const auto& st) {
              return core::run_pm(st);
            }));
    t.print(std::cout);
  }

  {
    std::cout << "\n[4] Path-diversity policy (p_i^l definition)\n";
    util::TextTable t({"policy", "mean least", "mean total",
                       "mean recovered", "mean overhead ms"});
    struct Policy {
      std::string name;
      graph::PathCountOptions options;
    };
    const std::vector<Policy> policies = {
        {"bounded, slack 1, cap 4 (default)",
         {graph::PathCountPolicy::kBoundedSimplePaths, 1, 4}},
        {"bounded, slack 1, uncapped",
         {graph::PathCountPolicy::kBoundedSimplePaths, 1, 1'000'000}},
        {"bounded, slack 2, uncapped",
         {graph::PathCountPolicy::kBoundedSimplePaths, 2, 1'000'000}},
        {"shortest-path DAG",
         {graph::PathCountPolicy::kShortestPathDag, 1, 1'000'000}},
        {"next-hop count",
         {graph::PathCountPolicy::kNextHopCount, 1, 1'000'000}},
    };
    for (const auto& p : policies) {
      sdwan::NetworkConfig cfg;
      cfg.controller_capacity = 0.0;  // default ATT capacity
      cfg.path_count = p.options;
      const sdwan::Network variant = core::make_att_network(cfg);
      add_row(t, p.name, sweep(variant, 2, [](const auto& st) {
                return core::run_pm(st);
              }));
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n[5] lambda sweep, case (13, 20): solver objective "
                 "trade-off (20s budget per point)\n";
    util::TextTable t({"lambda", "least r", "total", "status"});
    sdwan::FailureScenario sc;
    for (int j = 0; j < net.controller_count(); ++j) {
      const int loc = net.controller(j).location;
      if (loc == 13 || loc == 20) sc.failed.push_back(j);
    }
    const sdwan::FailureState state(net, sc);
    for (const double lambda : {1e-6, 1e-4, 1e-2, 1.0}) {
      core::OptimalOptions opts;
      opts.fmssm.lambda = lambda;
      opts.time_limit_seconds = 20.0;
      const auto outcome = core::run_optimal(state, opts);
      if (!outcome.plan) {
        t.add_row({bench::num(lambda, 6), "-", "-",
                   milp::to_string(outcome.status)});
        continue;
      }
      const auto m = core::evaluate_plan(state, *outcome.plan);
      t.add_row({bench::num(lambda, 6),
                 std::to_string(m.least_programmability),
                 std::to_string(m.total_programmability),
                 milp::to_string(outcome.status)});
    }
    t.print(std::cout);
    std::cout << "(small lambda preserves the two-stage priority of r; "
                 "large lambda trades balance for raw total)\n";
  }
  obs::write_profile(obs_options);
  return 0;
}
