// service_load (extension bench) — open-loop load against the recovery
// service, reporting throughput and latency percentiles cold (every
// request a cache miss) vs warm (every request a hit).
//
// By default it spawns the whole stack in-process — Engine resident on
// the ATT backbone, svc::Server on an ephemeral loopback port — so the
// measurement covers the real service path: TCP, JSONL parse, admission
// control, batch dispatch, plan (de)serialization. Point it at an
// external server with --port.
//
// The request set is every C(M, k) failure combination for k=1..max_k
// crossed with --algorithms, issued exactly once in the cold phase and
// --repeats more times in the warm phase. The bench asserts that every
// warm `result` is byte-identical to its cold counterpart — the cache
// contract the PR 5 acceptance criteria pin — and exits 1 when any
// response errs or any payload differs.
//
// Usage: ./build/bench/service_load [--connections=1] [--jobs=1]
//   [--rate=0] [--repeats=3] [--algorithms=pm] [--max-k=3]
//   [--port=0] [--host=127.0.0.1] [--json-out=BENCH_pr5.json]
//   [--log-level=warn]
//
// --rate=R schedules arrivals open-loop at R requests/s (latency then
// includes time spent waiting behind the schedule); --rate=0 runs
// closed-loop, each connection firing as fast as responses return.
// SIGINT flushes the phases finished so far and exits cleanly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "obs/obs.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/shutdown.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseStats {
  std::string name;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

/// One line per request of the phase's schedule; `result` is the
/// response's result member re-serialized compactly (the byte-identity
/// probe), empty on error.
struct Exchange {
  double latency_ms = 0.0;
  bool ok = false;
  bool cached = false;
  std::string key;
  std::string result;
};

/// Issues `schedule[i]` (an index into `lines`) for every i, spread
/// across `connections` client connections. Open-loop when rate > 0.
std::vector<Exchange> run_phase(const std::string& host, int port,
                                const std::vector<std::string>& lines,
                                const std::vector<std::size_t>& schedule,
                                int connections, double rate,
                                double& phase_seconds) {
  std::vector<Exchange> exchanges(schedule.size());
  std::atomic<std::size_t> next{0};
  const Clock::time_point phase_start = Clock::now();

  auto worker = [&] {
    pm::svc::Client client(host, port);
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= schedule.size() || pm::util::shutdown_requested()) return;
      Clock::time_point issue = Clock::now();
      if (rate > 0.0) {
        // Open-loop: request i is due at phase_start + i/rate; latency
        // is measured from the scheduled arrival, so a server that
        // cannot keep up shows the queueing delay it causes.
        const auto due =
            phase_start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  static_cast<double>(i) / rate));
        std::this_thread::sleep_until(due);
        issue = due;
      }
      Exchange& ex = exchanges[i];
      try {
        const std::string response =
            client.roundtrip_line(lines[schedule[i]]);
        ex.latency_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - issue)
                            .count();
        const pm::util::JsonValue doc =
            pm::util::JsonValue::parse(response);
        ex.ok = doc.at("ok").as_bool();
        if (ex.ok) {
          ex.cached = doc.at("cached").as_bool();
          ex.key = doc.at("key").as_string();
          ex.result = doc.at("result").to_string(0);
        }
      } catch (const std::exception& e) {
        ex.ok = false;
        pm::obs::log().warn(std::string("request failed: ") + e.what());
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  phase_seconds =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  return exchanges;
}

PhaseStats summarize(const std::string& name,
                     const std::vector<Exchange>& exchanges,
                     double seconds) {
  PhaseStats s;
  s.name = name;
  s.seconds = seconds;
  std::vector<double> latencies;
  latencies.reserve(exchanges.size());
  for (const Exchange& ex : exchanges) {
    ++s.requests;
    if (!ex.ok) {
      ++s.errors;
      continue;
    }
    latencies.push_back(ex.latency_ms);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    s.p50_ms = pm::util::quantile_sorted(latencies, 0.50);
    s.p90_ms = pm::util::quantile_sorted(latencies, 0.90);
    s.p99_ms = pm::util::quantile_sorted(latencies, 0.99);
    s.mean_ms = pm::util::mean(latencies);
  }
  if (seconds > 0.0) {
    s.throughput_rps = static_cast<double>(s.requests) / seconds;
  }
  return s;
}

pm::util::JsonValue phase_to_json(const PhaseStats& s) {
  pm::util::JsonValue out = pm::util::JsonValue::object();
  out["requests"] =
      pm::util::JsonValue(static_cast<std::int64_t>(s.requests));
  out["errors"] = pm::util::JsonValue(static_cast<std::int64_t>(s.errors));
  out["seconds"] = pm::util::JsonValue(s.seconds);
  out["throughput_rps"] = pm::util::JsonValue(s.throughput_rps);
  out["p50_ms"] = pm::util::JsonValue(s.p50_ms);
  out["p90_ms"] = pm::util::JsonValue(s.p90_ms);
  out["p99_ms"] = pm::util::JsonValue(s.p99_ms);
  out["mean_ms"] = pm::util::JsonValue(s.mean_ms);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string host = args.get_string("host", "127.0.0.1");
  int port = static_cast<int>(args.get_int("port", 0));
  // One connection by default: the cold/warm latency comparison needs
  // an uncontended path (on small machines extra client+connection
  // thread pairs just measure the scheduler). Raise it for throughput.
  const int connections =
      std::max(1, static_cast<int>(args.get_int("connections", 1)));
  const double rate = args.get_double("rate", 0.0);
  const int repeats =
      std::max(1, static_cast<int>(args.get_int("repeats", 3)));
  const int max_k = std::max(1, static_cast<int>(args.get_int("max-k", 3)));
  const std::string algorithms_spec = args.get_string("algorithms", "pm");
  const std::string json_out = args.get_string("json-out", "");
  const int jobs = util::parse_jobs_flag(args);
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }
  util::install_shutdown_handler();

  // In-process stack unless an external --port was given.
  std::unique_ptr<svc::Engine> engine;
  std::unique_ptr<svc::Server> server;
  const sdwan::Network net = core::make_att_network();
  if (port == 0) {
    svc::EngineConfig engine_config;
    engine_config.jobs = jobs;
    engine = std::make_unique<svc::Engine>(net, engine_config);
    svc::ServerConfig server_config;
    server_config.port = 0;
    server_config.max_queue = 4 * connections + 16;
    server = std::make_unique<svc::Server>(*engine, server_config);
    server->start();
    port = server->port();
  }

  // Request set: every C(M, k) combination, k = 1..max_k, per algorithm.
  std::vector<std::string> lines;
  for (const std::string& algorithm :
       util::split(algorithms_spec, ',')) {
    for (int k = 1; k <= max_k && k < net.controller_count(); ++k) {
      for (const auto& scenario : sdwan::enumerate_failures(net, k)) {
        util::JsonValue req = util::JsonValue::object();
        req["verb"] = util::JsonValue("solve");
        util::JsonValue failed = util::JsonValue::array();
        for (const sdwan::ControllerId j : scenario.failed) {
          failed.push_back(util::JsonValue(j));
        }
        req["failed"] = std::move(failed);
        req["algorithm"] = util::JsonValue(algorithm);
        lines.push_back(req.to_string(0));
      }
    }
  }

  std::cout << "=== Service load: " << lines.size()
            << " distinct requests, " << connections
            << " connection(s), jobs=" << jobs << ", rate="
            << (rate > 0.0 ? util::format_double(rate, 0) + "/s"
                           : std::string("closed-loop"))
            << " ===\n";

  // Cold: each distinct request once (a fresh server misses on all).
  std::vector<std::size_t> cold_schedule(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) cold_schedule[i] = i;
  double cold_seconds = 0.0;
  const std::vector<Exchange> cold = run_phase(
      host, port, lines, cold_schedule, connections, rate, cold_seconds);

  // Warm: the same set `repeats` more times (all hits).
  std::vector<std::size_t> warm_schedule;
  warm_schedule.reserve(lines.size() * static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      warm_schedule.push_back(i);
    }
  }
  double warm_seconds = 0.0;
  std::vector<Exchange> warm;
  if (!util::shutdown_requested()) {
    warm = run_phase(host, port, lines, warm_schedule, connections, rate,
                     warm_seconds);
  }

  const PhaseStats cold_stats = summarize("cold", cold, cold_seconds);
  const PhaseStats warm_stats = summarize("warm", warm, warm_seconds);

  // Byte-identity: every warm result must equal the cold result of the
  // same request; every warm response must be a cache hit.
  bool payloads_identical = !warm.empty();
  std::size_t warm_hits = 0;
  for (std::size_t i = 0; i < warm.size(); ++i) {
    const Exchange& w = warm[i];
    const Exchange& c = cold[warm_schedule[i]];
    if (!w.ok || !c.ok || w.result != c.result) {
      payloads_identical = false;
    }
    if (w.cached) ++warm_hits;
  }

  util::TextTable t({"phase", "requests", "errors", "rps", "p50 ms",
                     "p90 ms", "p99 ms", "mean ms"});
  for (const PhaseStats* s : {&cold_stats, &warm_stats}) {
    t.add_row({s->name, std::to_string(s->requests),
               std::to_string(s->errors),
               util::format_double(s->throughput_rps, 1),
               util::format_double(s->p50_ms, 3),
               util::format_double(s->p90_ms, 3),
               util::format_double(s->p99_ms, 3),
               util::format_double(s->mean_ms, 3)});
  }
  t.print(std::cout);

  const double speedup_p50 =
      warm_stats.p50_ms > 0.0 ? cold_stats.p50_ms / warm_stats.p50_ms
                              : 0.0;
  const double speedup_mean =
      warm_stats.mean_ms > 0.0 ? cold_stats.mean_ms / warm_stats.mean_ms
                               : 0.0;
  std::cout << "\nwarm speedup: " << util::format_double(speedup_p50, 1)
            << "x p50, " << util::format_double(speedup_mean, 1)
            << "x mean; warm cache hits " << warm_hits << "/"
            << warm.size() << "; payloads "
            << (payloads_identical ? "byte-identical" : "DIFFER") << "\n";
  if (util::shutdown_requested()) {
    std::cout << "[interrupted — partial results flushed]\n";
  }

  if (!json_out.empty()) {
    util::JsonValue doc = util::JsonValue::object();
    doc["benchmark"] = util::JsonValue("pr5_service_load");
#ifdef PM_BUILD_TYPE
    doc["build_type"] = util::JsonValue(PM_BUILD_TYPE);
#endif
    doc["distinct_requests"] =
        util::JsonValue(static_cast<std::int64_t>(lines.size()));
    doc["connections"] = util::JsonValue(connections);
    doc["jobs"] = util::JsonValue(jobs);
    doc["rate_rps"] = util::JsonValue(rate);
    doc["repeats"] = util::JsonValue(repeats);
    doc["cold"] = phase_to_json(cold_stats);
    doc["warm"] = phase_to_json(warm_stats);
    doc["speedup_p50"] = util::JsonValue(speedup_p50);
    doc["speedup_mean"] = util::JsonValue(speedup_mean);
    doc["warm_hits"] =
        util::JsonValue(static_cast<std::int64_t>(warm_hits));
    doc["payloads_identical"] = util::JsonValue(payloads_identical);
    std::ofstream out(json_out);
    out << doc.to_string(2) << "\n";
    std::cout << "[json written to " << json_out << "]\n";
  }

  if (server) server->stop();
  const bool ok = payloads_identical && cold_stats.errors == 0 &&
                  warm_stats.errors == 0 && !util::shutdown_requested();
  return ok ? 0 : 1;
}
