// Regenerates the paper's Table III: the default relationship between
// controllers, switches and the number of flows per switch on the ATT
// backbone — printed as measured-vs-paper so the calibration of the
// synthesized topology (DESIGN.md, substitution 1) is auditable.
#include <iostream>

#include "bench_common.hpp"
#include "sdwan/failure.hpp"
#include "topo/att.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const bool verbose = args.get_bool("verbose", false);

  const sdwan::Network net = core::make_att_network();
  const auto paper = topo::att_paper_flow_counts();

  std::cout << "Table III — controllers, switches, and flows per switch\n"
            << "(topology: " << net.topology().name() << ", "
            << net.topology().node_count() << " nodes, "
            << 2 * net.topology().link_count() << " directed links, "
            << net.flow_count() << " flows, capacity "
            << bench::num(net.controller(0).capacity, 0)
            << " per controller)\n";

  util::TextTable t({"controller", "switch", "city", "flows (measured)",
                     "flows (paper)"});
  for (int j = 0; j < net.controller_count(); ++j) {
    const auto& c = net.controller(j);
    for (sdwan::SwitchId s : c.domain) {
      t.add_row({c.name, std::to_string(s), net.topology().node(s).label,
                 std::to_string(net.flow_count_at(s)),
                 std::to_string(paper[static_cast<std::size_t>(s)])});
    }
  }
  t.print(std::cout);

  std::cout << "\nDomain loads and residual capacities\n";
  util::TextTable d({"controller", "domain size", "normal load",
                     "residual capacity"});
  for (int j = 0; j < net.controller_count(); ++j) {
    const auto& c = net.controller(j);
    d.add_row({c.name, std::to_string(c.domain.size()),
               bench::num(net.normal_load(j), 0),
               bench::num(c.capacity - net.normal_load(j), 0)});
  }
  d.print(std::cout);

  if (verbose) {
    std::cout << "\nPer-switch delay to each controller (ms)\n";
    std::vector<std::string> head{"switch"};
    for (int j = 0; j < net.controller_count(); ++j) {
      head.push_back(net.controller(j).name);
    }
    util::TextTable dd(head);
    for (int s = 0; s < net.switch_count(); ++s) {
      std::vector<std::string> row{std::to_string(s)};
      for (int j = 0; j < net.controller_count(); ++j) {
        row.push_back(bench::num(net.delay_ms(s, j), 2));
      }
      dd.add_row(row);
    }
    dd.print(std::cout);
  }
  return 0;
}
