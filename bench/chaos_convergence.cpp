// chaos_convergence — convergence predictability of the recovery
// protocol under channel faults: a loss-rate (0–20%) × delay-jitter
// sweep over a fixed two-controller-failure scenario, every cell run
// with the same seeded fault sequence so the table is reproducible
// bit-for-bit across runs and machines.
//
// For each (loss, jitter) cell the harness reports detection and
// convergence times, the retransmission/duplicate-suppression work the
// reliable-delivery layer performed, spurious detector firings, and the
// degradation count — the paper's "predictable recovery" claim, extended
// to a lossy in-band control channel.
//
// Usage: ./build/bench/chaos_convergence [--seed=42] [--dup=0.02]
//        [--until=20000] [--csv=chaos.csv] [--json] [--jobs=N]
//        [--mid-recovery] [--mid-csv=mid.csv]
//        [--trace-out=t.json] [--metrics-out=m.prom] [--log-level=info]
//
// --jobs=N runs the sweep cells in parallel. Every cell owns its seeded
// fault stream and its own simulation, so the table/CSV/JSON outputs stay
// byte-identical at any job count.
//
// The observability flags apply to the harshest cell of the sweep
// (highest loss + jitter) so the exported trace shows the
// reliable-delivery machinery at its busiest; the sweep table, CSV and
// JSON outputs are byte-identical with or without them.
//
// --mid-recovery appends a second sweep that kills a SECOND controller
// 350 ms after the first failure — inside the recovery window — once
// targeting the coordinator and once a wave-1 adopter, with the
// transactional machinery (epoch guard, failover/replan, rollback)
// enabled. The default table/CSV/JSON above are unchanged by the flag.
#include <iostream>
#include <vector>

#include "core/pm_algorithm.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/shutdown.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"

#include <fstream>
#include <optional>
#include <string>

namespace {

struct Cell {
  double loss = 0.0;
  double jitter_ms = 0.0;
  pm::ctrl::SimulationReport report;
  /// False when the cell was skipped by a shutdown request; skipped
  /// cells are dropped from every output (partial flush, never zeros).
  bool computed = true;
};

pm::ctrl::SimulationReport run_cell(const pm::sdwan::Network& net,
                                    double loss, double jitter_ms,
                                    double dup, std::uint64_t seed,
                                    double until_ms,
                                    const pm::obs::ObsOptions* obs) {
  pm::ctrl::ControllerConfig config;
  // Hysteresis sized for the sweep's jitter range: three consecutive
  // missed detector checks before suspecting a peer.
  config.suspicion_checks = 3;
  // The legacy sweep benchmarks the pre-transactional protocol and its
  // numbers are pinned bit-for-bit across commits; under 20% loss the
  // epoch guard (correctly) discards late prior-wave acks, which shifts
  // convergence, so transactional enforcement is exercised by the
  // --mid-recovery sweep below instead.
  config.transactional = false;
  pm::ctrl::ControlSimulation simulation(
      net,
      [](const pm::sdwan::FailureState& state,
         const pm::core::RecoveryPlan* previous) {
        pm::core::PmOptions opts;
        opts.seed = previous;
        return pm::core::run_pm(state, opts);
      },
      config);
  pm::ctrl::ChannelFaultModel faults;
  faults.seed = seed;
  faults.drop_probability = loss;
  faults.duplicate_probability = dup;
  faults.jitter_ms = jitter_ms;
  simulation.set_fault_model(faults);
  if (obs != nullptr) {
    simulation.observability().tracer.set_enabled(obs->tracing_requested());
    simulation.observability().detailed_metrics = obs->detailed_requested();
  }
  simulation.fail_controller_at(3, 500.0);   // C13
  simulation.fail_controller_at(4, 3000.0);  // C20
  const pm::ctrl::SimulationReport report = simulation.run(until_ms);
  if (obs != nullptr) {
    pm::obs::write_outputs(*obs, simulation.observability());
  }
  return report;
}

struct KillCell {
  double loss = 0.0;
  double jitter_ms = 0.0;
  std::string kill;
  pm::ctrl::SimulationReport report;
  bool computed = true;
};

// One mid-recovery cell: controller 3 (C13) fails at t=500; the kill
// target fails at t=850, squarely inside the first recovery wave. Runs
// with transactional enforcement ON — this sweep measures the
// failover/replan/rollback machinery the legacy sweep deliberately
// pins off.
pm::ctrl::SimulationReport run_kill_cell(const pm::sdwan::Network& net,
                                         double loss, double jitter_ms,
                                         double dup, std::uint64_t seed,
                                         double until_ms,
                                         pm::sdwan::ControllerId kill) {
  pm::ctrl::ControllerConfig config;
  config.suspicion_checks = 3;
  pm::ctrl::ControlSimulation simulation(
      net,
      [](const pm::sdwan::FailureState& state,
         const pm::core::RecoveryPlan* previous) {
        pm::core::PmOptions opts;
        opts.seed = previous;
        return pm::core::run_pm(state, opts);
      },
      config);
  pm::ctrl::ChannelFaultModel faults;
  faults.seed = seed;
  faults.drop_probability = loss;
  faults.duplicate_probability = dup;
  faults.jitter_ms = jitter_ms;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);  // C13
  simulation.fail_controller_at(kill, 850.0);
  return simulation.run(until_ms);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double dup = args.get_double("dup", 0.02);
  const double until = args.get_double("until", 20000.0);
  std::optional<std::string> csv_path;
  if (args.has("csv")) csv_path = args.get_string("csv", "");
  const bool as_json = args.get_bool("json", false);
  const bool mid_recovery = args.get_bool("mid-recovery", false);
  std::optional<std::string> mid_csv_path;
  if (args.has("mid-csv")) mid_csv_path = args.get_string("mid-csv", "");
  const int jobs = util::parse_jobs_flag(args);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }
  // SIGINT/SIGTERM skip the remaining cells and flush what finished —
  // a long sweep interrupted at cell 12 still leaves a usable partial
  // table/CSV instead of nothing.
  util::install_shutdown_handler();

  const std::vector<double> losses = {0.0, 0.02, 0.05, 0.10, 0.20};
  const std::vector<double> jitters = {0.0, 5.0, 20.0};

  const sdwan::Network net = core::make_att_network();
  std::vector<Cell> cells;
  for (const double jitter : jitters) {
    for (const double loss : losses) {
      cells.push_back({loss, jitter, {}});
    }
  }
  // Each cell is a self-contained simulation with its own seeded fault
  // stream, so cells fan out across the pool; parallel_map returns them
  // in sweep order, keeping every downstream table/CSV byte-identical.
  util::TaskPool pool(jobs);
  cells = pool.parallel_map(cells, [&](std::size_t, const Cell& c) -> Cell {
    if (util::shutdown_requested()) return {c.loss, c.jitter_ms, {}, false};
    // The observability sinks ride on the last (harshest) cell.
    const bool last =
        c.jitter_ms == jitters.back() && c.loss == losses.back();
    return {c.loss, c.jitter_ms,
            run_cell(net, c.loss, c.jitter_ms, dup, seed, until,
                     last ? &obs_options : nullptr)};
  });
  const std::size_t total_cells = cells.size();
  std::erase_if(cells, [](const Cell& c) { return !c.computed; });
  const bool interrupted = util::shutdown_requested();
  if (interrupted) {
    std::cout << "[interrupted: flushing " << cells.size() << " of "
              << total_cells << " cells]\n";
  }

  std::cout << "=== Chaos sweep: convergence under loss x jitter "
               "(two controller failures, seed "
            << seed << ") ===\n\n";
  util::TextTable t({"loss", "jitter_ms", "detected_ms", "converged_ms",
                     "retx", "dups_supp", "spurious", "degraded",
                     "deliverable"});
  for (const auto& c : cells) {
    t.add_row({util::format_double(100.0 * c.loss, 0) + "%",
               util::format_double(c.jitter_ms, 0),
               util::format_double(c.report.detected_at.value_or(-1.0), 1),
               util::format_double(c.report.converged_at.value_or(-1.0), 1),
               std::to_string(c.report.retransmissions),
               std::to_string(c.report.duplicates_suppressed),
               std::to_string(c.report.spurious_detections),
               std::to_string(c.report.degraded_flows),
               c.report.all_flows_deliverable ? "yes" : "NO"});
  }
  t.print(std::cout);

  bool all_deliverable = true;
  for (const auto& c : cells) {
    all_deliverable &= c.report.all_flows_deliverable;
  }
  std::cout << "\n"
            << (all_deliverable
                    ? "every cell converged with all flows deliverable"
                    : "WARNING: some cells broke delivery")
            << "\n";

  if (csv_path) {
    std::ofstream out(*csv_path);
    util::CsvWriter csv(out);
    csv.write_row({"loss", "jitter_ms", "detected_ms", "converged_ms",
                   "messages_sent", "injected_drops",
                   "injected_duplicates", "retransmissions",
                   "duplicates_suppressed", "spurious_detections",
                   "degraded_flows", "degraded_switches",
                   "all_flows_deliverable"});
    for (const auto& c : cells) {
      csv.write_row({util::format_double(c.loss, 2),
                     util::format_double(c.jitter_ms, 1),
                     util::format_double(c.report.detected_at.value_or(-1.0),
                                         3),
                     util::format_double(
                         c.report.converged_at.value_or(-1.0), 3),
                     std::to_string(c.report.messages_sent),
                     std::to_string(c.report.injected_drops),
                     std::to_string(c.report.injected_duplicates),
                     std::to_string(c.report.retransmissions),
                     std::to_string(c.report.duplicates_suppressed),
                     std::to_string(c.report.spurious_detections),
                     std::to_string(c.report.degraded_flows),
                     std::to_string(c.report.degraded_switches),
                     c.report.all_flows_deliverable ? "true" : "false"});
    }
    std::cout << "[csv written to " << *csv_path << "]\n";
  }
  if (as_json) {
    util::JsonValue rows = util::JsonValue::array();
    for (const auto& c : cells) {
      util::JsonValue row = util::JsonValue::object();
      row["loss"] = c.loss;
      row["jitter_ms"] = c.jitter_ms;
      row["detected_ms"] = c.report.detected_at.value_or(-1.0);
      row["converged_ms"] = c.report.converged_at.value_or(-1.0);
      row["retransmissions"] =
          static_cast<std::int64_t>(c.report.retransmissions);
      row["duplicates_suppressed"] =
          static_cast<std::int64_t>(c.report.duplicates_suppressed);
      row["spurious_detections"] =
          static_cast<std::int64_t>(c.report.spurious_detections);
      row["degraded_flows"] =
          static_cast<std::int64_t>(c.report.degraded_flows);
      row["all_flows_deliverable"] = c.report.all_flows_deliverable;
      rows.push_back(std::move(row));
    }
    std::cout << rows.to_string(2) << "\n";
  }
  if (mid_recovery && !interrupted) {
    // The coordinator after C13's failure is the lowest surviving id
    // (controller 0); the adopter target is the highest-id controller
    // the wave-1 plan hands switches to, so the kill lands on a node
    // with in-flight flow-mods of its own.
    sdwan::FailureScenario scenario;
    scenario.failed = {3};
    const sdwan::FailureState state(net, scenario);
    const core::RecoveryPlan wave1 = core::run_pm(state, {});
    sdwan::ControllerId adopter = -1;
    for (const auto& [sw, j] : wave1.mapping) {
      if (j != 0) adopter = std::max(adopter, j);
    }
    const std::vector<std::pair<std::string, sdwan::ControllerId>> kills =
        {{"coordinator", 0}, {"adopter", adopter}};
    const std::vector<double> mid_losses = {0.0, 0.02, 0.05};
    const std::vector<double> mid_jitters = {0.0, 20.0};

    std::vector<KillCell> kill_cells;
    std::vector<sdwan::ControllerId> kill_targets;
    for (const auto& [label, target] : kills) {
      for (const double jitter : mid_jitters) {
        for (const double loss : mid_losses) {
          kill_cells.push_back({loss, jitter, label, {}});
          kill_targets.push_back(target);
        }
      }
    }
    kill_cells = pool.parallel_map(
        kill_cells, [&](std::size_t idx, const KillCell& c) -> KillCell {
          if (util::shutdown_requested()) {
            return {c.loss, c.jitter_ms, c.kill, {}, false};
          }
          return {c.loss, c.jitter_ms, c.kill,
                  run_kill_cell(net, c.loss, c.jitter_ms, dup, seed, until,
                                kill_targets[idx])};
        });
    const std::size_t total_kill_cells = kill_cells.size();
    std::erase_if(kill_cells,
                  [](const KillCell& c) { return !c.computed; });
    if (util::shutdown_requested()) {
      std::cout << "[interrupted: flushing " << kill_cells.size() << " of "
                << total_kill_cells << " mid-recovery cells]\n";
    }

    std::cout << "\n=== Mid-recovery kill sweep: second failure at "
                 "t=850 ms, inside the first wave (transactional) ===\n\n";
    util::TextTable mid({"kill", "loss", "jitter_ms", "detected_ms",
                         "converged_ms", "failovers", "aborted",
                         "rb_removes", "stale_disc", "audit_viol",
                         "deliverable"});
    bool mid_ok = true;
    for (const auto& c : kill_cells) {
      mid.add_row(
          {c.kill, util::format_double(100.0 * c.loss, 0) + "%",
           util::format_double(c.jitter_ms, 0),
           util::format_double(c.report.detected_at.value_or(-1.0), 1),
           util::format_double(c.report.converged_at.value_or(-1.0), 1),
           std::to_string(c.report.coordinator_failovers),
           std::to_string(c.report.waves_aborted),
           std::to_string(c.report.rollback_removals),
           std::to_string(c.report.stale_discarded),
           std::to_string(c.report.audit_violations),
           c.report.all_flows_deliverable ? "yes" : "NO"});
      mid_ok &= c.report.all_flows_deliverable && c.report.audit_clean;
    }
    mid.print(std::cout);
    std::cout << "\n"
              << (mid_ok ? "every mid-recovery cell converged with a "
                           "clean consistency audit"
                         : "WARNING: mid-recovery cells broke delivery "
                           "or consistency")
              << "\n";
    all_deliverable &= mid_ok;

    if (mid_csv_path) {
      std::ofstream out(*mid_csv_path);
      util::CsvWriter csv(out);
      csv.write_row({"kill", "loss", "jitter_ms", "detected_ms",
                     "converged_ms", "coordinator_failovers",
                     "waves_aborted", "rollback_removals",
                     "stale_discarded", "audit_violations",
                     "all_flows_deliverable"});
      for (const auto& c : kill_cells) {
        csv.write_row(
            {c.kill, util::format_double(c.loss, 2),
             util::format_double(c.jitter_ms, 1),
             util::format_double(c.report.detected_at.value_or(-1.0), 3),
             util::format_double(c.report.converged_at.value_or(-1.0),
                                 3),
             std::to_string(c.report.coordinator_failovers),
             std::to_string(c.report.waves_aborted),
             std::to_string(c.report.rollback_removals),
             std::to_string(c.report.stale_discarded),
             std::to_string(c.report.audit_violations),
             c.report.all_flows_deliverable ? "true" : "false"});
      }
      std::cout << "[mid-recovery csv written to " << *mid_csv_path
                << "]\n";
    }
  }
  if (util::shutdown_requested()) return 130;
  return all_deliverable ? 0 : 1;
}
