// perf_gate — tracked microbenchmark baseline for the recovery pipeline.
//
// Times the hot paths this repo optimizes — PM / RetroFlow / PG planning,
// path-diversity extraction (Network construction over the cached BFS
// layer), one chaos-convergence cell — plus the parallel fig5 sweep at a
// ladder of --jobs values, and emits a machine-readable JSON report
// (BENCH_pr4.json in CI) so regressions show up as artifact diffs.
//
// Two built-in correctness gates back the numbers:
//  * the dense-state run_pm is re-run against a frozen copy of the
//    original map-based implementation and the plans must be identical;
//  * the parallel sweep at every job count must equal the serial sweep.
//
// Usage: ./build/bench/perf_gate [--quick] [--json-out=BENCH_pr4.json]
//        [--jobs-list=1,2,4,8] [--until=6000]
//
// Wall-clock output is inherently machine-dependent; `hardware_threads`
// is recorded so a 1-core container's flat parallel ladder reads as what
// it is, not as a regression.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/pm_algorithm.hpp"
#include "core/pg.hpp"
#include "core/retroflow.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "ctrl/simulation.hpp"
#include "graph/diversity_cache.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"

namespace {

using namespace pm;
using sdwan::ControllerId;
using sdwan::FlowId;
using sdwan::SwitchId;

/// Frozen copy of the pre-dense-rework run_pm (map-based working state,
/// linear seed adoption). Kept verbatim minus profiling so the gate can
/// assert the reworked planner is a pure optimization, and report the
/// speedup the dense state buys.
core::RecoveryPlan run_pm_reference(const sdwan::FailureState& state,
                                    core::PmOptions options = {}) {
  core::RecoveryPlan plan;
  plan.algorithm = "PM";

  std::map<SwitchId, std::vector<std::pair<FlowId, std::int64_t>>> by_switch;
  for (SwitchId s : state.offline_switches()) by_switch[s] = {};
  for (FlowId l : state.recoverable_flows()) {
    for (const auto& opp : state.opportunities(l)) {
      by_switch[opp.sw].emplace_back(l, opp.p);
    }
  }

  std::map<ControllerId, double> rest;
  for (ControllerId j : state.active_controllers()) {
    rest[j] = state.rest_capacity(j);
  }
  std::map<FlowId, std::int64_t> h;
  for (FlowId l : state.recoverable_flows()) h[l] = 0;

  const int total_iterations =
      options.total_iterations > 0 ? options.total_iterations
                                   : state.max_offline_switches_on_path();

  if (options.seed != nullptr) {
    for (const auto& [sw, ctrl] : options.seed->mapping) {
      if (state.is_offline_switch(sw) && state.is_active_controller(ctrl)) {
        plan.mapping[sw] = ctrl;
      }
    }
    for (const auto& [sw, flow] : options.seed->sdn_assignments) {
      const ControllerId j = plan.controller_of(sw);
      if (j < 0 || !h.contains(flow)) continue;
      const auto& flows = by_switch.at(sw);
      const auto it =
          std::find_if(flows.begin(), flows.end(),
                       [&](const auto& fl) { return fl.first == flow; });
      if (it == flows.end() || rest.at(j) < 1.0) continue;
      rest.at(j) -= 1.0;
      h.at(flow) += it->second;
      plan.sdn_assignments.insert({sw, flow});
    }
  }

  std::vector<SwitchId> untested = state.offline_switches();
  std::int64_t sigma = 0;
  int test_count = 0;

  auto restart_sweep = [&] {
    untested = state.offline_switches();
    ++test_count;
    std::int64_t min_h = std::numeric_limits<std::int64_t>::max();
    for (const auto& [l, hl] : h) min_h = std::min(min_h, hl);
    if (!h.empty()) sigma = min_h;
  };

  while (test_count < total_iterations && !h.empty()) {
    std::size_t delta = 0;
    SwitchId i0 = -1;
    for (SwitchId s : untested) {
      std::size_t count = 0;
      for (const auto& [l, p] : by_switch.at(s)) {
        (void)p;
        if (h.at(l) == sigma) ++count;
      }
      if (count > delta) {
        delta = count;
        i0 = s;
        if (!options.greedy_switch_selection) break;
      }
    }
    if (i0 < 0) {
      restart_sweep();
      continue;
    }

    ControllerId j0 = plan.controller_of(i0);
    if (j0 < 0) {
      for (ControllerId j : state.controllers_by_delay(i0)) {
        if (rest.at(j) >= static_cast<double>(state.gamma(i0))) {
          j0 = j;
          break;
        }
      }
      if (j0 < 0) {
        double best = -1.0;
        for (ControllerId j : state.active_controllers()) {
          if (rest.at(j) > best) {
            best = rest.at(j);
            j0 = j;
          }
        }
      }
      plan.mapping[i0] = j0;
    }
    std::erase(untested, i0);

    for (const auto& [l0, p] : by_switch.at(i0)) {
      if (h.at(l0) <= sigma && !plan.sdn_assignments.contains({i0, l0}) &&
          rest.at(j0) >= 1.0) {
        rest.at(j0) -= 1.0;
        h.at(l0) += p;
        plan.sdn_assignments.insert({i0, l0});
      }
    }
    if (untested.empty()) restart_sweep();
  }

  if (!options.skip_utilization_pass) {
    for (const auto& [i0, flows] : by_switch) {
      const ControllerId j0 = plan.controller_of(i0);
      if (j0 < 0) continue;
      for (const auto& [l0, p] : flows) {
        (void)p;
        if (rest.at(j0) >= 1.0 &&
            !plan.sdn_assignments.contains({i0, l0})) {
          rest.at(j0) -= 1.0;
          plan.sdn_assignments.insert({i0, l0});
        }
      }
    }
  }

  core::prune_unused_mappings(plan);
  return plan;
}

bool same_plan(const core::RecoveryPlan& a, const core::RecoveryPlan& b) {
  return a.mapping == b.mapping && a.sdn_assignments == b.sdn_assignments;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct OpTiming {
  std::string name;
  int reps = 0;
  double ns_per_op = 0.0;
};

/// Times `reps` calls of fn (which must return something convertible to
/// size_t, accumulated into a sink so the work cannot be elided).
template <typename Fn>
OpTiming time_op(const std::string& name, int reps, Fn&& fn) {
  static volatile std::size_t sink = 0;
  std::size_t acc = 0;
  const double t0 = now_seconds();
  for (int r = 0; r < reps; ++r) acc += static_cast<std::size_t>(fn());
  const double t1 = now_seconds();
  sink = sink + acc;
  return {name, reps, 1e9 * (t1 - t0) / std::max(1, reps)};
}

ctrl::SimulationReport run_chaos_cell(const sdwan::Network& net,
                                      double until_ms) {
  ctrl::ControllerConfig config;
  config.suspicion_checks = 3;
  config.transactional = false;
  ctrl::ControlSimulation simulation(
      net,
      [](const sdwan::FailureState& state,
         const core::RecoveryPlan* previous) {
        core::PmOptions opts;
        opts.seed = previous;
        return core::run_pm(state, opts);
      },
      config);
  ctrl::ChannelFaultModel faults;
  faults.seed = 42;
  faults.drop_probability = 0.10;
  faults.duplicate_probability = 0.02;
  faults.jitter_ms = 5.0;
  simulation.set_fault_model(faults);
  simulation.fail_controller_at(3, 500.0);
  simulation.fail_controller_at(4, 3000.0);
  return simulation.run(until_ms);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const std::string json_out = args.get_string("json-out", "");
  const std::string jobs_list = args.get_string("jobs-list", "1,2,4,8");
  const double until = args.get_double("until", quick ? 2000.0 : 6000.0);
  obs::apply_log_level_flag(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const int planner_reps = quick ? 20 : 200;
  const int extract_reps = quick ? 3 : 10;

  std::cout << "=== perf_gate: recovery-pipeline microbenchmarks ===\n";
  std::cout << "hardware threads: " << util::TaskPool::hardware_jobs()
            << (quick ? " (quick mode)" : "") << "\n\n";

  const sdwan::Network net = core::make_att_network();
  // The paper's headline two-failure case (13, 20): hub switch 13
  // stranded, the densest instance of the fig5 sweep.
  sdwan::FailureScenario scenario;
  scenario.failed = {3, 4};
  const sdwan::FailureState state(net, scenario);

  // Correctness gate 1: dense run_pm == frozen map-based run_pm, both
  // from scratch and in incremental (seeded) mode.
  {
    const core::RecoveryPlan dense = core::run_pm(state);
    const core::RecoveryPlan reference = run_pm_reference(state);
    if (!same_plan(dense, reference)) {
      std::cerr << "FAIL: dense run_pm diverged from the map-based "
                   "reference\n";
      return 1;
    }
    sdwan::FailureScenario first;
    first.failed = {3};
    const sdwan::FailureState wave1_state(net, first);
    const core::RecoveryPlan wave1 = core::run_pm(wave1_state);
    core::PmOptions seeded;
    seeded.seed = &wave1;
    if (!same_plan(core::run_pm(state, seeded),
                   run_pm_reference(state, seeded))) {
      std::cerr << "FAIL: seeded dense run_pm diverged from the "
                   "reference\n";
      return 1;
    }
    std::cout << "plan-equivalence gate: dense == reference (fresh + "
                 "seeded)\n\n";
  }

  std::vector<OpTiming> ops;
  ops.push_back(time_op("pm_plan_dense", planner_reps, [&] {
    return core::run_pm(state).sdn_assignments.size();
  }));
  ops.push_back(time_op("pm_plan_map_reference", planner_reps, [&] {
    return run_pm_reference(state).sdn_assignments.size();
  }));
  ops.push_back(time_op("retroflow_plan", planner_reps, [&] {
    return core::run_retroflow(state).sdn_assignments.size();
  }));
  ops.push_back(time_op("pg_plan", planner_reps, [&] {
    return core::run_pg(state).sdn_assignments.size();
  }));
  ops.push_back(time_op("att_network_construct", extract_reps, [&] {
    return static_cast<std::size_t>(
        core::make_att_network().flow_count());
  }));
  ops.push_back(time_op("path_diversity_all_pairs", extract_reps, [&] {
    // The extraction hot path in isolation: every (switch, dst) pair
    // through one epoch-guarded cache, as Network construction does.
    graph::DiversityCache cache(net.config().path_count);
    std::int64_t total = 0;
    const auto& g = net.topology().graph();
    for (int dst = 0; dst < g.node_count(); ++dst) {
      for (int src = 0; src < g.node_count(); ++src) {
        if (src != dst) total += cache.diversity(g, src, dst);
      }
    }
    return static_cast<std::size_t>(total);
  }));
  ops.push_back(time_op("chaos_cell", 1, [&] {
    return static_cast<std::size_t>(
        run_chaos_cell(net, until).messages_sent);
  }));

  util::TextTable t({"op", "reps", "ns/op", "ms/op"});
  for (const auto& op : ops) {
    t.add_row({op.name, std::to_string(op.reps),
               util::format_double(op.ns_per_op, 0),
               util::format_double(op.ns_per_op / 1e6, 3)});
  }
  t.print(std::cout);

  const double dense_speedup =
      ops[0].ns_per_op > 0.0 ? ops[1].ns_per_op / ops[0].ns_per_op : 0.0;
  std::cout << "\nrun_pm dense-state speedup vs map reference: "
            << util::format_double(dense_speedup, 2) << "x\n";

  // Parallel ladder: the fig5 sweep (15 two-failure cases, planners
  // only) at each --jobs value, gated against the serial results.
  std::cout << "\n--- fig5 sweep (k=2, no optimal) parallel ladder ---\n";
  core::RunnerOptions sweep_options;
  sweep_options.run_optimal = false;
  const auto serial = core::run_failure_sweep(net, 2, sweep_options);

  struct LadderPoint {
    int jobs = 0;
    double seconds = 0.0;
    double speedup = 0.0;
  };
  std::vector<LadderPoint> ladder;
  double serial_seconds = 0.0;
  util::TextTable lt({"jobs", "seconds", "speedup"});
  for (const std::string& tok : util::split(jobs_list, ',')) {
    long long jobs = 0;
    if (!util::parse_int(tok, jobs) || jobs < 1) continue;
    sweep_options.jobs = static_cast<int>(jobs);
    const int sweep_reps = quick ? 1 : 3;
    double best = std::numeric_limits<double>::max();
    std::vector<core::CaseResult> results;
    for (int r = 0; r < sweep_reps; ++r) {
      const double t0 = now_seconds();
      results = core::run_failure_sweep(net, 2, sweep_options);
      best = std::min(best, now_seconds() - t0);
    }
    // Correctness gate 2: byte-identical metrics vs the serial sweep.
    if (results.size() != serial.size()) {
      std::cerr << "FAIL: parallel sweep size mismatch at jobs=" << jobs
                << "\n";
      return 1;
    }
    for (std::size_t c = 0; c < results.size(); ++c) {
      if (results[c].label != serial[c].label) {
        std::cerr << "FAIL: parallel sweep order diverged at jobs="
                  << jobs << "\n";
        return 1;
      }
      for (const auto& [algo, m] : serial[c].metrics) {
        const auto it = results[c].metrics.find(algo);
        if (it == results[c].metrics.end() ||
            it->second.total_programmability != m.total_programmability ||
            it->second.least_programmability != m.least_programmability) {
          std::cerr << "FAIL: parallel sweep metrics diverged at jobs="
                    << jobs << " case " << serial[c].label << "\n";
          return 1;
        }
      }
    }
    if (jobs == 1) serial_seconds = best;
    LadderPoint p;
    p.jobs = static_cast<int>(jobs);
    p.seconds = best;
    p.speedup = best > 0.0 && serial_seconds > 0.0
                    ? serial_seconds / best
                    : 0.0;
    ladder.push_back(p);
    lt.add_row({std::to_string(jobs), util::format_double(best, 4),
                util::format_double(p.speedup, 2) + "x"});
  }
  lt.print(std::cout);
  std::cout << "parallel-equivalence gate: every job count matched the "
               "serial sweep\n";

  if (!json_out.empty()) {
    util::JsonValue doc = util::JsonValue::object();
    doc["benchmark"] = std::string("pr4_perf_gate");
    doc["deterministic"] = false;
    doc["quick"] = quick;
    doc["hardware_threads"] =
        static_cast<std::int64_t>(util::TaskPool::hardware_jobs());
    util::JsonValue op_rows = util::JsonValue::array();
    for (const auto& op : ops) {
      util::JsonValue row = util::JsonValue::object();
      row["name"] = op.name;
      row["reps"] = static_cast<std::int64_t>(op.reps);
      row["ns_per_op"] = op.ns_per_op;
      op_rows.push_back(std::move(row));
    }
    doc["ops"] = std::move(op_rows);
    doc["pm_dense_speedup_vs_map"] = dense_speedup;
    util::JsonValue parallel = util::JsonValue::object();
    parallel["sweep"] = std::string("fig5_k2_no_optimal");
    util::JsonValue points = util::JsonValue::array();
    for (const auto& p : ladder) {
      util::JsonValue row = util::JsonValue::object();
      row["jobs"] = static_cast<std::int64_t>(p.jobs);
      row["seconds"] = p.seconds;
      row["speedup_vs_serial"] = p.speedup;
      points.push_back(std::move(row));
    }
    parallel["ladder"] = std::move(points);
    doc["parallel"] = std::move(parallel);
    std::ofstream out(json_out);
    out << doc.to_string(2) << "\n";
    std::cout << "[json written to " << json_out << "]\n";
  }
  return 0;
}
