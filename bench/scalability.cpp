// scalability (extension bench) — heuristic runtime and recovery quality
// as the WAN grows: Waxman topologies from 25 to 150 nodes with k-center
// controller placement, failing the two most-loaded controllers.
//
// The paper evaluates only the 25-node ATT backbone; this bench shows the
// algorithms' asymptotic behaviour (PM stays in milliseconds while the
// FMSSM model size grows quadratically — the reason the exact solver
// needs budgets).
//
// Flags: --sizes=25,50,100,150 --controllers-per-25=2 --seed=1
// --jobs=N (sizes evaluated in parallel; the table is identical at any N)
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/fmssm.hpp"
#include "topo/generators.hpp"
#include "topo/placement.hpp"
#include "util/shutdown.hpp"
#include "util/task_pool.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const std::string sizes = args.get_string("sizes", "25,50,75,100,150");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int jobs = util::parse_jobs_flag(args);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }
  // SIGINT/SIGTERM skip the remaining sizes (the 150-node row dominates
  // the runtime) and still print the rows that finished.
  util::install_shutdown_handler();

  std::cout << "=== Scalability on Waxman WANs (extension) ===\n";
  util::TextTable t({"nodes", "links", "ctrls", "offline flows",
                     "PM ms", "PG ms", "RetroFlow ms", "PM total",
                     "PG total", "model vars", "model rows"});

  std::vector<int> node_counts;
  for (const std::string& tok : util::split(sizes, ',')) {
    long long n = 0;
    if (!util::parse_int(tok, n) || n < 10) continue;
    node_counts.push_back(static_cast<int>(n));
  }

  // One row per size; sizes are independent, so they fan out across the
  // pool and come back in input order.
  util::TaskPool pool(jobs);
  const auto rows = pool.parallel_map(
      node_counts, [&](std::size_t, int n) -> std::vector<std::string> {
        if (util::shutdown_requested()) return {};
        const topo::Topology topology = topo::waxman(n, 0.5, 0.25, seed);
        const int controllers = std::max(3, n / 12);
        const auto domains = topo::k_center_domains(topology, controllers);
        sdwan::NetworkConfig cfg;
        // Capacity scaled to make normal operation fit with ~15% headroom.
        cfg.controller_capacity = 1.0;  // placeholder; fixed below
        // First build with huge capacity to measure loads, then rebuild.
        cfg.controller_capacity = 1e9;
        sdwan::Network probe(topology, domains, cfg);
        double max_load = 0.0;
        for (int j = 0; j < probe.controller_count(); ++j) {
          max_load = std::max(max_load, probe.normal_load(j));
        }
        cfg.controller_capacity = 1.15 * max_load;
        const sdwan::Network net(topology, domains, cfg);

        // Fail the two most-loaded controllers.
        std::vector<sdwan::ControllerId> by_load;
        for (int j = 0; j < net.controller_count(); ++j) {
          by_load.push_back(j);
        }
        std::sort(by_load.begin(), by_load.end(),
                  [&](sdwan::ControllerId a, sdwan::ControllerId b) {
                    return net.normal_load(a) > net.normal_load(b);
                  });
        sdwan::FailureScenario sc;
        sc.failed = {std::min(by_load[0], by_load[1]),
                     std::max(by_load[0], by_load[1])};
        const sdwan::FailureState state(net, sc);

        const auto pm = core::run_pm(state);
        const auto pg = core::run_pg(state);
        const auto retro = core::run_retroflow(state);
        const auto m_pm = core::evaluate_plan(state, pm);
        const auto m_pg = core::evaluate_plan(state, pg);
        const auto problem = core::build_fmssm(state);

        return {std::to_string(n), std::to_string(topology.link_count()),
                std::to_string(controllers),
                std::to_string(state.offline_flows().size()),
                bench::num(pm.solve_seconds * 1000, 2),
                bench::num(pg.solve_seconds * 1000, 2),
                bench::num(retro.solve_seconds * 1000, 2),
                std::to_string(m_pm.total_programmability),
                std::to_string(m_pg.total_programmability),
                std::to_string(problem.model.variable_count()),
                std::to_string(problem.model.constraint_count())};
      });
  std::size_t printed = 0;
  for (const auto& row : rows) {
    if (row.empty()) continue;  // skipped by a shutdown request
    t.add_row(row);
    ++printed;
  }
  if (util::shutdown_requested()) {
    std::cout << "[interrupted: flushing " << printed << " of "
              << rows.size() << " rows]\n";
  }
  t.print(std::cout);
  obs::write_profile(obs_options);
  return util::shutdown_requested() ? 130 : 0;
}
