// Fig. 7 — computation time of PM as a percentage of Optimal, under one,
// two and three controller failures.
//
// The paper reports PM at 2.54% / 1.77% / 2.18% of GUROBI's time on
// average. Our Optimal substitutes a from-scratch branch-and-bound that
// runs to its configured budget on the large instances, so the absolute
// ratio is smaller still — the reproduced shape is "the heuristic is
// orders of magnitude cheaper and the gap grows with instance size".
//
// Flags: --optimal-time=<sec> (per case), --cases=<k,k,...> failure sizes,
// --jobs=N (parallel cases; reported wall times are per-case solver times,
// so the ratios are unaffected by parallelism).
#include <iostream>
#include <numeric>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pm;
  util::CliArgs args(argc, argv);
  const double time_limit = args.get_double("optimal-time", 10.0);
  const std::string cases = args.get_string("cases", "1,2,3");
  const int jobs = util::parse_jobs_flag(args);
  const obs::ObsOptions obs_options = obs::parse_obs_flags(args);
  for (const auto& unused : args.unused()) {
    obs::log().warn("unrecognized flag --" + unused);
  }

  const sdwan::Network net = core::make_att_network();
  std::cout << "=== Fig. 7: computation time, PM as % of Optimal ===\n";

  util::TextTable t({"failures", "cases", "PM mean (ms)",
                     "Optimal mean (s)", "PM / Optimal"});
  for (const std::string& tok : util::split(cases, ',')) {
    long long k = 0;
    if (!util::parse_int(tok, k) || k < 1 ||
        k >= net.controller_count()) {
      obs::log().warn("skipping bad failure count '" + tok + "'");
      continue;
    }
    core::RunnerOptions opts;
    opts.run_optimal = true;
    opts.optimal.time_limit_seconds = time_limit;
    opts.jobs = jobs;
    const auto results =
        core::run_failure_sweep(net, static_cast<int>(k), opts);
    double pm_total = 0.0;
    double opt_total = 0.0;
    for (const auto& r : results) {
      pm_total += r.pm_seconds;
      opt_total += r.optimal_seconds;
    }
    const double n = static_cast<double>(results.size());
    const double ratio = opt_total <= 0.0 ? 0.0 : pm_total / opt_total;
    t.add_row({std::to_string(k), std::to_string(results.size()),
               bench::num(1000.0 * pm_total / n, 3),
               bench::num(opt_total / n, 2),
               bench::num(100.0 * ratio, 4) + "%"});
  }
  t.print(std::cout);
  std::cout << "(paper: 2.54% / 1.77% / 2.18% of GUROBI on average; here "
               "Optimal runs to its "
            << bench::num(time_limit, 0)
            << "s budget per case, see DESIGN.md substitution 2)\n";
  obs::write_profile(obs_options);
  return 0;
}
